"""Bench: regenerate Fig. 2 — perf lost versus an equivalent monolithic GPU.

Paper headline: the 4-chiplet Baseline loses 54% on average versus the
(infeasible) monolithic GPU with the same CUs and aggregate L2, in line
with prior work's 29-45%.
"""

from repro.experiments import fig2

from conftest import bench_scale, run_once


def test_fig2_monolithic_gap(benchmark, save_report):
    result = run_once(benchmark, lambda: fig2.run(scale=bench_scale()))
    report = fig2.report(result)
    save_report("fig2", report)

    # Shape assertions: the chiplet GPU loses substantially on average —
    # the paper measures 54%, prior work 29-45%; we accept that band.
    loss = result.average_loss_percent
    assert 25.0 <= loss <= 85.0, f"avg loss {loss:.1f}% out of band"
    # No workload should be dramatically *faster* on the chiplet GPU.
    assert all(s > 0.9 for s in result.slowdowns.values())
