"""Bench: Sec. VI's automation claim — inferred annotations suffice.

Record-and-replay annotation inference must give CPElide the same elision
decisions and performance as the hand-written Listing 1/2 hints.
"""

from repro.experiments import inference

from conftest import bench_scale, run_once


def test_annotation_inference(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: inference.run(scale=bench_scale()))
    save_report("inference", inference.report(result))

    # Performance equivalence within noise.
    assert 0.99 <= result.geomean_ratio() <= 1.01
    for name, (hand, inferred, hand_ops, inf_ops, acc) in result.rows.items():
        # The recorder reproduces every access mode...
        assert acc == 1.0, name
        # ...and the elision engine makes equivalent decisions.
        assert abs(hand_ops - inf_ops) <= 2, name
