"""Bench: regenerate Fig. 10 — 4-chiplet interconnect traffic in flits.

Paper headlines: CPElide −14% vs Baseline and −17% vs HMG total flits;
CPElide moves 37% less L2-L3 traffic than write-through HMG; HMG carries
more remote traffic than CPElide due to 4-line-granularity invalidations.
"""

from repro.experiments import fig10

from conftest import bench_scale, run_once


def test_fig10_traffic(benchmark, save_report):
    result = run_once(benchmark, lambda: fig10.run(scale=bench_scale()))
    save_report("fig10", fig10.report(result))

    cpe = result.geomean_normalized("cpelide")
    hmg = result.geomean_normalized("hmg")
    # CPElide cuts total traffic by double digits (paper: 14%).
    assert 0.60 <= cpe <= 0.95, f"CPElide normalized traffic {cpe:.3f}"
    # CPElide moves less traffic than HMG on average (paper: 17% less).
    assert cpe < hmg

    # Component shape: CPElide's L2-L3 traffic is far below HMG's
    # (paper: 37% less — write-through pushes every store down a level).
    l2l3_ratio = result.geomean_component_ratio("l2_l3", "cpelide", "hmg")
    assert l2l3_ratio < 0.85, f"CPElide/HMG L2-L3 ratio {l2l3_ratio:.3f}"

    # L1-L2 traffic is essentially protocol-independent.
    l1_ratio = result.component_ratio("l1_l2", "cpelide", "baseline")
    assert 0.95 <= l1_ratio <= 1.05
