"""Bench: regenerate Fig. 9 — 4-chiplet memory-subsystem energy.

Paper headlines: CPElide −14% vs Baseline and −11% vs HMG on average;
L1/LDS energy unchanged by either scheme; the differences come from NOC
traffic and DRAM accesses.
"""

from repro.experiments import fig9
from repro.metrics.report import geomean

from conftest import bench_scale, run_once


def test_fig9_energy(benchmark, save_report):
    result = run_once(benchmark, lambda: fig9.run(scale=bench_scale()))
    save_report("fig9", fig9.report(result))

    cpe = result.geomean_normalized("cpelide")
    hmg = result.geomean_normalized("hmg")
    # CPElide reduces energy by double digits (paper: 14%).
    assert 0.70 <= cpe <= 0.97, f"CPElide normalized energy {cpe:.3f}"
    # CPElide uses less energy than HMG on average (paper: 11% less).
    assert cpe < hmg

    # Component shapes: L1 and LDS energy are protocol-independent.
    for name, per in result.breakdowns.items():
        base = per["baseline"]
        for protocol in ("cpelide", "hmg"):
            assert per[protocol]["l1d"] == base["l1d"]
            assert per[protocol]["lds"] == base["lds"]

    # The savings come from NOC + DRAM (Sec. V-B Energy Consumption).
    noc_dram_saving = geomean(
        (per["cpelide"]["noc"] + per["cpelide"]["dram"] + 1e-18)
        / (per["baseline"]["noc"] + per["baseline"]["dram"] + 1e-18)
        for per in result.breakdowns.values())
    assert noc_dram_saving < 1.0
