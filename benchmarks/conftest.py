"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures end to end
and writes the rendered rows/series to ``benchmarks/output/<name>.txt``
(also echoed to stdout when pytest runs with ``-s``).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — simulation scale (default 1/32; use 1/64 for a
  quick pass, 1/16 for a higher-fidelity one).
* ``REPRO_BENCH_FULL`` — set to 1 to run every workload in the sweeps
  that default to representative subsets.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_scale() -> float:
    """Simulation scale for the benchmark runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", 1 / 32))


def full_sweeps() -> bool:
    """Whether subset-based studies should use all 24 workloads."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_config(num_chiplets: int = 4, **overrides):
    """A :class:`repro.GPUConfig` at the benchmark scale."""
    from repro.api import default_config
    overrides.setdefault("scale", bench_scale())
    return default_config(num_chiplets=num_chiplets, **overrides)


@pytest.fixture
def save_report():
    """Persist a rendered figure/table and echo it."""
    def _save(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
