"""Bench: regenerate Table II's reuse grouping.

The paper groups the 24 workloads by the miss-rate reduction available
from inter-kernel reuse with no flush/invalidation overhead (Sec. IV-D).
"""

from repro.experiments import reuse

from conftest import bench_scale, run_once


def test_table2_reuse_groups(benchmark, save_report):
    result = run_once(benchmark, lambda: reuse.run(scale=bench_scale()))
    report = reuse.report(result)
    save_report("table2", report)
    # The measured grouping should broadly agree with Table II's (our
    # synthetic models inflate incidental reuse for a couple of the
    # low-reuse apps; see EXPERIMENTS.md).
    assert result.agreement() >= 0.7
    # Anchor apps must land on their paper side.
    assert result.measured_class("babelstream") == "high"
    assert result.measured_class("square") == "high"
    assert result.measured_class("hotspot3d") == "high"
    assert result.measured_class("nw") == "low"
    assert result.measured_class("dwt2d") == "low"
