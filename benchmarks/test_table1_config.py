"""Bench: regenerate Table I (simulated baseline GPU parameters)."""

from repro.experiments import table1

from conftest import run_once


def test_table1_config(benchmark, save_report):
    config = run_once(benchmark, table1.run)
    report = table1.report(config)
    save_report("table1", report)
    assert "1801 MHz" in report
    assert "768 GB/s" in report
