"""Bench: the capacity-crossover mechanism behind the Sec. V-C exceptions.

CPElide's benefit requires the aggregate L2 to hold the reused working
set; growing the footprint past it must shrink the benefit (the paper's
Backprop/Hotspot3D/SSSP 2-chiplet exceptions).
"""

from repro.experiments import capacity

from conftest import bench_scale, run_once


def test_capacity_crossover(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: capacity.run(scale=bench_scale()))
    save_report("capacity", capacity.report(result))

    assert result.benefit_shrinks_with_pressure()
    # The sweet spot: working set above the L3 but inside the aggregate
    # L2 (footprint 1.0x for Hotspot3D at paper ratios).
    peak = result.peak_factor()
    assert result.points[peak][0] >= 0.6, "peak should fit the L2s"
    assert result.speedup_at(peak) > 1.3
    # Under 4x pressure a large part of the peak gain is gone.
    assert result.speedup_at(4.0) < result.speedup_at(peak) * 0.9
    # Miss rate grows with pressure.
    assert result.points[4.0][2] > result.points[0.5][2]
