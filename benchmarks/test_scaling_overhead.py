"""Bench: regenerate the Sec. VI scaling study (mimicked 8/16 chiplets).

Paper: adding 2 and 4 serialized sets of acquires/releases at kernel
boundaries — mimicking 8- and 16-chiplet synchronization work — slows the
4-chiplet CPElide runs by only 1% and 2% on average.
"""

from repro.experiments import scaling
from repro.workloads.suite import WORKLOAD_NAMES

from conftest import bench_scale, full_sweeps, run_once


def test_scaling_overhead(benchmark, save_report):
    workloads = WORKLOAD_NAMES if full_sweeps() else None
    result = run_once(benchmark,
                      lambda: scaling.run(workloads=workloads,
                                          scale=bench_scale()))
    save_report("scaling", scaling.report(result))

    avg8 = result.average_slowdown_percent(8)
    avg16 = result.average_slowdown_percent(16)
    # Small overheads, monotone in mimicked size (paper: 1% / 2%; our
    # workload models issue more per-boundary releases — the stencils'
    # halo exchanges — so the bands are wider, see EXPERIMENTS.md).
    assert 0.0 <= avg8 <= 8.0, f"8-chiplet mimic {avg8:.2f}%"
    assert avg8 <= avg16 <= 18.0, f"16-chiplet mimic {avg16:.2f}%"
