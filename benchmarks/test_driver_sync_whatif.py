"""Bench: the Sec. VI driver-managed-synchronization what-if.

Moving the elision mechanism to the GPU driver forces a host round trip
per kernel launch; prior work [28, 79, 140] shows this adds significant
latency — the paper's argument for housing CPElide in the global CP.
"""

from repro.experiments import driver_sync

from conftest import bench_scale, run_once


def test_driver_sync_whatif(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: driver_sync.run(scale=bench_scale()))
    save_report("driver_sync", driver_sync.report(result))

    # Driver-resident elision must hurt, and hurt substantially.
    assert result.geomean_slowdown_percent() > 10.0
    for name in result.cycles:
        assert result.driver_slowdown(name) >= 1.0, name
