"""Bench: the Sec. IV-D table-occupancy claim.

The paper's workloads reach at most 11 Chiplet Coherence Table entries
and never overflow the 64-entry table; our 24 models must satisfy the
same bound.
"""

from repro.experiments import occupancy

from conftest import bench_scale, run_once


def test_table_occupancy(benchmark, save_report):
    profiles = run_once(benchmark,
                        lambda: occupancy.run(scale=bench_scale()))
    save_report("occupancy", occupancy.report(profiles))

    for name, profile in profiles.items():
        assert profile.never_overflows, f"{name} overflowed the table"
        assert profile.peak_entries <= 11, (
            f"{name} peaked at {profile.peak_entries} entries "
            "(paper max: 11)")
    # At least one workload exercises several simultaneous structures.
    assert max(p.peak_entries for p in profiles.values()) >= 5
    # Dynamic kernel counts stay within Table II's reported band.
    assert max(p.num_kernels for p in profiles.values()) <= 510
