"""Bench: regenerate Table III and cross-check the implementable claims."""

from repro.api import make_protocol
from repro.experiments import table3
from repro.gpu.device import Device
from repro.memory.cache import WritePolicy

from conftest import bench_config, run_once


def test_table3_features(benchmark, save_report):
    features = run_once(benchmark, table3.run)
    report = table3.report(features)
    save_report("table3", report)

    # Cross-check claims against our implementations.
    config = bench_config(num_chiplets=4, scale=1 / 64)
    # "No coherence protocol changes": CPElide uses Baseline's exact data
    # path (subclass relationship).
    from repro.coherence.cpelide import CPElideProtocol
    from repro.coherence.viper import BaselineProtocol
    assert issubclass(CPElideProtocol, BaselineProtocol)
    assert features["No coherence protocol changes"]["CPElide"]

    # "No L2 cache structure changes": CPElide keeps the write-back L2;
    # HMG switches it to write-through.
    device = Device(config)
    make_protocol("cpelide", config, device)
    assert device.l2s[0].policy is WritePolicy.WRITE_BACK
    device = Device(config)
    make_protocol("hmg", config, device)
    assert device.l2s[0].policy is WritePolicy.WRITE_THROUGH
    assert not features["No L2 cache structure changes"]["HMG"]
