"""Bench: regenerate the Sec. VI multi-stream study.

Paper: for multi-stream variants mimicking concurrent jobs, CPElide
outperforms HMG by 12% on average on 4-chiplet systems, with trends
mirroring the single-stream workloads.
"""

from repro.experiments import multistream

from conftest import bench_scale, run_once


def test_multistream(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: multistream.run(scale=bench_scale()))
    save_report("multistream", multistream.report(result))

    # CPElide leads HMG on the multi-stream variants (paper: +12%).
    gain = result.cpelide_vs_hmg_percent()
    assert gain > 0.0, f"CPElide vs HMG {gain:.1f}%"
    # And never falls behind Baseline.
    for name in result.cycles:
        assert result.speedup(name, "cpelide") >= 0.95
