"""Profile one (workload, protocol, trace-path) cell and print hotspots.

Usage::

    PYTHONPATH=src python benchmarks/perf/profile_hotspots.py \
        [--workload babelstream] [--protocol cpelide] \
        [--trace-path run|line|memo] [--memo-report] \
        [--scale 0.25] [--chiplets 4] [--reps 3]

Prints the top 20 functions by cumulative and by internal time. This is
the tool the batched-path optimization work was driven by; keep it next
to the benchmark so a perf regression found by ``python -m repro bench``
can be localized without any extra setup.

With ``--trace-path memo`` the reps share the process-wide memo store
(rep 1 records, later reps replay — the steady state the memo path is
for); ``--memo-report`` prints each rep's hit/miss/bypass counters.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="babelstream")
    parser.add_argument("--protocol", default="cpelide")
    parser.add_argument("--trace-path", default="run",
                        choices=("line", "run", "memo"))
    parser.add_argument("--memo-report", action="store_true",
                        help="print per-rep memo hit/miss/bypass counters "
                             "(memo trace path only)")
    parser.add_argument("--scale", type=float, default=1 / 4)
    parser.add_argument("--chiplets", type=int, default=4)
    parser.add_argument("--reps", type=int, default=3,
                        help="simulations to profile (default 3)")
    parser.add_argument("--top", type=int, default=20)
    args = parser.parse_args()

    from repro.gpu.config import GPUConfig
    from repro.gpu.sim import Simulator
    from repro.workloads.suite import build_workload

    config = GPUConfig(num_chiplets=args.chiplets, scale=args.scale)
    profiler = cProfile.Profile()
    profiler.enable()
    memo_counters = []
    for _ in range(args.reps):
        sim = Simulator(config, protocol=args.protocol,
                        trace_path=args.trace_path)
        result = sim.run(build_workload(args.workload, config))
        memo_counters.append((result.memo_hits, result.memo_misses,
                              result.memo_bypasses))
    profiler.disable()

    if args.memo_report:
        print(f"==== memo counters per rep "
              f"({args.workload}/{args.protocol}) ====")
        for rep, (hits, misses, bypasses) in enumerate(memo_counters):
            if hits is None:
                # Non-memo trace paths report no counters (None), which
                # is different from a memoized run with zero activity.
                print(f"  rep {rep}: n/a (trace path "
                      f"{args.trace_path!r} does not memoize)")
            else:
                print(f"  rep {rep}: {hits} hits, {misses} misses, "
                      f"{bypasses} bypasses")

    for sort in ("cumtime", "tottime"):
        out = io.StringIO()
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort).print_stats(args.top)
        print(f"==== top {args.top} by {sort} "
              f"({args.workload}/{args.protocol}, "
              f"trace_path={args.trace_path}, scale={args.scale:g}) ====")
        print(out.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
