"""Bench: locality-aware scheduling in conjunction with CPElide (Sec. VII).

Narrow kernels steered to the chiplets that hold their data turn remote
reads local; combined with CPElide's elision the reuse becomes L2 hits.
"""

from repro.experiments import scheduler_ablation

from conftest import bench_scale, run_once


def test_scheduler_ablation(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: scheduler_ablation.run(scale=bench_scale()))
    save_report("scheduler_ablation", scheduler_ablation.report(result))

    # Steering helps both protocols and reduces remote traffic.
    for protocol in ("baseline", "cpelide"):
        assert result.locality_speedup(protocol) >= 1.0
        assert result.remote_flits[protocol]["locality"] \
            <= result.remote_flits[protocol]["static"]
    # CPElide benefits at least as much: the steered reuse survives its
    # elided boundaries, while the Baseline re-fetches it anyway.
    assert result.locality_speedup("cpelide") \
        >= result.locality_speedup("baseline") * 0.98
