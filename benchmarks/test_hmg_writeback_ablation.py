"""Bench: the HMG write-back L2 ablation (Sec. IV-C).

Paper: the authors implemented HMG's discussed write-back variant and
measured it 13% worse geomean than write-through HMG, because it reduces
HMG's precise tracking benefits. Our model reproduces the direction on
the irregular workloads (directory pressure, read-for-ownership fetches,
owner flushes at evictions); see EXPERIMENTS.md for the streaming-store
caveat.
"""

from repro.experiments import hmg_writeback

from conftest import bench_scale, run_once


def test_hmg_writeback_ablation(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: hmg_writeback.run(scale=bench_scale()))
    save_report("hmg_writeback", hmg_writeback.report(result))

    slowdown = result.geomean_slowdown_percent()
    # Write-back HMG is worse on the irregular subset (paper: 13% over
    # the full suite).
    assert slowdown > 0.0, f"WB geomean slowdown {slowdown:.1f}%"
