"""Bench: the Sec. VI fine-grained hardware range-based flush ablation.

The extension lets CPElide's sync ops walk only the affected address
ranges instead of whole L2s. It must never move more lines than the
whole-cache ops and should help workloads whose sync ops fire while
unrelated data is resident.
"""

from repro.experiments import range_flush

from conftest import bench_scale, run_once


def test_range_flush_ablation(benchmark, save_report):
    result = run_once(benchmark,
                      lambda: range_flush.run(scale=bench_scale()))
    save_report("range_flush", range_flush.report(result))

    # The extension is never meaningfully worse...
    assert result.geomean_speedup() >= 0.97
    # ...and strictly reduces the lines moved by sync operations.
    for name, lines in result.lines_moved.items():
        assert lines["cpelide-range"] <= lines["cpelide"], name
