"""Bench: regenerate Fig. 8 — CPElide & HMG speedups on 2/4/6/7 chiplets.

Paper headlines (4 chiplets): CPElide +13% over Baseline (+17% for the
moderate-or-higher-reuse group); CPElide never hurts the low-reuse apps;
the trends continue at 2, 6, and 7 chiplets.
"""

import pytest

from repro.experiments import fig8
from repro.workloads.suite import HIGH_REUSE, LOW_REUSE

from conftest import bench_scale, run_once

CHIPLET_COUNTS = (2, 4, 6, 7)


@pytest.fixture(scope="module")
def result():
    return fig8.run(chiplet_counts=CHIPLET_COUNTS, scale=bench_scale())


def test_fig8_performance(benchmark, save_report):
    res = run_once(benchmark,
                   lambda: fig8.run(chiplet_counts=(4,),
                                    scale=bench_scale()))
    # The full 2/4/6/7 sweep renders through the module fixture below;
    # this timed run covers the headline 4-chiplet figure.
    cpe = res.geomean_speedup("cpelide", 4)
    hmg = res.geomean_speedup("hmg", 4)
    save_report("fig8_4chiplets", fig8.report(res))

    # Shape: CPElide improves on Baseline by double digits (paper: 13%).
    assert 1.05 <= cpe <= 1.35, f"CPElide geomean {cpe:.3f}"
    # High-reuse group benefits more than the low-reuse group (17% vs ~0).
    hi = res.geomean_speedup("cpelide", 4, HIGH_REUSE)
    lo = res.geomean_speedup("cpelide", 4, LOW_REUSE)
    assert hi > lo
    # CPElide never hurts meaningfully on the low-reuse group.
    for name in LOW_REUSE:
        assert res.speedup(name, "cpelide", 4) >= 0.95
    # CPElide beats HMG on aggregate (paper: +19%).
    assert cpe > hmg * 0.98


def test_fig8_chiplet_sweep(result, benchmark, save_report):
    save_report("fig8", run_once(benchmark, lambda: fig8.report(result)))
    # Trends persist at every chiplet count (paper Sec. V-C).
    for chiplets in CHIPLET_COUNTS:
        cpe = result.geomean_speedup("cpelide", chiplets)
        assert cpe >= 1.0, f"{chiplets} chiplets: CPElide {cpe:.3f}"
    # CPElide's 2-chiplet edge over HMG shrinks versus 4 chiplets
    # (Sec. V-C: it decreases by ~9% at 2 chiplets).
    edge = {c: (result.geomean_speedup("cpelide", c)
                / result.geomean_speedup("hmg", c))
            for c in (2, 4)}
    assert edge[2] <= edge[4] * 1.05


def test_fig8_headline_apps(result, benchmark):
    """Per-app shapes the paper calls out explicitly (4 chiplets)."""
    run_once(benchmark, lambda: result.geomean_speedup("cpelide", 4))
    # BabelStream/Square: large CPElide wins (paper ~31% average).
    assert result.speedup("babelstream", "cpelide", 4) > 1.15
    assert result.speedup("square", "cpelide", 4) > 1.15
    # ...and HMG's write-through L2s hurt it badly there (Sec. V-B).
    assert result.speedup("square", "cpelide", 4) \
        > result.speedup("square", "hmg", 4)
    # Hotspot3D: memory-bound stencil, big win (paper 37%).
    assert result.speedup("hotspot3d", "cpelide", 4) > 1.2
    # LUD: big win (paper 48%), with HMG performing similarly.
    assert result.speedup("lud", "cpelide", 4) > 1.25
    # Hotspot: compute-bound, small effect (paper: low speedup).
    assert 0.9 <= result.speedup("hotspot", "cpelide", 4) <= 1.15
