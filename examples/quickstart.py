#!/usr/bin/env python3
"""Quickstart: the paper's Listing 1 through the HIP-style runtime.

Builds the `square` kernel (C[i] = A[i]^2), annotates its data structures
with `hipSetAccessMode`, relaunches it as an iterative workload, and
compares the conservative Baseline against CPElide and HMG on a 4-chiplet
GPU. CPElide elides every acquire/release except the final flush, so the
relaunches hit the per-chiplet L2s.

Run:  python examples/quickstart.py
"""

from repro.api import HipRuntime, default_config
from repro.metrics.report import format_table

ITERATIONS = 20
ELEMENTS = 524288  # Table II input size


def run_square(protocol: str):
    """Listing 1, iterated, on the given coherence configuration."""
    config = default_config(num_chiplets=4, scale=1 / 32)
    rt = HipRuntime(config, protocol=protocol)

    # The simulator's `scale` knob shrinks the caches; scale the
    # allocations identically so working-set-to-cache ratios match a
    # real 4 MB-arrays-vs-8 MB-L2s run.
    nbytes = int(ELEMENTS * 4 * config.scale)
    a_d = rt.hip_malloc("A", nbytes)
    c_d = rt.hip_malloc("C", nbytes)

    for _ in range(ITERATIONS):
        square = rt.kernel("square", compute_intensity=1.0)
        # Listing 1: hipSetAccessMode(square, C_d, 'R/W');
        #            hipSetAccessMode(square, A_d, 'R');
        rt.hip_set_access_mode(square, c_d, "R/W")
        rt.hip_set_access_mode(square, a_d, "R")
        rt.hip_launch_kernel(square)  # hipLaunchKernelGGL(...)

    return rt.run("square-quickstart")


def main() -> None:
    results = {p: run_square(p) for p in ("baseline", "hmg", "cpelide")}
    base = results["baseline"]

    rows = []
    for name, res in results.items():
        sync = res.metrics.total_sync()
        rows.append([
            name,
            base.wall_cycles / res.wall_cycles,
            res.metrics.total_accesses().l2_miss_rate,
            res.metrics.total_traffic().total / base.metrics.total_traffic().total,
            sync.releases_elided + sync.acquires_elided,
        ])
    print(format_table(
        ["config", "speedup vs baseline", "L2 miss rate",
         "traffic (norm.)", "syncs elided"],
        rows, title=f"square x{ITERATIONS} on a 4-chiplet GPU"))
    print("\nCPElide keeps the arrays resident in the per-chiplet L2s "
          "across relaunches;\nthe Baseline invalidates and flushes them "
          "at every kernel boundary.")


if __name__ == "__main__":
    main()
