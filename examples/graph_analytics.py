#!/usr/bin/env python3
"""Graph analytics on a chiplet GPU: where read-only reuse lives.

Runs the three Pannotia/Rodinia graph workloads of the paper (Color,
SSSP, BFS). Their iterative kernels reread the graph's CSR structure
every round — read-only data that the conservative Baseline invalidates
at every kernel boundary. CPElide's Chiplet Coherence Table sees the
structures stay in `Valid` (reads by every chiplet keep clean copies)
and elides the acquires, preserving inter-kernel reuse (Sec. V-A).

The script also shows HMG's trade-off: it caches the roaming neighbour
lookups locally, but stores invalidate the cached copies, the 4-line
directory entries over-invalidate, and remote caching evicts local data
(Sec. V-B).

Run:  python examples/graph_analytics.py
"""

from repro.api import default_config, simulate
from repro.metrics.report import format_table

GRAPH_APPS = ("color", "sssp", "bfs")
PROTOCOLS = ("baseline", "hmg", "cpelide")


def main() -> None:
    config = default_config(num_chiplets=4, scale=1 / 32)
    rows = []
    for app in GRAPH_APPS:
        cycles = {}
        details = {}
        for protocol in PROTOCOLS:
            res = simulate(app, protocol, config=config)
            cycles[protocol] = res.wall_cycles
            details[protocol] = res
        cpe = details["cpelide"].metrics.total_sync()
        hmg = details["hmg"].metrics.total_sync()
        rows.append([
            app,
            cycles["baseline"] / cycles["cpelide"],
            cycles["baseline"] / cycles["hmg"],
            cpe.acquires_elided,
            hmg.dir_invalidations,
            details["hmg"].metrics.total_accesses().dram_writes,
            details["cpelide"].metrics.total_accesses().dram_writes,
        ])
    print(format_table(
        ["graph app", "CPElide speedup", "HMG speedup",
         "acquires elided (CPElide)", "dir invalidations (HMG)",
         "DRAM writes (HMG)", "DRAM writes (CPElide)"],
        rows,
        title="Graph analytics on a 4-chiplet GPU (vs Baseline)"))
    print("\nCPElide preserves the read-only CSR reuse by eliding "
          "acquires; HMG pays\nwrite-through DRAM traffic and directory "
          "invalidation churn for its remote caching.")


if __name__ == "__main__":
    main()
