#!/usr/bin/env python3
"""Multi-stream concurrent jobs (Sec. VI).

Two independent jobs run concurrently on one 4-chiplet GPU, each bound to
two chiplets with `hipSetDevice` (the stream-to-chiplet binding of
Sec. III-B). Concurrent kernels contend for shared caching resources, and
conservative implicit synchronization gets *more* expensive — CPElide's
per-chiplet tracking elides the synchronization each stream doesn't need.

Run:  python examples/multi_stream_jobs.py
"""

from repro.api import HipRuntime, default_config
from repro.metrics.report import format_table

ITERATIONS = 12
ELEMENTS = 262144


def run_two_jobs(protocol: str):
    config = default_config(num_chiplets=4, scale=1 / 32)
    rt = HipRuntime(config, protocol=protocol)

    # Stream 0 -> chiplets {0,1}; stream 1 -> chiplets {2,3}.
    rt.hip_set_device(stream=0, chiplets=[0, 1])
    rt.hip_set_device(stream=1, chiplets=[2, 3])

    nbytes = int(ELEMENTS * 4 * config.scale)  # scale with the caches
    for stream in (0, 1):
        a = rt.hip_malloc(f"job{stream}_in", nbytes)
        c = rt.hip_malloc(f"job{stream}_out", nbytes)
        for _ in range(ITERATIONS):
            k = rt.kernel(f"job{stream}_step", compute_intensity=2.0,
                          stream=stream)
            rt.hip_set_access_mode(k, a, "R")
            rt.hip_set_access_mode(k, c, "R/W")
            rt.hip_launch_kernel(k)

    return rt.run("two-jobs")


def main() -> None:
    results = {p: run_two_jobs(p) for p in ("baseline", "hmg", "cpelide")}
    base = results["baseline"]
    rows = []
    for name, res in results.items():
        rows.append([
            name,
            res.wall_cycles,
            base.wall_cycles / res.wall_cycles,
            res.metrics.total_cycles / res.wall_cycles,  # overlap factor
        ])
    print(format_table(
        ["config", "wall cycles", "speedup vs baseline", "stream overlap x"],
        rows, title="Two concurrent jobs, each on 2 of 4 chiplets"))
    print("\nThe wall clock is the slower stream's clock: both jobs run "
          "concurrently, and\nCPElide avoids synchronizing chiplets the "
          "other job owns.")


if __name__ == "__main__":
    main()
