#!/usr/bin/env python3
"""Recurrent-network inference: producer-consumer reuse across timesteps.

Runs the paper's four DeepBench RNN configurations (Table II). Each
timestep's gate GEMMs reread the same weight slices (inter-kernel reuse
CPElide preserves by eliding the invalidations) and the previous hidden
state produced by the last timestep (producer-consumer reuse). The small
activations are read by every chiplet — the remote-read locality that
lets HMG slightly outperform CPElide here, since CPElide never caches
remote reads locally (Sec. V-B).

Run:  python examples/ml_inference.py
"""

from repro.api import default_config, simulate
from repro.metrics.report import format_table

RNNS = ("rnn-gru-small", "rnn-gru-large", "rnn-lstm-small", "rnn-lstm-large")


def main() -> None:
    config = default_config(num_chiplets=4, scale=1 / 32)
    rows = []
    for name in RNNS:
        res = {}
        for protocol in ("baseline", "hmg", "cpelide"):
            res[protocol] = simulate(name, protocol, config=config)
        base = res["baseline"].wall_cycles
        cpe_acc = res["cpelide"].metrics.total_accesses()
        hmg_acc = res["hmg"].metrics.total_accesses()
        rows.append([
            name,
            base / res["cpelide"].wall_cycles,
            base / res["hmg"].wall_cycles,
            cpe_acc.l2_remote_hits,   # CPElide rereads activations remotely
            hmg_acc.l2_remote_hits,   # HMG caches them after first touch
        ])
    print(format_table(
        ["RNN config", "CPElide speedup", "HMG speedup",
         "remote hits (CPElide)", "remote hits (HMG)"],
        rows,
        title="DeepBench RNN inference on a 4-chiplet GPU (vs Baseline)"))
    print("\nHMG converts the repeated remote activation reads into local "
          "hits, which is\nwhy the paper measures it ~3% ahead of CPElide "
          "on the RNNs — the one workload\nclass where remote-read caching "
          "pays off.")


if __name__ == "__main__":
    main()
