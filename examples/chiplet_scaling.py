#!/usr/bin/env python3
"""Chiplet-count sensitivity (Fig. 8's x-axis, Sec. IV-E).

Runs one memory-bound stencil (Hotspot3D) on 2, 4, 6, and 7 chiplets
under strong scaling — the same work divided across more chiplets — and
reports each protocol's speedup over the same-size Baseline. At 2
chiplets the aggregate L2 cannot hold Hotspot3D's 24 MB working set, so
CPElide's benefit collapses; from 4 chiplets up the working set fits and
the benefit appears and grows (Sec. V-C).

Run:  python examples/chiplet_scaling.py
"""

from repro.api import build_workload, default_config, simulate
from repro.metrics.report import format_table

CHIPLET_COUNTS = (2, 4, 6, 7)
APP = "hotspot3d"


def main() -> None:
    rows = []
    for chiplets in CHIPLET_COUNTS:
        config = default_config(num_chiplets=chiplets, scale=1 / 32)
        cycles = {}
        for protocol in ("baseline", "hmg", "cpelide"):
            res = simulate(APP, protocol, config=config)
            cycles[protocol] = res.wall_cycles
        footprint = build_workload(APP, config).footprint_bytes()
        rows.append([
            chiplets,
            config.aggregate_l2_size / footprint,
            cycles["baseline"] / cycles["cpelide"],
            cycles["baseline"] / cycles["hmg"],
        ])
    print(format_table(
        ["chiplets", "aggregate L2 / working set",
         "CPElide speedup", "HMG speedup"],
        rows,
        title=f"{APP}: strong scaling across chiplet counts "
              "(normalized per count)"))
    print("\nCPElide's gains need the aggregate L2 to hold the working "
          "set — exactly the\n2-chiplet exception the paper reports for "
          "Hotspot3D (Sec. V-C).")


if __name__ == "__main__":
    main()
