#!/usr/bin/env python3
"""Inspect CPElide's decisions kernel by kernel.

Uses the analysis tooling to (a) trace every acquire/release the
protocols issue on a producer-consumer sequence — showing Baseline's
blanket synchronization against CPElide's targeted, lazy operations — and
(b) profile the Chiplet Coherence Table's occupancy over a real workload,
checking the paper's never-overflows claim (Sec. IV-D).

Run:  python examples/inspect_elision.py
"""

from repro.api import build_workload, default_config
from repro.analysis.occupancy import profile_table_occupancy
from repro.analysis.sync_trace import trace_sync_ops
from repro.cp.packets import AccessMode
from repro.memory.address import AddressSpace
from repro.workloads.base import Kernel, KernelArg, Workload

CONFIG = default_config(num_chiplets=4, scale=1 / 32)


def producer_consumer_workload() -> Workload:
    """Write on all chiplets -> iterate in place -> consume on chiplet 0."""
    space = AddressSpace()
    data = space.alloc("data", 64 * 4096)
    kernels = [
        Kernel("produce", args=(KernelArg(data, AccessMode.RW),)),
        Kernel("iterate", args=(KernelArg(data, AccessMode.RW),)),
        Kernel("iterate", args=(KernelArg(data, AccessMode.RW),)),
        # The reduction runs on one chiplet and needs everyone's data.
        Kernel("reduce", args=(KernelArg(data, AccessMode.R),), num_wgs=1),
        # Then everyone reads again after chiplet 0's (read-only) pass.
        Kernel("broadcast_check", args=(KernelArg(data, AccessMode.R),)),
    ]
    return Workload(name="producer-consumer", space=space, kernels=kernels)


def main() -> None:
    workload = producer_consumer_workload()
    for protocol in ("baseline", "cpelide"):
        trace = trace_sync_ops(producer_consumer_workload(), CONFIG, protocol)
        print(trace.render(limit=24))
        print()

    print("Table occupancy over a real workload (rnn-lstm-large):")
    profile = profile_table_occupancy(
        build_workload("rnn-lstm-large", CONFIG), CONFIG)
    print(f"  dynamic kernels : {profile.num_kernels}")
    print(f"  peak entries    : {profile.peak_entries} "
          f"(capacity {profile.capacity}; paper max across suite: 11)")
    print(f"  overflows       : {profile.overflow_evictions}")
    print(f"  ops elided      : {profile.elision_rate:.0%}")


if __name__ == "__main__":
    main()
