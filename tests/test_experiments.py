"""Smoke + behavioural tests for the experiment harnesses (tiny scale)."""

import pytest

from repro.experiments import fig2, fig8, fig9, fig10
from repro.experiments import hmg_writeback, multistream, range_flush, reuse
from repro.experiments import runner, scaling, table1, table3

from tests.conftest import TEST_SCALE

#: A fast, representative subset for harness tests.
SUBSET = ("square", "btree")


class TestRunner:
    def test_run_one(self):
        result = runner.run_one("square", "cpelide", scale=TEST_SCALE)
        assert result.wall_cycles > 0

    def test_matrix_speedup_normalization(self):
        matrix = runner.run_matrix(workloads=SUBSET, scale=TEST_SCALE)
        assert matrix.speedup_over_baseline("square", "baseline", 4) \
            == pytest.approx(1.0)
        assert matrix.speedup_over_baseline("square", "cpelide", 4) > 0

    def test_matrix_workload_order(self):
        matrix = runner.run_matrix(workloads=SUBSET, scale=TEST_SCALE)
        assert matrix.workloads() == list(SUBSET)


class TestFig2:
    def test_chiplet_gpu_slower_than_monolithic(self):
        result = fig2.run(workloads=("square", "hotspot3d"),
                          scale=TEST_SCALE)
        assert all(s >= 0.95 for s in result.slowdowns.values())
        assert result.average_loss_percent > 0
        assert "Fig. 2" in fig2.report(result)


class TestFig8:
    def test_bars_and_geomeans(self):
        result = fig8.run(workloads=SUBSET, chiplet_counts=(2, 4),
                          scale=TEST_SCALE)
        for chiplets in (2, 4):
            for name in SUBSET:
                assert result.speedup(name, "cpelide", chiplets) > 0
            assert result.geomean_speedup("cpelide", chiplets) > 0
        report = fig8.report(result)
        assert "Fig. 8 (2 chiplets)" in report
        assert "GEOMEAN" in report

    def test_cpelide_headline_direction(self):
        result = fig8.run(workloads=("square",), chiplet_counts=(4,),
                          scale=TEST_SCALE)
        assert result.speedup("square", "cpelide", 4) > 1.0


class TestFig9:
    def test_breakdown_normalized(self):
        result = fig9.run(workloads=SUBSET, scale=TEST_SCALE)
        assert result.normalized_total("square", "baseline") \
            == pytest.approx(1.0)
        assert result.normalized_total("square", "cpelide") < 1.0
        assert "Fig. 9" in fig9.report(result)

    def test_l1_energy_protocol_independent(self):
        """Fig. 9: neither scheme changes L1/LDS energy."""
        result = fig9.run(workloads=("square",), scale=TEST_SCALE)
        per = result.breakdowns["square"]
        assert per["cpelide"]["l1d"] == pytest.approx(per["baseline"]["l1d"],
                                                      rel=0.01)


class TestFig10:
    def test_traffic_normalized(self):
        result = fig10.run(workloads=SUBSET, scale=TEST_SCALE)
        assert result.normalized_total("square", "baseline") \
            == pytest.approx(1.0)
        assert result.normalized_total("square", "cpelide") < 1.0
        assert "Fig. 10" in fig10.report(result)

    def test_cpelide_cuts_l2l3_vs_hmg(self):
        """Fig. 10 headline: CPElide moves far less L2-L3 traffic than
        write-through HMG."""
        result = fig10.run(workloads=("square",), scale=TEST_SCALE)
        assert result.component_ratio("l2_l3", "cpelide", "hmg") < 1.0


class TestTables:
    def test_table1_report(self):
        assert "1801 MHz" in table1.report(table1.run())

    def test_table3_cpelide_column(self):
        features = table3.run()
        assert all(per["CPElide"] for per in features.values())
        assert "CPElide" in table3.report(features)

    def test_reuse_classification(self):
        result = reuse.run(workloads=("square", "pathfinder"),
                           scale=TEST_SCALE)
        assert result.measured_class("square") == "high"
        assert result.reduction("square") > result.reduction("pathfinder")
        assert "Table II" in reuse.report(result)


class TestScaling:
    def test_mimicked_chiplets_add_small_overhead(self):
        result = scaling.run(workloads=("square",), scale=TEST_SCALE)
        for mimicked in (8, 16):
            slowdown = result.slowdowns["square"][mimicked]
            assert 1.0 <= slowdown < 1.5
        assert result.slowdowns["square"][16] \
            >= result.slowdowns["square"][8]
        assert "scaling" in scaling.report(result).lower()


class TestMultiStream:
    def test_two_stream_variant_builds(self):
        from repro.gpu.config import GPUConfig
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        workload = multistream.make_multistream("square", config, 2)
        streams = {k.stream_id for k in workload.kernels}
        assert streams == {0, 1}
        masks = {k.chiplet_mask for k in workload.kernels}
        assert masks == {(0, 1), (2, 3)}

    def test_invalid_stream_count(self):
        from repro.gpu.config import GPUConfig
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        with pytest.raises(ValueError):
            multistream.make_multistream("square", config, 5)

    def test_comparison_runs(self):
        result = multistream.run(workloads=("square",), scale=TEST_SCALE)
        assert result.speedup("square", "cpelide") > 0
        assert "multi-stream" in multistream.report(result)


class TestAblations:
    def test_hmg_writeback_worse_on_irregular(self):
        result = hmg_writeback.run(workloads=("btree", "lulesh"),
                                   scale=TEST_SCALE)
        assert result.geomean_slowdown_percent() > 0
        assert "write-back" in hmg_writeback.report(result)

    def test_range_flush_not_worse(self):
        result = range_flush.run(workloads=("hotspot3d",), scale=TEST_SCALE)
        assert result.range_speedup("hotspot3d") >= 0.95
        # The extension moves no more lines than whole-cache ops.
        lines = result.lines_moved["hotspot3d"]
        assert lines["cpelide-range"] <= lines["cpelide"]


class TestCapacityCrossover:
    def test_sweep_runs_and_peaks_inside_l2(self):
        from repro.experiments import capacity
        result = capacity.run(workload="hotspot3d",
                              factors=(1.0, 4.0), scale=TEST_SCALE)
        assert result.benefit_shrinks_with_pressure()
        assert result.peak_factor() == 1.0
        assert "Capacity crossover" in capacity.report(result)

    def test_footprint_factor_scales_allocations(self):
        from repro.gpu.config import GPUConfig
        from repro.workloads.suite import build_workload
        base = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        doubled = base.with_footprint_factor(2.0)
        assert build_workload("hotspot3d", doubled).footprint_bytes() \
            > build_workload("hotspot3d", base).footprint_bytes()

    def test_invalid_factor_rejected(self):
        from repro.gpu.config import GPUConfig
        import pytest as _pytest
        with _pytest.raises(ValueError):
            GPUConfig().with_footprint_factor(0)


class TestDriverSyncExperiment:
    def test_driver_variant_always_slower(self):
        from repro.experiments import driver_sync
        result = driver_sync.run(workloads=("square",), scale=TEST_SCALE)
        assert result.driver_slowdown("square") > 1.0
        assert "host round" in driver_sync.report(result)


class TestSchedulerAblationExperiment:
    def test_locality_helps_producer_consumer(self):
        from repro.experiments import scheduler_ablation
        result = scheduler_ablation.run(scale=TEST_SCALE)
        assert result.locality_speedup("cpelide") >= 1.0


class TestOccupancyExperiment:
    def test_subset_never_overflows(self):
        from repro.experiments import occupancy
        profiles = occupancy.run(workloads=("square", "cnn"),
                                 scale=TEST_SCALE)
        assert all(p.never_overflows for p in profiles.values())
        assert "occupancy" in occupancy.report(profiles).lower()
