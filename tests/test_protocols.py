"""Unit tests for the Baseline/NoSync/Monolithic protocols and registry."""

import pytest

from repro.coherence.base import make_protocol
from repro.coherence.viper import BaselineProtocol, MonolithicProtocol, NoSyncProtocol
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.device import Device

from tests.conftest import TEST_SCALE


@pytest.fixture
def setup():
    config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
    device = Device(config)
    return config, device


def packet():
    return KernelPacket(kernel_id=0, name="k", stream_id=0, num_wgs=8,
                        args=())


def full_placement():
    return Placement(chiplets=(0, 1, 2, 3), wg_counts=(2, 2, 2, 2))


class TestRegistry:
    @pytest.mark.parametrize("name", ["baseline", "cpelide", "cpelide-range",
                                      "hmg", "hmg-wb", "nosync"])
    def test_known_protocols(self, setup, name):
        config, device = setup
        protocol = make_protocol(name, config, device)
        assert protocol.name == name

    def test_unknown_protocol_rejected(self, setup):
        config, device = setup
        with pytest.raises(ValueError, match="unknown protocol"):
            make_protocol("mesif", config, device)


class TestBaselineBoundaries:
    def test_acquires_every_chiplet_at_launch(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        ops = protocol.on_kernel_launch(packet(), full_placement())
        assert len(ops) == 4
        assert all(op.kind is SyncOpKind.ACQUIRE for op in ops)
        assert {op.chiplet for op in ops} == {0, 1, 2, 3}

    def test_releases_every_chiplet_at_completion(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        ops = protocol.on_kernel_complete(packet(), full_placement())
        assert all(op.kind is SyncOpKind.RELEASE for op in ops)
        assert len(ops) == 4

    def test_run_end_releases_all(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        ops = protocol.on_run_end()
        assert len(ops) == 4


class TestNoSync:
    def test_no_boundary_ops(self, setup):
        config, device = setup
        protocol = NoSyncProtocol(config, device)
        assert protocol.on_kernel_launch(packet(), full_placement()) == []
        assert protocol.on_kernel_complete(packet(), full_placement()) == []


class TestMonolithic:
    def test_requires_single_chiplet(self, setup):
        config, device = setup
        with pytest.raises(ValueError):
            MonolithicProtocol(config, device)

    def test_no_l2_sync(self):
        config = monolithic_equivalent(GPUConfig(num_chiplets=4,
                                                 scale=TEST_SCALE))
        device = Device(config)
        protocol = MonolithicProtocol(config, device)
        assert protocol.on_kernel_launch(packet(),
                                         Placement((0,), (8,))) == []
        assert protocol.on_kernel_complete(packet(),
                                           Placement((0,), (8,))) == []


class TestBaselineAccessPath:
    def test_local_access_allocates_locally(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(chiplet=1, line=100, is_write=False)
        assert device.l2s[1].lookup(100)
        assert device.counts[1].l2_local_misses == 1
        assert device.counts[1].l3_misses == 1          # cold
        assert device.counts[1].dram_reads == 1

    def test_local_hit_after_miss(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(1, 100, False)
        protocol.access(1, 100, False)
        assert device.counts[1].l2_local_hits == 1

    def test_local_store_dirties(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(2, 200, True)
        assert device.l2s[2].is_dirty(200)

    def test_remote_read_forwarded_not_cached_locally(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(0, 300, False)      # first touch -> home 0
        device.begin_kernel()
        protocol.access(3, 300, False)      # remote read by 3
        assert not device.l2s[3].lookup(300)
        assert device.counts[3].l2_remote_hits == 1
        assert device.traffic.remote > 0

    def test_remote_store_writes_through_and_invalidates_home(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(0, 300, False)      # home 0, clean copy resident
        protocol.access(2, 300, True)       # remote store by 2
        assert not device.l2s[0].lookup(300)
        assert not device.l2s[2].lookup(300)
        assert device.counts[2].l2_writethroughs == 1
        assert device.l3.lookup(300)

    def test_remote_read_after_remote_write_sees_l3(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(0, 300, False)
        protocol.access(2, 300, True)
        device.begin_kernel()
        protocol.access(3, 300, False)
        # Home L2 was invalidated; the read falls through to the L3.
        assert device.counts[3].l2_remote_misses == 1
        assert device.counts[3].l3_hits == 1

    def test_traffic_accounted_per_access(self, setup):
        config, device = setup
        protocol = BaselineProtocol(config, device)
        protocol.access(0, 1, False)
        assert device.traffic.l1_l2 > 0
        assert device.traffic.l2_l3 > 0   # refill from L3
