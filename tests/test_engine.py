"""The sweep engine: spec expansion, caching, and deterministic results."""

from __future__ import annotations

import json

import pytest

from repro.analysis.occupancy import TableOccupancyProfile
from repro.engine.cache import CacheStats, ResultCache, code_version_salt
from repro.engine.runner import SweepRunner, resolve_jobs
from repro.engine.spec import JobSpec, SweepSpec, workload_label
from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult, Simulator
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

WORKLOADS = ("square", "babelstream", "bfs")
PROTOCOLS = ("baseline", "cpelide")


def small_spec(workloads=WORKLOADS, protocols=PROTOCOLS,
               chiplet_counts=(4,), **kwargs) -> SweepSpec:
    return SweepSpec.grid(workloads=workloads, protocols=protocols,
                          chiplet_counts=chiplet_counts, scale=TEST_SCALE,
                          **kwargs)


class TestSpec:
    def test_expand_order_is_configs_workloads_protocols(self):
        spec = small_spec(workloads=("square", "babelstream"), chiplet_counts=(2, 4))
        labels = [job.label for job in spec.expand()]
        assert labels == [
            "square/baseline@2", "square/cpelide@2",
            "babelstream/baseline@2", "babelstream/cpelide@2",
            "square/baseline@4", "square/cpelide@4",
            "babelstream/baseline@4", "babelstream/cpelide@4",
        ]
        assert spec.num_jobs == len(labels)

    def test_workload_label(self):
        assert workload_label("square") == "square"
        assert workload_label(("multistream", "square", 2)) == "square-ms2"

    def test_jobspec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            JobSpec(workload="square", protocol="cpelide",
                    config=GPUConfig(scale=TEST_SCALE), kind="profile")

    def test_jobspec_rejects_non_string_protocol(self):
        with pytest.raises(TypeError):
            JobSpec(workload="square", protocol=object(),
                    config=GPUConfig(scale=TEST_SCALE))

    def test_key_payload_is_json_stable(self):
        job = JobSpec(workload="square", protocol="cpelide",
                      config=GPUConfig(num_chiplets=4, scale=TEST_SCALE))
        payload = job.key_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["config"]["num_chiplets"] == 4

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        """ISSUE acceptance: 3 workloads x 2 protocols, jobs=1 vs jobs=4
        produce byte-identical ``to_dict()`` payloads in the same order."""
        spec = small_spec()
        serial = SweepRunner(jobs=1).run(spec)
        parallel = SweepRunner(jobs=4).run(spec)
        assert serial.to_dicts() == parallel.to_dicts()
        assert [o.job.label for o in serial.outcomes] == \
            [o.job.label for o in parallel.outcomes]

    def test_cached_matches_uncached_bit_for_bit(self, tmp_path):
        spec = small_spec(workloads=("square",))
        cache = ResultCache(root=tmp_path / "c")
        first = SweepRunner(jobs=1, cache=cache).run(spec)
        second = SweepRunner(jobs=1, cache=cache).run(spec)
        assert first.to_dicts() == second.to_dicts()

    def test_results_in_spec_order_regardless_of_completion(self):
        spec = small_spec(workloads=("square", "babelstream"))
        result = SweepRunner(jobs=4).run(spec)
        expected = [job.label for job in spec.expand()]
        assert [o.job.label for o in result.outcomes] == expected


class TestCache:
    def test_second_run_all_hits_without_invoking_simulator(
            self, tmp_path, monkeypatch):
        """ISSUE acceptance: re-running a sweep is served 100% from cache
        with zero simulator invocations."""
        spec = small_spec()
        cache_dir = tmp_path / "cache"
        first = SweepRunner(jobs=1, cache=True, cache_dir=cache_dir).run(spec)
        assert first.report.executed == spec.num_jobs
        assert first.report.cache_hits == 0

        def boom(self, workload):
            raise AssertionError("Simulator.run called on a cached sweep")

        monkeypatch.setattr(Simulator, "run", boom)
        second = SweepRunner(jobs=1, cache=True, cache_dir=cache_dir).run(spec)
        assert second.report.cache_hits == spec.num_jobs
        assert second.report.executed == 0
        assert second.to_dicts() == first.to_dicts()
        assert all(o.cached for o in second.outcomes)

    def test_salt_change_invalidates(self, tmp_path):
        spec = small_spec(workloads=("square",), protocols=("cpelide",))
        old = ResultCache(root=tmp_path / "c", salt="old-code-version")
        SweepRunner(jobs=1, cache=old).run(spec)
        assert len(old) == 1

        new = ResultCache(root=tmp_path / "c", salt="new-code-version")
        result = SweepRunner(jobs=1, cache=new).run(spec)
        assert result.report.cache_invalidations == 1
        assert result.report.executed == 1
        # The stale entry was replaced: a third run under the new salt hits.
        again = SweepRunner(jobs=1, cache=new).run(spec)
        assert again.report.cache_hits == 1

    def test_corrupt_entry_is_invalidated(self, tmp_path):
        spec = small_spec(workloads=("square",), protocols=("cpelide",))
        cache = ResultCache(root=tmp_path / "c")
        SweepRunner(jobs=1, cache=cache).run(spec)
        [path] = list((tmp_path / "c").rglob("*.json"))
        path.write_text("{not json")
        result = SweepRunner(jobs=1, cache=cache).run(spec)
        assert result.report.cache_invalidations == 1
        assert result.report.executed == 1

    def test_cache_stats_accounting(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        job = small_spec(workloads=("square",),
                         protocols=("cpelide",)).expand()[0]
        assert cache.load(job) is None
        assert cache.stats.misses == 1
        cache.store(job, {"fake": 1})
        assert cache.stats.stores == 1
        assert cache.load(job) == {"fake": 1}
        assert cache.stats.hits == 1
        delta = cache.stats.since(CacheStats())
        assert (delta.hits, delta.misses, delta.stores) == (1, 1, 1)

    def test_key_ignores_salt_but_depends_on_config(self, tmp_path):
        a = ResultCache(root=tmp_path / "c", salt="a")
        b = ResultCache(root=tmp_path / "c", salt="b")
        spec4 = small_spec(workloads=("square",), protocols=("cpelide",))
        spec2 = small_spec(workloads=("square",), protocols=("cpelide",),
                           chiplet_counts=(2,))
        job4, job2 = spec4.expand()[0], spec2.expand()[0]
        assert a.key(job4) == b.key(job4)
        assert a.key(job4) != a.key(job2)

    def test_code_version_salt_is_stable(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16


class TestSerialization:
    def test_simulation_result_json_roundtrip(self, config):
        result = Simulator(config, "cpelide").run(
            build_workload("square", config))
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.wall_cycles == result.wall_cycles
        assert rebuilt.metrics.total_traffic().total == \
            result.metrics.total_traffic().total

    def test_summary_is_plain_json_scalars(self, config):
        result = Simulator(config, "cpelide").run(
            build_workload("square", config))
        for summary in (result.summary(), result.metrics.summary()):
            for key, value in summary.items():
                assert type(value) in (str, int, float), (key, value)
            assert json.loads(json.dumps(summary)) == summary


class TestOccupancyJobs:
    def test_occupancy_kind_runs_and_caches(self, tmp_path):
        spec = small_spec(workloads=("square", "bfs"),
                          protocols=("cpelide",), kind="occupancy")
        cache_dir = tmp_path / "cache"
        first = SweepRunner(jobs=1, cache=True, cache_dir=cache_dir).run(spec)
        assert all(isinstance(o.result, TableOccupancyProfile)
                   for o in first.outcomes)
        second = SweepRunner(jobs=1, cache=True, cache_dir=cache_dir).run(spec)
        assert second.report.cache_hits == spec.num_jobs
        assert second.to_dicts() == first.to_dicts()
