"""Unit tests for kernel packets and access annotations."""

import pytest

from repro.cp.packets import AccessMode, ArgAccess, KernelPacket, RangeAnnotation
from repro.memory.address import Buffer

BUF = Buffer("A", 4096, 4096 * 4, 0)


class TestAccessMode:
    def test_writes_flag(self):
        assert not AccessMode.R.writes
        assert AccessMode.RW.writes

    def test_values_match_listing1(self):
        assert AccessMode.R.value == "R"
        assert AccessMode.RW.value == "R/W"


class TestRangeAnnotation:
    def test_valid(self):
        r = RangeAnnotation(0, 100, 0)
        assert r.start == 0 and r.end == 100

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeAnnotation(100, 100, 0)
        with pytest.raises(ValueError):
            RangeAnnotation(200, 100, 0)

    def test_negative_chiplet_rejected(self):
        with pytest.raises(ValueError):
            RangeAnnotation(0, 100, -1)


class TestArgAccess:
    def test_default_even_split(self):
        """Without Listing-2 ranges, the annotation falls back to the even
        contiguous split implied by static kernel-wide partitioning."""
        arg = ArgAccess(BUF, AccessMode.R)
        lo0, hi0 = arg.range_for_logical_chiplet(0, 4)
        lo3, hi3 = arg.range_for_logical_chiplet(3, 4)
        assert lo0 == BUF.base
        assert hi3 == BUF.end
        assert hi0 - lo0 == (BUF.size // 4)

    def test_explicit_ranges_listing2(self):
        mid = BUF.base + BUF.size // 2
        arg = ArgAccess(BUF, AccessMode.RW, ranges=(
            RangeAnnotation(BUF.base, mid, 0),
            RangeAnnotation(mid, BUF.end, 1),
        ))
        assert arg.range_for_logical_chiplet(0, 2) == (BUF.base, mid)
        assert arg.range_for_logical_chiplet(1, 2) == (mid, BUF.end)

    def test_chiplet_without_range_is_empty(self):
        arg = ArgAccess(BUF, AccessMode.R, ranges=(
            RangeAnnotation(BUF.base, BUF.end, 0),))
        lo, hi = arg.range_for_logical_chiplet(1, 2)
        assert lo == hi

    def test_multiple_ranges_same_chiplet_merged(self):
        arg = ArgAccess(BUF, AccessMode.R, ranges=(
            RangeAnnotation(BUF.base, BUF.base + 64, 0),
            RangeAnnotation(BUF.end - 64, BUF.end, 0),
        ))
        assert arg.range_for_logical_chiplet(0, 1) == (BUF.base, BUF.end)


class TestKernelPacket:
    def test_written_and_read_only_buffers(self):
        other = Buffer("B", BUF.end, 4096, 1)
        packet = KernelPacket(
            kernel_id=0, name="k", stream_id=0, num_wgs=8,
            args=(ArgAccess(BUF, AccessMode.R),
                  ArgAccess(other, AccessMode.RW)))
        assert list(packet.written_buffers()) == [other]
        assert list(packet.read_only_buffers()) == [BUF]

    def test_zero_wgs_rejected(self):
        with pytest.raises(ValueError):
            KernelPacket(kernel_id=0, name="k", stream_id=0, num_wgs=0,
                         args=())
