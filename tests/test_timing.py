"""Unit tests for the timing model."""

import pytest

from repro.cp.wg_scheduler import Placement
from repro.gpu.config import GPUConfig
from repro.interconnect.noc import TrafficMeter
from repro.metrics.stats import AccessCounts
from repro.timing.latency import LatencyTable
from repro.timing.model import TimingModel

from tests.conftest import TEST_SCALE


@pytest.fixture
def config():
    return GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture
def model(config):
    return TimingModel(config)


def counts4(**kwargs):
    out = [AccessCounts() for _ in range(4)]
    for name, value in kwargs.items():
        setattr(out[0], name, value)
    return out


def full_placement():
    return Placement(chiplets=(0, 1, 2, 3), wg_counts=(4, 4, 4, 4))


class TestLatencyTable:
    def test_end_to_end_values(self, config):
        lat = LatencyTable.from_config(config)
        assert lat.l1_hit == 140
        assert lat.l2_local_hit == 269
        assert lat.l2_remote_hit == 390
        assert lat.l3_local == 330
        assert lat.l3_remote == 330 + (390 - 269)
        assert lat.dram == 330 + 500

    def test_ordering(self, config):
        lat = LatencyTable.from_config(config)
        assert (lat.lds < lat.l1_hit < lat.l2_local_hit < lat.l3_local
                < lat.l2_remote_hit + lat.l3_local)
        assert lat.dram > lat.l3_remote


class TestMemoryCycles:
    def test_latency_term_scaling(self, config, model):
        counts = AccessCounts(l2_local_hits=1440 * 60)
        # 1440*60 hits at 269 cycles / chiplet MLP (24*60) = 60*269.
        cycles = model._latency_cycles(counts)
        assert cycles == pytest.approx(60 * 269)

    def test_remote_hits_cost_more(self, model):
        local = model._latency_cycles(AccessCounts(l2_local_hits=1000))
        remote = model._latency_cycles(AccessCounts(l2_remote_hits=1000))
        assert remote > local

    def test_dram_misses_dominate(self, model):
        l3 = model._latency_cycles(AccessCounts(l3_hits=1000))
        dram = model._latency_cycles(AccessCounts(l3_misses=1000))
        assert dram > l3

    def test_writethrough_penalty_applied(self, model):
        without = model._latency_cycles(AccessCounts(l2_local_hits=1000))
        with_wt = model._latency_cycles(
            AccessCounts(l2_local_hits=1000, l2_writethroughs=1000))
        assert with_wt > without

    def test_coherence_stalls_cost(self, model):
        base = model._latency_cycles(AccessCounts())
        stalled = model._latency_cycles(AccessCounts(coherence_stalls=1000))
        assert stalled > base

    def test_bandwidth_term_binds_for_huge_volumes(self, config, model):
        counts = AccessCounts(l2_local_hits=10_000_000)
        assert model._memory_cycles(counts) \
            >= model._latency_cycles(counts)


class TestSyncCycles:
    def test_no_ops_is_free(self, model):
        assert model.sync_cycles(0, 0, had_sync_ops=False) == 0.0

    def test_empty_ops_still_cost_fixed(self, model):
        assert model.sync_cycles(0, 0, had_sync_ops=True) > 0.0

    def test_flush_volume_increases_cost(self, model):
        small = model.sync_cycles(10, 0, True)
        large = model.sync_cycles(100000, 0, True)
        assert large > small

    def test_fixed_costs_scale_with_overhead_scale(self):
        paper = TimingModel(GPUConfig(num_chiplets=4))
        scaled = TimingModel(GPUConfig(num_chiplets=4, scale=1 / 4))
        assert scaled.sync_cycles(0, 10, True) \
            == pytest.approx(paper.sync_cycles(0, 10, True) / 4)


class TestKernelTime:
    def test_compute_bound_kernel(self, config, model):
        kt = model.kernel_time(
            placement=full_placement(),
            per_chiplet_counts=counts4(),
            traffic=TrafficMeter(),
            compute_cycles=60_000.0,          # 250 cycles/chiplet
            sync_lines_flushed=0, sync_lines_invalidated=0,
            had_sync_ops=False, cp_overhead_cycles=0.0)
        assert kt.total_cycles == pytest.approx(
            60_000 * 0.25 / config.cus_per_chiplet)
        assert kt.sync_cycles == 0.0

    def test_memory_bound_kernel(self, model):
        kt = model.kernel_time(
            placement=full_placement(),
            per_chiplet_counts=counts4(l2_local_hits=100_000),
            traffic=TrafficMeter(),
            compute_cycles=1.0,
            sync_lines_flushed=0, sync_lines_invalidated=0,
            had_sync_ops=False, cp_overhead_cycles=0.0)
        assert kt.memory_cycles > kt.compute_cycles
        assert kt.total_cycles >= kt.memory_cycles

    def test_sync_and_cp_overhead_added(self, model):
        base = model.kernel_time(full_placement(), counts4(),
                                 TrafficMeter(), 1000.0, 0, 0, False, 0.0)
        loaded = model.kernel_time(full_placement(), counts4(),
                                   TrafficMeter(), 1000.0, 5000, 5000,
                                   True, 123.0)
        assert loaded.total_cycles > base.total_cycles
        assert loaded.sync_cycles >= 123.0

    def test_slowest_chiplet_bounds_kernel(self, model):
        counts = [AccessCounts() for _ in range(4)]
        counts[2].l2_local_hits = 1_000_000   # chiplet 2 is the straggler
        skewed = model.kernel_time(full_placement(), counts,
                                   TrafficMeter(), 0.0, 0, 0, False, 0.0)
        balanced_counts = [AccessCounts(l2_local_hits=250_000)
                           for _ in range(4)]
        balanced = model.kernel_time(full_placement(), balanced_counts,
                                     TrafficMeter(), 0.0, 0, 0, False, 0.0)
        assert skewed.total_cycles > balanced.total_cycles

    def test_remote_bandwidth_floor(self, config, model):
        traffic = TrafficMeter()
        traffic.remote_data(1_000_000)
        kt = model.kernel_time(full_placement(), counts4(), traffic,
                               0.0, 0, 0, False, 0.0)
        expected = config.cycles(
            traffic.remote_bytes / config.inter_chiplet_bandwidth)
        assert kt.bandwidth_cycles == pytest.approx(expected)

    def test_wt_dram_amplification(self, config, model):
        plain = counts4(dram_writes=100_000)
        kt_plain = model.kernel_time(full_placement(), plain,
                                     TrafficMeter(), 0.0, 0, 0, False, 0.0)
        wt = counts4(dram_writes=100_000, l2_writethroughs=100_000)
        # Zero out the latency side-effect of writethroughs for a clean
        # bandwidth comparison: compare bandwidth components directly.
        kt_wt = model.kernel_time(full_placement(), wt,
                                  TrafficMeter(), 0.0, 0, 0, False, 0.0)
        assert kt_wt.bandwidth_cycles > kt_plain.bandwidth_cycles
