"""Tests for record-and-replay annotation inference."""

import pytest

from repro.analysis.inference import (
    compare_annotations,
    record_kernel_annotations,
    replay_with_inferred_annotations,
)
from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.memory.address import AddressSpace
from repro.workloads.base import AccessKind, Kernel, KernelArg, PatternKind, Workload
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture
def buf():
    return AddressSpace().alloc("A", 64 * 4096)


class TestRecord:
    def test_modes_inferred_from_kinds(self, buf):
        kernel = Kernel("k", args=(
            KernelArg(buf, AccessMode.R),
            KernelArg(buf, AccessMode.RW, kind=AccessKind.STORE),
        ))
        inferred = record_kernel_annotations(kernel, 0, 4)
        assert inferred[0].mode is AccessMode.R
        assert inferred[1].mode is AccessMode.RW

    def test_partitioned_ranges_are_tight_slices(self, buf):
        kernel = Kernel("k", args=(KernelArg(buf, AccessMode.R),))
        inferred = record_kernel_annotations(kernel, 0, 4)
        for logical in range(4):
            lo, hi = inferred[0].range_for_logical_chiplet(logical, 4)
            expect_lo, expect_hi = buf.byte_range_of_slice(logical, 4)
            assert lo == expect_lo and hi == expect_hi

    def test_inferred_ranges_cover_actual_accesses(self, buf):
        """Safety: every accessed line falls inside the inferred range."""
        from repro.workloads.base import lines_for_arg
        arg = KernelArg(buf, AccessMode.R, pattern=PatternKind.RANDOM,
                        fraction=0.3, seed=5)
        kernel = Kernel("k", args=(arg,))
        inferred = record_kernel_annotations(kernel, 7, 4)
        for logical in range(4):
            lo, hi = inferred[0].range_for_logical_chiplet(logical, 4)
            for line in lines_for_arg(arg, logical, 4, 7):
                assert lo <= line * 64 < hi

    def test_stencil_halo_captured(self, buf):
        arg = KernelArg(buf, AccessMode.R, pattern=PatternKind.STENCIL,
                        halo_lines=4)
        kernel = Kernel("k", args=(arg,))
        inferred = record_kernel_annotations(kernel, 0, 4)
        lo, hi = inferred[0].range_for_logical_chiplet(1, 4)
        slice_lo, slice_hi = buf.byte_range_of_slice(1, 4)
        assert lo < slice_lo and hi > slice_hi  # halo widened the range


class TestReplay:
    def test_replayed_workload_marks_annotations(self):
        workload = build_workload("square", CONFIG)
        replayed = replay_with_inferred_annotations(workload, CONFIG)
        assert all(k.explicit_annotations is not None
                   for k in replayed.kernels)
        assert replayed.name.endswith("-inferred")

    @pytest.mark.parametrize("name", ["square", "color", "hotspot3d"])
    def test_cpelide_equivalent_under_inferred_hints(self, name):
        hand = Simulator(CONFIG, "cpelide").run(build_workload(name, CONFIG))
        replayed = replay_with_inferred_annotations(
            build_workload(name, CONFIG), CONFIG)
        inferred = Simulator(CONFIG, "cpelide").run(replayed)
        assert inferred.wall_cycles == pytest.approx(hand.wall_cycles,
                                                     rel=0.01)
        assert inferred.metrics.total_sync().acquires_issued \
            == hand.metrics.total_sync().acquires_issued


class TestCompare:
    def test_mode_accuracy_perfect_on_suite_sample(self):
        stats = compare_annotations(build_workload("lud", CONFIG), CONFIG)
        assert stats.mode_accuracy == 1.0
        assert stats.kernels > 0

    def test_hand_annotations_are_never_tighter(self):
        """The recorder's exact ranges are at most as wide as the hand
        hints (hand conservatism is non-negative)."""
        stats = compare_annotations(build_workload("color", CONFIG), CONFIG)
        assert stats.hand_overcoverage_bytes >= 0
