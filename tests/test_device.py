"""Unit tests for the device model (caches, sync ops, traffic plumbing)."""

import pytest

from repro.cp.local_cp import SyncOp, SyncOpKind
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.memory.cache import WritePolicy

from tests.conftest import TEST_SCALE


@pytest.fixture
def device():
    return Device(GPUConfig(num_chiplets=4, scale=TEST_SCALE))


class TestStructure:
    def test_one_l2_per_chiplet(self, device):
        assert len(device.l2s) == 4
        assert len(device.local_cps) == 4
        assert device.dram.num_stacks == 4

    def test_scaled_capacities(self, device):
        config = device.config
        assert device.l2s[0].capacity_lines \
            == config.scaled_l2_size // config.line_size
        assert device.l3.capacity_lines \
            == config.scaled_l3_size // config.line_size

    def test_begin_kernel_resets_meters(self, device):
        device.traffic.l1_data()
        device.counts[0].l2_local_hits = 5
        device.begin_kernel()
        assert device.traffic.total == 0
        assert device.counts[0].l2_local_hits == 0

    def test_set_l2_policy(self, device):
        device.set_l2_policy(WritePolicy.WRITE_THROUGH)
        assert all(l2.policy is WritePolicy.WRITE_THROUGH
                   for l2 in device.l2s)

    def test_set_l2_policy_after_use_rejected(self, device):
        device.l2s[0].access(1, False)
        with pytest.raises(RuntimeError):
            device.set_l2_policy(WritePolicy.WRITE_THROUGH)


class TestL3Path:
    def test_cold_fetch_reads_dram(self, device):
        device.fetch_from_l3(0, 100)
        assert device.counts[0].l3_misses == 1
        assert device.counts[0].dram_reads == 1
        assert device.l3.lookup(100)

    def test_warm_fetch_hits(self, device):
        device.fetch_from_l3(0, 100)
        device.fetch_from_l3(1, 100)
        assert device.counts[1].l3_hits == 1
        assert device.counts[1].dram_reads == 0

    def test_l3_write_through_to_dram(self, device):
        device.l3_write(0, 100, through_to_dram=True)
        assert device.counts[0].dram_writes == 1
        assert device.dram.total_writes == 1

    def test_dirty_l3_eviction_writes_dram(self, device):
        # Fill the (tiny, test-scale) L3 with dirty lines until evictions.
        capacity = device.l3.capacity_lines
        for line in range(capacity + 8):
            device.writeback_line(0, line)
        assert device.counts[0].dram_writes > 0


class TestSyncOps:
    def test_flush_l2_moves_dirty_to_l3(self, device):
        device.l2s[1].access(10, True)
        device.l2s[1].access(11, True)
        flushed = device.flush_l2(1)
        assert flushed == 2
        assert device.l3.lookup(10) and device.l3.lookup(11)
        assert device.l2s[1].dirty_lines == 0
        assert device.l2s[1].resident_lines == 2  # clean copies retained

    def test_invalidate_l2_drops_everything(self, device):
        device.l2s[1].access(10, True)
        device.l2s[1].access(11, False)
        invalidated = device.invalidate_l2(1)
        assert invalidated == 2
        assert device.l2s[1].resident_lines == 0
        assert device.l3.lookup(10)  # dirty line written back for safety

    def test_flush_ranges_only_touch_window(self, device):
        device.l2s[0].access(0, True)       # byte 0
        device.l2s[0].access(100, True)     # byte 6400
        flushed = device.flush_l2_ranges(0, [(0, 64)])
        assert flushed == 1
        assert not device.l2s[0].is_dirty(0)
        assert device.l2s[0].is_dirty(100)

    def test_invalidate_ranges(self, device):
        device.l2s[0].access(0, True)
        device.l2s[0].access(100, False)
        dropped = device.invalidate_l2_ranges(0, [(0, 64)])
        assert dropped == 1
        assert not device.l2s[0].lookup(0)
        assert device.l2s[0].lookup(100)
        assert device.l3.lookup(0)  # dirty written back first


class TestLocalCP:
    def test_release_op_acks_flush_volume(self, device):
        device.l2s[2].access(7, True)
        ack = device.local_cps[2].execute(
            SyncOp(SyncOpKind.RELEASE, 2, reason="test"))
        assert ack.lines_flushed == 1
        assert ack.lines_invalidated == 0

    def test_acquire_op_acks_drop_volume(self, device):
        device.l2s[2].access(7, False)
        ack = device.local_cps[2].execute(
            SyncOp(SyncOpKind.ACQUIRE, 2, reason="test"))
        assert ack.lines_invalidated == 1

    def test_misrouted_op_rejected(self, device):
        with pytest.raises(ValueError):
            device.local_cps[0].execute(
                SyncOp(SyncOpKind.RELEASE, 1, reason="bad"))

    def test_ranged_op_via_local_cp(self, device):
        device.l2s[3].access(5, True)
        ack = device.local_cps[3].execute(
            SyncOp(SyncOpKind.RELEASE, 3, reason="r", ranges=((0, 4096),)))
        assert ack.lines_flushed == 1


class TestHomeMapIntegration:
    def test_page_granularity_scaled(self, device):
        assert device.home_map.lines_per_page \
            == device.config.scaled_page_lines

    def test_first_touch_through_device(self, device):
        assert device.home_of(100, toucher=3) == 3
        assert device.home_of(100, toucher=0) == 3
