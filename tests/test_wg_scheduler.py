"""Unit tests for static kernel-wide WG partitioning."""

import pytest

from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement, WGScheduler


def packet(num_wgs, mask=None):
    return KernelPacket(kernel_id=0, name="k", stream_id=0, num_wgs=num_wgs,
                        args=(), chiplet_mask=mask)


class TestPlacement:
    def test_share_of(self):
        p = Placement(chiplets=(0, 1), wg_counts=(3, 1))
        assert p.share_of(0) == pytest.approx(0.75)
        assert p.share_of(1) == pytest.approx(0.25)
        assert p.share_of(2) == 0.0

    def test_logical_of(self):
        p = Placement(chiplets=(2, 3), wg_counts=(1, 1))
        assert p.logical_of(2) == 0
        assert p.logical_of(3) == 1
        assert p.logical_of(0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Placement(chiplets=(), wg_counts=())
        with pytest.raises(ValueError):
            Placement(chiplets=(0,), wg_counts=(1, 2))


class TestWGScheduler:
    def test_even_partitioning(self):
        sched = WGScheduler(num_chiplets=4)
        p = sched.place(packet(num_wgs=16))
        assert p.chiplets == (0, 1, 2, 3)
        assert p.wg_counts == (4, 4, 4, 4)
        assert p.total_wgs == 16

    def test_uneven_partitioning_conserves_wgs(self):
        sched = WGScheduler(num_chiplets=3)
        p = sched.place(packet(num_wgs=10))
        assert p.total_wgs == 10
        assert max(p.wg_counts) - min(p.wg_counts) <= 1

    def test_fewer_wgs_than_chiplets(self):
        sched = WGScheduler(num_chiplets=4)
        p = sched.place(packet(num_wgs=2))
        assert p.num_chiplets == 2
        assert p.wg_counts == (1, 1)

    def test_chiplet_mask_restricts(self):
        sched = WGScheduler(num_chiplets=4)
        p = sched.place(packet(num_wgs=8, mask=(2, 3)))
        assert p.chiplets == (2, 3)
        assert p.total_wgs == 8

    def test_mask_beyond_device_trimmed(self):
        sched = WGScheduler(num_chiplets=2)
        p = sched.place(packet(num_wgs=8, mask=(0, 5)))
        assert p.chiplets == (0,)

    def test_empty_mask_rejected(self):
        sched = WGScheduler(num_chiplets=2)
        with pytest.raises(ValueError):
            sched.place(packet(num_wgs=8, mask=(5,)))

    def test_invalid_chiplet_count(self):
        with pytest.raises(ValueError):
            WGScheduler(num_chiplets=0)
