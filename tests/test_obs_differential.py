"""Tracer purity: traced runs are bit-identical to untraced ones.

The observability layer is a pure observer — attaching an
:class:`~repro.obs.EventTracer` must not change a single serialized
field, on any trace path, under any protocol. This differential is the
referee for that invariant (the obs bench re-checks it at full scale).
"""

from __future__ import annotations

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.obs import EventTracer
from repro.workloads.suite import build_workload
from tests.conftest import TEST_SCALE

TRACE_PATHS = ("line", "run", "memo")
PROTOCOLS = ("baseline", "hmg", "cpelide", "timestamp", "cpelide-ts")
#: One pure-partitioned streaming workload, one iterative stencil (the
#: memo path's replay regime).
WORKLOADS = ("square", "hotspot")


def _run(workload_name: str, protocol: str, trace_path: str, tracer=None):
    config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
    sim = Simulator(config, protocol, trace_path=trace_path, tracer=tracer)
    return sim.run(build_workload(workload_name, config))


@pytest.mark.parametrize("workload_name", WORKLOADS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("trace_path", TRACE_PATHS)
def test_traced_run_is_bit_identical(workload_name, protocol, trace_path):
    untraced = _run(workload_name, protocol, trace_path)
    tracer = EventTracer()
    traced = _run(workload_name, protocol, trace_path, tracer=tracer)
    assert traced.to_dict() == untraced.to_dict()
    # The tracer really observed the run (not a vacuous pass): every
    # path emits the run bracket and one completion per kernel.
    assert tracer.events[0].phase == "begin"
    assert tracer.events[-1].phase == "end"
    assert tracer.events_of("kernel", "complete")


def test_tracer_reuse_across_runs_stays_pure():
    """One tracer observing several runs still perturbs none of them."""
    tracer = EventTracer()
    for protocol in PROTOCOLS:
        untraced = _run("square", protocol, "run")
        traced = _run("square", protocol, "run", tracer=tracer)
        assert traced.to_dict() == untraced.to_dict()
    assert len(tracer.events_of("run", "begin")) == len(PROTOCOLS)


def test_memo_path_traced_replay_matches_cold_run():
    """A traced memo replay (hits) matches an untraced cold run."""
    from repro.gpu.memo import clear_memo_stores

    clear_memo_stores()
    cold = _run("hotspot", "cpelide", "memo")
    tracer = EventTracer()
    warm = _run("hotspot", "cpelide", "memo", tracer=tracer)
    assert warm.to_dict() == cold.to_dict()
    assert warm.memo_hits > 0
    assert tracer.events_of("memo", "hit")
