"""The repro.errors hierarchy and the versioned repro.api surface."""

from __future__ import annotations

import warnings

import pytest

import repro.api
from repro.errors import (
    CacheError,
    ConfigError,
    InvariantViolation,
    OracleDivergence,
    ReproError,
)
from repro.gpu.config import GPUConfig
from repro.workloads.suite import build_workload
from tests.conftest import TEST_SCALE


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for exc in (ConfigError, CacheError, InvariantViolation,
                    OracleDivergence):
            assert issubclass(exc, ReproError)

    def test_dual_inheritance_keeps_legacy_except_clauses_working(self):
        # Call sites that caught the old builtin types keep catching.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(CacheError, RuntimeError)
        assert issubclass(InvariantViolation, AssertionError)
        assert issubclass(OracleDivergence, AssertionError)

    def test_sanitizer_and_bench_errors_slot_in(self):
        from repro.bench import EquivalenceError
        from repro.check.sanitizer import CheckError

        assert issubclass(CheckError, InvariantViolation)
        assert issubclass(EquivalenceError, OracleDivergence)

    def test_config_validation_raises_config_error(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_chiplets=0)
        with pytest.raises(ConfigError):
            GPUConfig(num_chiplets=4, scale=-1.0)

    def test_unknown_trace_path_raises_config_error(self):
        from repro.gpu.sim import resolve_trace_path

        with pytest.raises(ConfigError):
            resolve_trace_path("zigzag")


class TestApiSurface:
    def test_api_version(self):
        import repro as repro_pkg

        assert repro.api.__api_version__ == "4.0"
        assert repro_pkg.__api_version__ == "4.0"

    def test_simulate_rejects_cache_with_workload_instance(self):
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        workload = build_workload("square", config)
        with pytest.raises(ConfigError, match="cache"):
            repro.api.simulate(workload, "cpelide", config=config,
                               cache=True)

    def test_simulate_options_are_keyword_only(self):
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        with pytest.raises(TypeError):
            repro.api.simulate("square", "cpelide", config)

    def test_deep_import_shim_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="repro.gpu.device"):
            device_cls = repro.api.Device
        from repro.gpu.device import Device
        assert device_cls is Device

    def test_stable_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.api.GPUConfig is GPUConfig

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.api.definitely_not_a_thing
