"""Unit tests for the address space, buffers, and first-touch placement."""

import pytest

from repro.memory.address import (
    LINE_SIZE,
    PAGE_SIZE,
    AddressSpace,
    Buffer,
    HomeMap,
    line_index,
    line_of,
    lines_in_range,
    page_of,
)


class TestLineMath:
    def test_line_of_aligns_down(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 64
        assert line_of(130) == 128

    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(LINE_SIZE) == 1
        assert line_index(LINE_SIZE * 10 + 5) == 10

    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_lines_in_range_covers_partial_lines(self):
        assert list(lines_in_range(0, 1)) == [0]
        assert list(lines_in_range(10, 70)) == [0, 1]
        assert list(lines_in_range(64, 128)) == [1]

    def test_lines_in_range_empty(self):
        assert list(lines_in_range(100, 100)) == []
        assert list(lines_in_range(200, 100)) == []


class TestAddressSpace:
    def test_allocations_are_page_aligned(self):
        space = AddressSpace()
        a = space.alloc("a", 100)
        b = space.alloc("b", PAGE_SIZE + 1)
        assert a.base % PAGE_SIZE == 0
        assert b.base % PAGE_SIZE == 0
        assert a.size == PAGE_SIZE
        assert b.size == 2 * PAGE_SIZE

    def test_allocations_do_not_overlap(self):
        space = AddressSpace()
        bufs = [space.alloc(f"b{i}", 3000) for i in range(10)]
        for first, second in zip(bufs, bufs[1:]):
            assert first.end <= second.base

    def test_buffer_ids_dense(self):
        space = AddressSpace()
        for i in range(5):
            assert space.alloc(f"b{i}", 64).buffer_id == i

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("bad", 0)

    def test_buffer_of_line_finds_owner(self):
        space = AddressSpace()
        a = space.alloc("a", PAGE_SIZE)
        b = space.alloc("b", PAGE_SIZE)
        assert space.buffer_of_line(a.first_line) is a
        assert space.buffer_of_line(b.first_line) is b
        assert space.buffer_of_line(b.first_line + b.num_lines) is None
        assert space.buffer_of_line(0) is None

    def test_footprint(self):
        space = AddressSpace()
        space.alloc("a", PAGE_SIZE)
        space.alloc("b", PAGE_SIZE * 2)
        assert space.footprint_bytes() == 3 * PAGE_SIZE


class TestBuffer:
    def test_num_lines(self):
        buf = Buffer("x", PAGE_SIZE, PAGE_SIZE, 0)
        assert buf.num_lines == PAGE_SIZE // LINE_SIZE

    def test_slice_lines_partitions_exactly(self):
        buf = Buffer("x", PAGE_SIZE, PAGE_SIZE * 4, 0)
        slices = [buf.slice_lines(i, 4) for i in range(4)]
        assert slices[0][0] == buf.first_line
        assert slices[-1][1] == buf.first_line + buf.num_lines
        for (lo1, hi1), (lo2, hi2) in zip(slices, slices[1:]):
            assert hi1 == lo2

    def test_slice_lines_uneven(self):
        buf = Buffer("x", 0, LINE_SIZE * 10, 0)
        total = sum(hi - lo for lo, hi in
                    (buf.slice_lines(i, 3) for i in range(3)))
        assert total == 10

    def test_slice_out_of_range(self):
        buf = Buffer("x", 0, LINE_SIZE * 8, 0)
        with pytest.raises(ValueError):
            buf.slice_lines(4, 4)
        with pytest.raises(ValueError):
            buf.slice_lines(-1, 4)

    def test_byte_range_of_slice(self):
        buf = Buffer("x", PAGE_SIZE, PAGE_SIZE * 2, 0)
        lo, hi = buf.byte_range_of_slice(0, 2)
        assert lo == buf.base
        assert hi == buf.base + PAGE_SIZE

    def test_contains_line(self):
        buf = Buffer("x", PAGE_SIZE, PAGE_SIZE, 0)
        assert buf.contains_line(buf.first_line)
        assert buf.contains_line(buf.first_line + buf.num_lines - 1)
        assert not buf.contains_line(buf.first_line + buf.num_lines)
        assert not buf.contains_line(buf.first_line - 1)


class TestHomeMap:
    def test_first_touch_assigns(self):
        homes = HomeMap(num_chiplets=4)
        assert homes.home_of_line(100, toucher=2) == 2
        # Sticky thereafter, regardless of who asks.
        assert homes.home_of_line(100, toucher=0) == 2

    def test_page_granularity(self):
        homes = HomeMap(num_chiplets=4, lines_per_page=64)
        homes.home_of_line(0, toucher=1)
        assert homes.home_of_line(63, toucher=3) == 1   # same page
        assert homes.home_of_line(64, toucher=3) == 3   # next page

    def test_scaled_page_granularity(self):
        homes = HomeMap(num_chiplets=4, lines_per_page=2)
        homes.home_of_line(0, toucher=0)
        assert homes.home_of_line(1, toucher=2) == 0
        assert homes.home_of_line(2, toucher=2) == 2

    def test_peek_does_not_assign(self):
        homes = HomeMap(num_chiplets=4)
        assert homes.peek_home_of_line(500) is None
        assert homes.num_placed_pages == 0

    def test_invalid_toucher_rejected(self):
        homes = HomeMap(num_chiplets=2)
        with pytest.raises(ValueError):
            homes.home_of_line(0, toucher=5)

    def test_placement_histogram(self):
        homes = HomeMap(num_chiplets=2, lines_per_page=1)
        homes.home_of_line(0, toucher=0)
        homes.home_of_line(1, toucher=0)
        homes.home_of_line(2, toucher=1)
        assert homes.placement_histogram() == [2, 1]

    def test_invalid_lines_per_page(self):
        with pytest.raises(ValueError):
            HomeMap(num_chiplets=2, lines_per_page=0)
