"""Cross-protocol invariants over real workload models (tiny scale)."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

#: A diverse subset: streaming, stencil, graph, ML, low-reuse.
SUBSET = ("square", "hotspot3d", "color", "rnn-gru-large", "pathfinder")
PROTOCOLS = ("baseline", "cpelide", "hmg", "nosync")

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in SUBSET:
        out[name] = {}
        for protocol in PROTOCOLS:
            out[name][protocol] = Simulator(CONFIG, protocol).run(
                build_workload(name, CONFIG))
    return out


class TestCrossProtocolInvariants:
    @pytest.mark.parametrize("name", SUBSET)
    def test_all_protocols_complete(self, results, name):
        for protocol in PROTOCOLS:
            res = results[name][protocol]
            assert res.wall_cycles > 0
            assert res.metrics.total_accesses().l2_accesses > 0

    @pytest.mark.parametrize("name", SUBSET)
    def test_nosync_is_the_miss_rate_floor(self, results, name):
        """Disabling all implicit sync upper-bounds everyone's reuse."""
        floor = results[name]["nosync"].metrics.total_accesses().l2_miss_rate
        for protocol in ("baseline", "cpelide"):
            rate = results[name][protocol].metrics.total_accesses().l2_miss_rate
            assert rate >= floor - 1e-9, (protocol, rate, floor)

    @pytest.mark.parametrize("name", SUBSET)
    def test_cpelide_never_issues_more_than_baseline(self, results, name):
        base = results[name]["baseline"].metrics.total_sync()
        cpe = results[name]["cpelide"].metrics.total_sync()
        assert cpe.acquires_issued <= base.acquires_issued
        assert cpe.releases_issued <= base.releases_issued

    @pytest.mark.parametrize("name", SUBSET)
    def test_cpelide_miss_rate_never_above_baseline(self, results, name):
        base = results[name]["baseline"].metrics.total_accesses().l2_miss_rate
        cpe = results[name]["cpelide"].metrics.total_accesses().l2_miss_rate
        assert cpe <= base + 1e-9

    @pytest.mark.parametrize("name", SUBSET)
    def test_trace_is_protocol_independent(self, results, name):
        """All protocols process the identical access stream: the L1-L2
        flit component (demand-side) must match across protocols."""
        values = {p: results[name][p].metrics.total_traffic().l1_l2
                  for p in PROTOCOLS}
        assert len(set(values.values())) == 1, values

    @pytest.mark.parametrize("name", SUBSET)
    def test_energy_components_positive_and_consistent(self, results, name):
        for protocol in PROTOCOLS:
            energy = results[name][protocol].energy
            assert energy["total"] > 0
            assert energy["total"] == pytest.approx(
                sum(v for k, v in energy.items() if k != "total"))

    @pytest.mark.parametrize("name", SUBSET)
    def test_hmg_leaves_no_dirty_data_unflushed(self, results, name):
        """Write-through HMG commits every store to memory: its finalize
        pass must have nothing left to flush."""
        final = results[name]["hmg"].metrics.kernels[-1]
        if final.kernel_name == "__finalize__":
            assert final.sync.lines_flushed == 0


class TestChipletCountInvariants:
    @pytest.mark.parametrize("chiplets", [2, 6, 7])
    def test_protocols_run_at_other_chiplet_counts(self, chiplets):
        config = GPUConfig(num_chiplets=chiplets, scale=TEST_SCALE)
        for protocol in ("baseline", "cpelide", "hmg"):
            res = Simulator(config, protocol).run(
                build_workload("square", config))
            assert res.wall_cycles > 0
            assert res.num_chiplets == chiplets

    def test_single_chiplet_degenerate_case(self):
        """On one chiplet everything is local and CPElide still works."""
        config = GPUConfig(num_chiplets=1, scale=TEST_SCALE)
        res = Simulator(config, "cpelide").run(
            build_workload("square", config))
        assert res.metrics.total_traffic().remote == 0
