"""Unit tests for the address-translation layer (Sec. VI range flush)."""

import pytest

from repro.memory.address import LINE_SIZE, PAGE_SIZE
from repro.memory.translation import AddressTranslator, PageSpan


class TestTranslateRange:
    def test_single_page(self):
        tr = AddressTranslator()
        spans = tr.translate_range(0, 100)
        assert len(spans) == 1
        assert spans[0].virtual_page == 0
        assert spans[0].first_line == 0
        assert spans[0].last_line == 2  # 100 bytes -> 2 lines
        assert tr.translations == 1

    def test_page_straddling_range(self):
        tr = AddressTranslator()
        spans = tr.translate_range(PAGE_SIZE - 64, PAGE_SIZE + 64)
        assert len(spans) == 2
        assert spans[0].virtual_page == 0
        assert spans[1].virtual_page == 1
        # Each span covers exactly one line.
        assert spans[0].last_line - spans[0].first_line == 1
        assert spans[1].last_line - spans[1].first_line == 1

    def test_spans_cover_exactly_the_lines(self):
        tr = AddressTranslator()
        start, end = 3 * PAGE_SIZE + 128, 5 * PAGE_SIZE - 64
        lines = [l for span in tr.translate_range(start, end)
                 for l in span.lines()]
        expected = list(range(start // LINE_SIZE, end // LINE_SIZE))
        assert lines == expected

    def test_empty_range(self):
        tr = AddressTranslator()
        assert tr.translate_range(100, 100) == []
        assert tr.translations == 0

    def test_multiple_ranges(self):
        tr = AddressTranslator()
        spans = tr.translate_ranges([(0, 64), (PAGE_SIZE, PAGE_SIZE + 64)])
        assert len(spans) == 2
        assert tr.translations == 2

    def test_walk_cycles(self):
        tr = AddressTranslator(walk_latency_cycles=100.0)
        assert tr.walk_cycles(3) == 300.0

    def test_reset(self):
        tr = AddressTranslator()
        tr.translate_range(0, PAGE_SIZE * 3)
        tr.reset()
        assert tr.translations == 0


class TestDeviceIntegration:
    def test_range_ops_count_translations(self):
        from repro.gpu.config import GPUConfig
        from repro.gpu.device import Device
        device = Device(GPUConfig(num_chiplets=2, scale=1 / 64))
        device.l2s[0].access(0, True)
        device.flush_l2_ranges(0, [(0, PAGE_SIZE)])
        assert device.translator.translations == 1
