"""Tests for the HIP-like runtime front end (Listings 1-2)."""

import pytest

from repro.gpu.config import GPUConfig
from repro.hip.runtime import HipRuntime
from repro.memory.address import PAGE_SIZE

from tests.conftest import TEST_SCALE


@pytest.fixture
def rt():
    return HipRuntime(GPUConfig(num_chiplets=4, scale=TEST_SCALE),
                      protocol="cpelide")


class TestMalloc:
    def test_page_aligned(self, rt):
        buf = rt.hip_malloc("A", 100)
        assert buf.base % PAGE_SIZE == 0

    def test_distinct_buffers(self, rt):
        a = rt.hip_malloc("A", PAGE_SIZE)
        b = rt.hip_malloc("B", PAGE_SIZE)
        assert a.end <= b.base


class TestAccessModes:
    def test_listing1_flow(self, rt):
        """The Listing 1 example end to end."""
        a = rt.hip_malloc("A", 64 * 4096)
        c = rt.hip_malloc("C", 64 * 4096)
        square = rt.kernel("square", compute_intensity=1.0)
        rt.hip_set_access_mode(square, c, "R/W")
        rt.hip_set_access_mode(square, a, "R")
        rt.hip_launch_kernel(square)
        result = rt.run("listing1")
        assert result.metrics.num_kernels >= 1
        assert result.wall_cycles > 0

    def test_mode_parsing(self, rt):
        buf = rt.hip_malloc("A", PAGE_SIZE)
        k = rt.kernel("k")
        rt.hip_set_access_mode(k, buf, "r")
        rt.hip_set_access_mode(k, buf, "RW")
        rt.hip_set_access_mode(k, buf, "R/W")
        with pytest.raises(ValueError):
            rt.hip_set_access_mode(k, buf, "WO")

    def test_unannotated_kernel_rejected(self, rt):
        k = rt.kernel("empty")
        with pytest.raises(ValueError, match="no access-mode annotations"):
            rt.hip_launch_kernel(k)


class TestRanges:
    def test_listing2_ranges_validated(self, rt):
        c = rt.hip_malloc("C", 64 * 4096)
        k = rt.kernel("square")
        mid = c.base + c.size // 2
        rt.hip_set_access_mode_range(k, c, "R/W", [
            (c.base, mid, 0), (mid, c.end, 1)])
        rt.hip_launch_kernel(k)

    def test_out_of_buffer_range_rejected(self, rt):
        c = rt.hip_malloc("C", PAGE_SIZE)
        k = rt.kernel("square")
        with pytest.raises(ValueError, match="outside buffer"):
            rt.hip_set_access_mode_range(k, c, "R/W",
                                         [(c.base, c.end + 64, 0)])


class TestStreams:
    def test_hip_set_device_binds_stream(self, rt):
        buf = rt.hip_malloc("A", 16 * 4096)
        rt.hip_set_device(stream=1, chiplets=[2, 3])
        k = rt.kernel("k", stream=1)
        rt.hip_set_access_mode(k, buf, "R/W")
        rt.hip_launch_kernel(k)
        result = rt.run()
        assert result.metrics.kernels[0].chiplets_used == 2

    def test_empty_binding_rejected(self, rt):
        with pytest.raises(ValueError):
            rt.hip_set_device(stream=0, chiplets=[])


class TestEndToEnd:
    def test_iterated_launches_benefit_from_elision(self):
        results = {}
        for protocol in ("baseline", "cpelide"):
            rt = HipRuntime(GPUConfig(num_chiplets=4, scale=TEST_SCALE),
                            protocol=protocol)
            a = rt.hip_malloc("A", 64 * 4096)
            c = rt.hip_malloc("C", 64 * 4096)
            for _ in range(8):
                k = rt.kernel("square", compute_intensity=1.0)
                rt.hip_set_access_mode(k, a, "R")
                rt.hip_set_access_mode(k, c, "R/W")
                rt.hip_launch_kernel(k)
            results[protocol] = rt.run().wall_cycles
        assert results["cpelide"] < results["baseline"]


class TestKernelResources:
    def test_resources_flow_through(self):
        from repro.cp.dispatcher import KernelResources
        rt = HipRuntime(GPUConfig(num_chiplets=4, scale=TEST_SCALE))
        buf = rt.hip_malloc("A", 16 * 4096)
        k = rt.kernel("heavy", resources=KernelResources(vgprs_per_thread=128))
        rt.hip_set_access_mode(k, buf, "R")
        rt.hip_launch_kernel(k)
        frozen = rt._kernels[-1]
        assert frozen.resources is not None
        assert frozen.resources.vgprs_per_thread == 128

    def test_resources_survive_stream_binding(self):
        from repro.cp.dispatcher import KernelResources
        rt = HipRuntime(GPUConfig(num_chiplets=4, scale=TEST_SCALE))
        rt.hip_set_device(stream=0, chiplets=[0, 1])
        buf = rt.hip_malloc("A", 16 * 4096)
        k = rt.kernel("heavy", resources=KernelResources(lds_bytes_per_wg=8192))
        rt.hip_set_access_mode(k, buf, "R")
        rt.hip_launch_kernel(k)
        frozen = rt._kernels[-1]
        assert frozen.chiplet_mask == (0, 1)
        assert frozen.resources.lds_bytes_per_wg == 8192
