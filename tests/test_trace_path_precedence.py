"""Satellite regressions for the caching/memo layer bugfix sweep.

* Trace-path precedence — an explicit ``trace_path`` argument always
  beats ``REPRO_TRACE_PATH``, which beats the default; the empty string
  counts as unset. The precedence must hold identically in forked sweep
  workers, which inherit the parent's environment.
* Memo-counter transport — counters survive the sweep engine's
  ``to_dict()`` process/cache boundary beside the payload, and
  cache-served results report ``None`` (not fabricated zeros) plus
  ``from_cache=True``.
* Salt hardening — a stale ``_SALT_MODULES``/``_SALT_PACKAGES`` entry
  fails with a clear configuration error, not a bare
  ``FileNotFoundError`` from deep inside a sweep.
"""

from __future__ import annotations

import pytest

from repro.engine import cache as engine_cache
from repro.engine.cache import ResultCache
from repro.engine.runner import SweepRunner, _fork_available
from repro.engine.spec import SweepSpec
from repro.gpu.config import GPUConfig
from repro.gpu.memo import clear_memo_stores
from repro.gpu.sim import (
    DEFAULT_TRACE_PATH,
    TRACE_PATH_ENV,
    Simulator,
    resolve_trace_path,
)

from tests.conftest import TEST_SCALE


@pytest.fixture(autouse=True)
def _fresh_memo_store():
    clear_memo_stores()
    yield
    clear_memo_stores()


def small_spec(workloads=("square",)) -> SweepSpec:
    return SweepSpec.grid(workloads=workloads, protocols=("cpelide",),
                          chiplet_counts=(4,), scale=TEST_SCALE)


class TestResolveTracePath:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_PATH_ENV, raising=False)
        assert resolve_trace_path() == DEFAULT_TRACE_PATH

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "memo")
        assert resolve_trace_path() == "memo"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "memo")
        assert resolve_trace_path("line") == "line"
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        assert Simulator(config, trace_path="line").trace_path == "line"

    def test_empty_env_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "")
        assert resolve_trace_path() == DEFAULT_TRACE_PATH

    def test_invalid_explicit_raises_despite_valid_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "run")
        with pytest.raises(ValueError):
            resolve_trace_path("bogus")

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_trace_path()


class TestMemoCounterTransport:
    def test_non_memo_paths_report_none(self):
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        from repro.workloads.suite import build_workload
        for trace_path in ("line", "run"):
            result = Simulator(config, "cpelide",
                               trace_path=trace_path).run(
                build_workload("square", config))
            assert result.memo_hits is None
            assert result.memo_misses is None
            assert result.memo_bypasses is None
            assert result.from_cache is False

    def test_serial_sweep_transports_counters(self, monkeypatch):
        monkeypatch.setenv(TRACE_PATH_ENV, "memo")
        outcome = SweepRunner(jobs=1).run(small_spec()).outcomes[0]
        assert outcome.cached is False
        assert outcome.result.memo_hits is not None
        assert outcome.result.memo_hits + outcome.result.memo_misses > 0

    @pytest.mark.skipif(not _fork_available(),
                        reason="platform lacks fork")
    def test_forked_workers_honor_env_and_transport_counters(
            self, monkeypatch):
        """The regression this satellite pins: workers run the memo path
        when the parent's environment says so, and their counters cross
        the pickled-payload boundary instead of silently reading zero."""
        monkeypatch.setenv(TRACE_PATH_ENV, "memo")
        sweep = SweepRunner(jobs=2).run(
            small_spec(workloads=("square", "babelstream")))
        for outcome in sweep.outcomes:
            assert outcome.cached is False
            assert outcome.result.memo_hits is not None
            assert (outcome.result.memo_hits
                    + outcome.result.memo_misses
                    + outcome.result.memo_bypasses) > 0

    def test_cache_served_results_are_marked(self, tmp_path, monkeypatch):
        """A warm ResultCache hit must say so — ``from_cache=True`` and
        ``None`` counters — never fabricate zero memo activity."""
        monkeypatch.setenv(TRACE_PATH_ENV, "memo")
        cache = ResultCache(root=tmp_path / "c")
        first = SweepRunner(jobs=1, cache=cache).run(small_spec())
        warm = SweepRunner(jobs=1, cache=cache).run(small_spec())
        assert first.outcomes[0].result.from_cache is False
        assert first.outcomes[0].result.memo_hits is not None
        outcome = warm.outcomes[0]
        assert outcome.cached is True
        assert outcome.result.from_cache is True
        assert outcome.result.memo_hits is None
        assert outcome.result.memo_misses is None
        assert outcome.result.memo_bypasses is None

    def test_from_cache_not_serialized(self, tmp_path, monkeypatch):
        """``from_cache`` is runtime provenance, not result identity:
        the stored payload must stay bit-identical to a fresh run's."""
        cache = ResultCache(root=tmp_path / "c")
        first = SweepRunner(jobs=1, cache=cache).run(small_spec())
        warm = SweepRunner(jobs=1, cache=cache).run(small_spec())
        assert first.to_dicts() == warm.to_dicts()
        assert "from_cache" not in repr(warm.to_dicts())


class TestSaltHardening:
    def test_spec_module_is_salted(self):
        """engine/spec.py shapes every cache key's payload, so editing
        it must invalidate entries."""
        assert "engine/spec.py" in engine_cache._SALT_MODULES

    def test_missing_salt_module_is_a_clear_error(self, monkeypatch):
        monkeypatch.setattr(engine_cache, "_SALT_MODULES",
                            ("engine/does-not-exist.py",))
        engine_cache.code_version_salt.cache_clear()
        try:
            with pytest.raises(RuntimeError,
                               match="does-not-exist.*_SALT_MODULES"):
                engine_cache.code_version_salt()
        finally:
            engine_cache.code_version_salt.cache_clear()

    def test_missing_salt_package_is_a_clear_error(self, monkeypatch):
        monkeypatch.setattr(engine_cache, "_SALT_PACKAGES",
                            ("no-such-package",))
        engine_cache.code_version_salt.cache_clear()
        try:
            with pytest.raises(RuntimeError,
                               match="no-such-package.*_SALT_PACKAGES"):
                engine_cache.code_version_salt()
        finally:
            engine_cache.code_version_salt.cache_clear()
