"""The repro.check sanitizer and differential oracle.

Two halves:

* Clean runs — every protocol passes the sanitizer over real and
  synthetic workloads, checked runs stay bit-identical to unchecked
  ones, and the oracle reports all-identical over a small matrix.
* Meta-tests — each intentionally injected simulator bug (a dropped
  release, a dropped acquire, a no-op flush, a table-corrupting
  acquire, a directory that forgets sharers) must be *caught*. A
  sanitizer that passes clean runs but misses planted bugs checks
  nothing.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.check import CheckError, SyncSanitizer, checks_enabled
from repro.check.oracle import diff_paths, run_oracle
from repro.core.elision import ElisionEngine
from repro.core.states import ChipletState
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.gpu.sim import Simulator
from repro.memory.address import AddressSpace
from repro.workloads.base import Kernel, KernelArg, PatternKind, Workload
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

#: Plain and sanitizing configs used throughout.
CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
CHECKED = dataclasses.replace(CONFIG, check_invariants=True)


def producer_consumer_workload() -> Workload:
    """Forces both flavors of sync under cpelide: every chiplet dirties
    the shared buffer, one chiplet overwrites it (release for the other
    dirty holders, who become Stale), then every chiplet reads it back
    (acquire for the stale holders)."""
    space = AddressSpace()
    buf = space.alloc("B", 32 * 4096)
    shared = dict(pattern=PatternKind.SHARED)
    kernels = [
        Kernel("all-write",
               args=(KernelArg(buf, AccessMode.RW, **shared),)),
        Kernel("one-write",
               args=(KernelArg(buf, AccessMode.RW, **shared),),
               chiplet_mask=(0,)),
        Kernel("all-read",
               args=(KernelArg(buf, AccessMode.R, **shared),)),
    ]
    return Workload(name="pc", space=space, kernels=kernels)


# ---------------------------------------------------------------------------
# Enablement


class TestEnablement:
    def test_config_flag(self):
        assert not checks_enabled(CONFIG)
        assert checks_enabled(CHECKED)

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert checks_enabled(CONFIG)
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not checks_enabled(CONFIG)
        monkeypatch.setenv("REPRO_CHECK", "")
        assert not checks_enabled(CONFIG)

    def test_disabled_sim_builds_no_sanitizer(self):
        sim = Simulator(CONFIG, "cpelide")
        sim.run(producer_consumer_workload())
        assert sim.last_sanitizer is None

    def test_check_invariants_separates_cache_keys(self):
        # Checked and unchecked runs must never share engine cache
        # entries; the flag lives in the config precisely for this.
        from repro.engine.spec import JobSpec
        from repro.engine.cache import ResultCache

        cache = ResultCache(salt="s")
        plain = cache.key(JobSpec(workload="square", protocol="cpelide",
                                  config=CONFIG))
        checked = cache.key(JobSpec(workload="square", protocol="cpelide",
                                    config=CHECKED))
        assert plain != checked


# ---------------------------------------------------------------------------
# Clean runs


class TestCleanRuns:
    @pytest.mark.parametrize("protocol", ["baseline", "nosync", "hmg",
                                          "hmg-wb", "cpelide"])
    def test_suite_workloads_pass(self, protocol):
        for name in ("square", "hotspot", "bfs"):
            sim = Simulator(CHECKED, protocol)
            sim.run(build_workload(name, CHECKED))
            assert sim.last_sanitizer is not None
            assert sim.last_sanitizer.kernels_checked > 0

    @pytest.mark.parametrize("protocol", ["baseline", "hmg", "cpelide"])
    def test_producer_consumer_passes(self, protocol):
        sim = Simulator(CHECKED, protocol)
        sim.run(producer_consumer_workload())
        assert sim.last_sanitizer.kernels_checked == 3

    def test_synthetic_workload_exercises_both_sync_kinds(self):
        # Guard the meta-tests' premise: if this workload stopped
        # triggering releases *and* acquires, the injected-bug tests
        # below would vacuously pass.
        result = Simulator(CONFIG, "cpelide").run(producer_consumer_workload())
        sync = result.metrics.total_sync()
        assert sync.releases_issued > 0
        assert sync.acquires_issued > 0

    @pytest.mark.parametrize("protocol", ["baseline", "hmg", "cpelide"])
    def test_checked_run_bit_identical(self, protocol):
        plain = Simulator(CONFIG, protocol).run(producer_consumer_workload())
        checked = Simulator(CHECKED, protocol).run(
            producer_consumer_workload())
        assert plain.to_dict() == checked.to_dict()


# ---------------------------------------------------------------------------
# Meta-tests: planted bugs must be caught


class TestInjectedBugs:
    def _run_checked(self, protocol="cpelide"):
        return Simulator(CHECKED, protocol).run(producer_consumer_workload())

    def test_dropped_release_is_caught(self, monkeypatch):
        """Dirty-drop: the engine decides a flush is needed but the op
        never reaches the local CP."""
        original = ElisionEngine._order_ops
        monkeypatch.setattr(
            ElisionEngine, "_order_ops",
            staticmethod(lambda rel, acq: [
                op for op in original(rel, acq)
                if op.kind is not SyncOpKind.RELEASE]))
        with pytest.raises(CheckError, match="op-set-mismatch"):
            self._run_checked()

    def test_dropped_acquire_is_caught(self, monkeypatch):
        """Stale-read hazard: a chiplet re-reads a range it holds Stale
        without the mandated invalidate."""
        original = ElisionEngine._order_ops
        monkeypatch.setattr(
            ElisionEngine, "_order_ops",
            staticmethod(lambda rel, acq: [
                op for op in original(rel, acq)
                if op.kind is not SyncOpKind.ACQUIRE]))
        with pytest.raises(CheckError, match="op-set-mismatch"):
            self._run_checked()

    def test_noop_flush_is_caught(self, monkeypatch):
        """A release that reports success but leaves the L2 dirty."""
        monkeypatch.setattr(Device, "flush_l2", lambda self, chiplet: 0)
        with pytest.raises(CheckError,
                           match="untracked-dirty|unflushed-at-run-end"):
            self._run_checked()

    def test_phantom_stale_marking_is_caught(self, monkeypatch):
        """An install pass that forgets to exclude Not-Present chiplets
        from Valid->Stale marking performs Fig. 6's one forbidden edge
        (NP -> Stale) on first touch."""
        original = ElisionEngine._install

        def bad_install(self, region):
            ops = original(self, region)
            if region.mode.writes:
                entry, _ = self.table.get_or_create(region)
                for holder in range(self.table.num_chiplets):
                    if holder not in region.chiplet_ranges:
                        entry.states[holder] = ChipletState.STALE
            return ops

        monkeypatch.setattr(ElisionEngine, "_install", bad_install)
        space = AddressSpace()
        buf = space.alloc("B", 32 * 4096)
        workload = Workload(name="first-touch", space=space, kernels=[
            Kernel("one-write",
                   args=(KernelArg(buf, AccessMode.RW,
                                   pattern=PatternKind.SHARED),),
                   chiplet_mask=(0,))])
        with pytest.raises(CheckError, match="illegal-transition"):
            Simulator(CHECKED, "cpelide").run(workload)

    def test_forgotten_directory_sharer_is_caught(self, monkeypatch):
        """HMG: a remote fill whose sharer registration is lost — the
        next store could not invalidate the remote copy."""
        from repro.coherence.hmg import HMGProtocol

        monkeypatch.setattr(HMGProtocol, "_register_sharer",
                            lambda self, home, line, sharer: None)
        with pytest.raises(CheckError, match="directory-sharer-missing"):
            self._run_checked(protocol="hmg")

    def test_stale_read_unit(self):
        """The stale-read invariant itself, driven directly: it guards
        the purely-remote-accessor path where no launch-time install
        overwrites the accessor's state."""
        config = CHECKED
        device = Device(config)
        from repro.coherence.base import make_protocol
        protocol = make_protocol("cpelide", config, device)
        sanitizer = SyncSanitizer(config, device, protocol)
        table = protocol.table
        entry, _ = table.get_or_create(SimpleNamespace(
            name="B", base=0, end=4096, mode=AccessMode.RW,
            chiplet_ranges={0: (0, 4096)}))
        entry.states[1] = ChipletState.STALE
        entry.ranges[1] = (0, 4096)
        region = SimpleNamespace(base=0, end=4096,
                                 chiplet_ranges={1: (0, 4096)})
        packet = SimpleNamespace(kernel_id=7, name="k")
        with pytest.raises(CheckError, match="stale-read"):
            sanitizer._check_no_stale_access(packet, [region])


# ---------------------------------------------------------------------------
# Differential oracle


class TestOracle:
    def test_small_matrix_ok(self):
        report = run_oracle(workloads=["square"],
                            protocols=["cpelide", "hmg"],
                            trace_paths=("line", "run", "memo"),
                            config=CONFIG)
        assert report.ok
        assert report.cells == 2
        assert report.runs == 6

    def test_requires_two_trace_paths(self):
        with pytest.raises(ValueError):
            run_oracle(workloads=["square"], trace_paths=("line",),
                       config=CONFIG)

    def test_detects_injected_divergence(self, monkeypatch):
        """A trace path that perturbs one kernel's cycles must be
        reported, pinned to that kernel."""
        class Tampered(Simulator):
            def run(self, workload):
                result = super().run(workload)
                if self.trace_path == "memo":
                    result.metrics.kernels[2].cycles += 1.0
                return result

        monkeypatch.setattr("repro.check.oracle.Simulator", Tampered)
        report = run_oracle(workloads=["square"], protocols=["cpelide"],
                            trace_paths=("line", "run", "memo"),
                            config=CONFIG)
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.trace_path == "memo"
        assert divergence.kind == "metrics"
        assert divergence.kernel_index == 2
        assert any("cycles" in line for line in divergence.details)
        assert "square / cpelide" in divergence.describe()

    def test_diff_paths_pinpoints_leaves(self):
        a = {"x": {"y": 1, "z": [1, 2]}, "only_a": 0}
        b = {"x": {"y": 2, "z": [1, 3]}}
        diff = diff_paths(a, b)
        assert "x.y: 1 != 2" in diff
        assert "x.z[1]: 2 != 3" in diff
        assert any(line.startswith("only_a:") for line in diff)

    def test_diff_paths_length_mismatch_is_one_leaf(self):
        assert diff_paths([1, 2], [1], "k") == ["k: length 2 != 1"]
