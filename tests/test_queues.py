"""Unit tests for streams, hardware queues, and the queue scheduler."""

import pytest

from repro.cp.packets import KernelPacket
from repro.cp.queues import HardwareQueue, QueueScheduler, Stream


def packet(kid, stream=0):
    return KernelPacket(kernel_id=kid, name=f"k{kid}", stream_id=stream,
                        num_wgs=4, args=())


class TestHardwareQueue:
    def test_fifo_order(self):
        q = HardwareQueue(0, stream_id=0)
        q.enqueue(packet(0))
        q.enqueue(packet(1))
        assert q.head().kernel_id == 0
        assert q.pop().kernel_id == 0
        assert q.pop().kernel_id == 1
        assert q.head() is None

    def test_wrong_stream_rejected(self):
        q = HardwareQueue(0, stream_id=0)
        with pytest.raises(ValueError):
            q.enqueue(packet(0, stream=1))


class TestQueueScheduler:
    def test_one_queue_per_stream(self):
        sched = QueueScheduler()
        q0 = sched.queue_for_stream(0)
        q1 = sched.queue_for_stream(1)
        assert q0 is not q1
        assert sched.queue_for_stream(0) is q0

    def test_intra_stream_order_preserved(self):
        sched = QueueScheduler()
        for i in range(3):
            sched.submit(packet(i))
        assert [sched.next_kernel().kernel_id for _ in range(3)] == [0, 1, 2]
        assert sched.next_kernel() is None

    def test_round_robin_across_streams(self):
        sched = QueueScheduler()
        sched.submit(packet(0, stream=0))
        sched.submit(packet(1, stream=0))
        sched.submit(packet(2, stream=1))
        order = [sched.next_kernel().kernel_id for _ in range(3)]
        # One kernel from each stream before the second from stream 0.
        assert order[0] in (0, 2)
        assert set(order) == {0, 1, 2}
        assert order.index(0) < order.index(1)

    def test_pending_count(self):
        sched = QueueScheduler()
        sched.submit(packet(0))
        sched.submit(packet(1, stream=1))
        assert sched.pending == 2
        sched.next_kernel()
        assert sched.pending == 1

    def test_queue_exhaustion(self):
        sched = QueueScheduler(num_queues=1)
        sched.queue_for_stream(0)
        with pytest.raises(RuntimeError):
            sched.queue_for_stream(1)

    def test_invalid_num_queues(self):
        with pytest.raises(ValueError):
            QueueScheduler(num_queues=0)


class TestStream:
    def test_mask_default_none(self):
        assert Stream(0).chiplet_mask is None
