"""Pareto search driver: design points, dominance, successive halving."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.explore import (
    DesignPoint,
    PointScore,
    design_points,
    explore,
    pareto_frontier,
    seed_spec,
    _survivors,
)
from repro.gpu.config import MB

from tests.conftest import TEST_SCALE


def point(chiplets=4, window=8, l2=8):
    return DesignPoint(num_chiplets=chiplets, table_window=window,
                       l2_mb=l2)


def score(p, cycles, speedup=1.0, elided=0):
    return PointScore(point=p, cycles=cycles, speedup=speedup,
                      elided=elided)


class TestDesignPoint:
    def test_grid_is_deterministic_cartesian(self):
        points = design_points((2, 4), (4, 8), (4,))
        assert [p.label for p in points] == [
            "c2-w4-l2x4", "c2-w8-l2x4", "c4-w4-l2x4", "c4-w8-l2x4"]
        assert points == design_points((2, 4), (4, 8), (4,))

    def test_cost_monotone_in_every_axis(self):
        base = point()
        assert point(chiplets=8).cost > base.cost
        assert point(window=16).cost > base.cost
        assert point(l2=16).cost > base.cost

    def test_to_config_carries_the_axes(self):
        config = point(chiplets=2, window=16, l2=4).to_config(TEST_SCALE)
        assert config.num_chiplets == 2
        assert config.table_kernel_window == 16
        assert config.l2_size == 4 * MB
        assert config.scale == TEST_SCALE

    def test_to_dict_is_json_stable(self):
        payload = point().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["lease"] is None

    def test_lease_axis_crosses_the_grid(self):
        points = design_points((2,), (4,), (4,), leases=(2, 8))
        assert [p.label for p in points] == [
            "c2-w4-l2x4-ls2", "c2-w4-l2x4-ls8"]
        config = points[1].to_config(TEST_SCALE)
        assert config.lease_kernels == 8

    def test_lease_does_not_change_silicon_cost(self):
        short = DesignPoint(num_chiplets=4, table_window=8, l2_mb=8,
                            lease=2)
        long = DesignPoint(num_chiplets=4, table_window=8, l2_mb=8,
                           lease=16)
        assert short.cost == long.cost == point().cost


class TestDominance:
    def test_dominates_requires_no_worse_and_one_better(self):
        cheap_fast = score(point(chiplets=2), cycles=100.0)
        dear_slow = score(point(chiplets=8), cycles=200.0)
        assert cheap_fast.dominates(dear_slow)
        assert not dear_slow.dominates(cheap_fast)

    def test_tradeoffs_do_not_dominate(self):
        cheap_slow = score(point(chiplets=2), cycles=200.0)
        dear_fast = score(point(chiplets=8), cycles=100.0)
        assert not cheap_slow.dominates(dear_fast)
        assert not dear_fast.dominates(cheap_slow)

    def test_frontier_drops_dominated_points(self):
        scores = [
            score(point(chiplets=2), cycles=200.0),
            score(point(chiplets=4), cycles=100.0),
            score(point(chiplets=8), cycles=150.0),  # dominated by c4
        ]
        frontier = pareto_frontier(scores)
        labels = [s.point.label for s in frontier]
        assert labels == ["c2-w8-l2x8", "c4-w8-l2x8"]

    def test_survivors_keep_at_least_two(self):
        scores = [score(point(chiplets=2), cycles=100.0),
                  score(point(chiplets=4), cycles=200.0)]
        assert len(_survivors(scores)) == 2


class TestSeedSpec:
    def test_cell_count_is_points_x_workloads_x_protocols(self):
        points = design_points((2, 4), (8,), (8,))
        spec = seed_spec(points, TEST_SCALE, workloads=("square", "bfs"))
        assert len(spec.expand()) == len(points) * 2 * 2


class TestExplore:
    def test_rejects_empty_rungs_and_grid(self):
        with pytest.raises(ConfigError):
            explore(rungs=())
        with pytest.raises(ConfigError):
            explore(chiplet_counts=(), rungs=(TEST_SCALE,))

    def test_quick_exploration_produces_a_frontier(self, tmp_path):
        from repro.engine import SharedResultCache

        cache = SharedResultCache(root=tmp_path / "c")
        result = explore(chiplet_counts=(2, 4), table_windows=(4,),
                         l2_mb=(4,), workloads=("square",),
                         rungs=(TEST_SCALE,), workers=1, cache=cache)
        assert result.frontier
        assert len(result.rungs) == 1
        assert result.rungs[0].scores
        labels = {s.point.label for s in result.rungs[0].scores}
        assert labels == {"c2-w4-l2x4", "c4-w4-l2x4"}
        rendered = result.render()
        assert "frontier" in rendered
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_explore_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError, match="no-such-proto"):
            explore(protocol="no-such-proto", rungs=(TEST_SCALE,))

    def test_explore_over_a_registry_protocol_with_leases(self, tmp_path):
        from repro.engine import SharedResultCache

        cache = SharedResultCache(root=tmp_path / "c")
        result = explore(chiplet_counts=(2,), table_windows=(4,),
                         l2_mb=(4,), workloads=("square",),
                         rungs=(TEST_SCALE,), workers=1, cache=cache,
                         protocol="cpelide-ts", leases=(2, 8))
        assert result.protocol == "cpelide-ts"
        labels = {s.point.label for s in result.rungs[0].scores}
        assert labels == {"c2-w4-l2x4-ls2", "c2-w4-l2x4-ls8"}
        assert "cpelide-ts cycles" in result.render()

    def test_exploration_reuses_the_shared_cache(self, tmp_path):
        from repro.engine import SharedResultCache

        cache = SharedResultCache(root=tmp_path / "c")
        explore(chiplet_counts=(2,), table_windows=(4,), l2_mb=(4,),
                workloads=("square",), rungs=(TEST_SCALE,), workers=1,
                cache=cache)
        rerun = explore(chiplet_counts=(2,), table_windows=(4,),
                        l2_mb=(4,), workloads=("square",),
                        rungs=(TEST_SCALE,), workers=1, cache=cache)
        assert rerun.rungs[0].report.executed == 0
        assert rerun.rungs[0].report.cache_hits == \
            rerun.rungs[0].report.total_jobs
