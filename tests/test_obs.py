"""Observability layer: tracer events, metric registry, exporters, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.obs import EventTracer, MetricRegistry, NULL_TRACER
from repro.obs.export import (
    chrome_trace,
    distributions_csv,
    events_jsonl,
    text_summary,
    write_trace,
)
from repro.obs.metrics import Distribution
from repro.workloads.suite import build_workload
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def traced():
    """One traced square/cpelide run shared by the read-only tests."""
    config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
    tracer = EventTracer()
    workload = build_workload("square", config)
    result = Simulator(config, "cpelide", tracer=tracer).run(workload)
    return tracer, result, len(workload.kernels)


class TestEventOrdering:
    def test_run_events_bracket_the_trace(self, traced):
        tracer, _, _ = traced
        assert tracer.events[0].kind == "run"
        assert tracer.events[0].phase == "begin"
        assert tracer.events[-1].kind == "run"
        assert tracer.events[-1].phase == "end"

    def test_sequence_numbers_strictly_increase(self, traced):
        tracer, _, _ = traced
        seqs = [e.seq for e in tracer.events]
        assert all(b > a for a, b in zip(seqs, seqs[1:]))

    def test_every_kernel_launches_then_completes(self, traced):
        tracer, _, num_kernels = traced
        launches = tracer.events_of("kernel", "launch")
        completes = tracer.events_of("kernel", "complete")
        assert len(launches) == num_kernels
        assert len(completes) == num_kernels
        by_index = {e.args["index"]: e.seq for e in launches}
        for e in completes:
            assert by_index[e.args["index"]] < e.seq

    def test_result_carries_aggregated_obs(self, traced):
        _, result, _ = traced
        assert result.obs is not None
        assert result.obs["counters"]["kernel.launches"] > 0
        # obs stays out of the default serialization (bit-identity).
        assert "obs" not in result.to_dict()
        assert "obs" in result.to_dict(include_obs=True)


class TestExporters:
    def test_chrome_trace_is_valid_and_monotone(self, traced):
        tracer, _, num_kernels = traced
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        events = doc["traceEvents"]
        body = [e for e in events if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)
        slices = [e for e in body if e["ph"] == "X"]
        assert len(slices) == num_kernels
        assert all(e["dur"] >= 0 for e in slices)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "kernels (per stream)" in names

    def test_jsonl_round_trips_every_event(self, traced):
        tracer, _, _ = traced
        lines = events_jsonl(tracer.events).strip().split("\n")
        assert len(lines) == len(tracer.events)
        first = json.loads(lines[0])
        assert first["kind"] == "run" and first["phase"] == "begin"

    def test_distributions_csv_has_header_and_rows(self, traced):
        tracer, _, _ = traced
        csv = distributions_csv(tracer.metrics.aggregate())
        lines = csv.strip().split("\n")
        assert lines[0] == "scope,name,count,total,mean,min,max"
        assert any("kernel.cycles" in line for line in lines[1:])

    def test_text_summary_includes_census_and_sync_trace(self, traced):
        tracer, _, _ = traced
        text = text_summary(tracer, limit=5)
        assert "events recorded:" in text
        assert "sync trace" in text

    def test_write_trace_infers_format_from_extension(self, traced, tmp_path):
        tracer, _, _ = traced
        assert write_trace(tracer, str(tmp_path / "t.json")) == "chrome"
        assert write_trace(tracer, str(tmp_path / "t.csv")) == "csv"
        assert write_trace(tracer, str(tmp_path / "t.jsonl")) == "jsonl"
        json.loads((tmp_path / "t.json").read_text())
        with pytest.raises(ConfigError):
            write_trace(tracer, str(tmp_path / "t.bin"), fmt="protobuf")


class TestMetricRegistry:
    def test_aggregate_sums_counters_maxes_gauges_merges_dists(self):
        root = MetricRegistry("sweep")
        for i, cycles in enumerate((100.0, 300.0)):
            child = root.child(f"run:{i}")
            child.count("sync.releases", 2)
            child.gauge("table.rows", 5 + i)
            child.observe("kernel.cycles", cycles)
        agg = root.aggregate()
        assert agg.counters["sync.releases"] == 4
        assert agg.gauges["table.rows"] == 6
        dist = agg.distributions["kernel.cycles"]
        assert (dist.count, dist.min, dist.max) == (2, 100.0, 300.0)
        assert dist.mean == 200.0

    def test_nested_aggregation_reaches_grandchildren(self):
        root = MetricRegistry("sweep")
        root.child("run:0").child("kernel:0").count("kernel.launches")
        assert root.aggregate().counters["kernel.launches"] == 1

    def test_to_dict_round_trip(self):
        root = MetricRegistry("sweep")
        child = root.child("run:0")
        child.count("a", 3)
        child.gauge("b", 7)
        child.observe("c", 1.5)
        rebuilt = MetricRegistry.from_dict(root.to_dict())
        assert rebuilt.to_dict() == root.to_dict()

    def test_empty_distribution_serializes_as_zeros(self):
        assert Distribution().to_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_aggregate_many(self):
        regs = []
        for _ in range(3):
            reg = MetricRegistry("run")
            reg.count("x")
            regs.append(reg)
        assert MetricRegistry.aggregate_many(regs).counters["x"] == 3


class TestSweepTracing:
    def test_sweep_records_cells_and_obs(self, config):
        from repro.api import sweep

        tracer = EventTracer()
        res = sweep(workloads=("square",), protocols=("cpelide",),
                    configs=(config,), cache=False, tracer=tracer)
        assert len(tracer.events_of("sweep", "begin")) == 1
        assert len(tracer.events_of("sweep", "cell-end")) == 1
        # Serial sweeps record full kernel-level detail inside the cell.
        assert tracer.events_of("kernel", "complete")
        assert res.obs is not None
        assert res.obs["counters"]["sweep.cells_executed"] == 1
        assert res.outcomes[0].result.obs is not None

    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.sync_op(kind="release", chiplet=0, reason="",
                                   lines_flushed=0, lines_invalidated=0,
                                   boundary="launch") is None


class TestTraceCLI:
    def test_trace_chrome_export_to_file(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        rc = main(["--scale", str(TEST_SCALE), "trace", "square", "cpelide",
                   "--format", "chrome", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_trace_csv_to_stdout(self, capsys):
        from repro.__main__ import main

        rc = main(["--scale", str(TEST_SCALE), "trace", "square",
                   "--format", "csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("scope,name,count,total,mean,min,max")

    def test_trace_legacy_sync_format(self, capsys):
        from repro.__main__ import main

        rc = main(["--scale", str(TEST_SCALE), "trace", "square",
                   "--format", "sync", "--limit", "3"])
        assert rc == 0
        assert "sync trace" in capsys.readouterr().out
