"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Eviction, SetAssocCache, WritePolicy


def make_cache(lines=16, assoc=4, policy=WritePolicy.WRITE_BACK):
    return SetAssocCache(size_bytes=lines * 64, assoc=assoc, policy=policy,
                         name="test")


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        hit, _ = cache.access(10, is_write=False)
        assert not hit
        hit, _ = cache.access(10, is_write=False)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_read_write_stat_split(self):
        cache = make_cache()
        cache.access(1, is_write=False)
        cache.access(1, is_write=True)
        cache.access(2, is_write=True)
        assert cache.stats.read_misses == 1
        assert cache.stats.write_hits == 1
        assert cache.stats.write_misses == 1

    def test_capacity_and_sets(self):
        cache = make_cache(lines=16, assoc=4)
        assert cache.capacity_lines == 16
        assert cache.num_sets == 4

    def test_tiny_cache_assoc_clamped(self):
        cache = SetAssocCache(size_bytes=2 * 64, assoc=32)
        assert cache.assoc == 2
        assert cache.capacity_lines == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SetAssocCache(size_bytes=0, assoc=4)
        with pytest.raises(ValueError):
            SetAssocCache(size_bytes=64, assoc=0)


class TestLRU:
    def test_lru_eviction_order(self):
        # Direct-mapped set behaviour via one set: lines 0,4,8,12 map to
        # set 0 of a 4-set, 1-way cache.
        cache = SetAssocCache(size_bytes=4 * 64, assoc=1, name="dm")
        cache.access(0, False)
        _, evicted = cache.access(4, False)
        assert evicted == Eviction(0, False)

    def test_lru_refresh_on_hit(self):
        cache = SetAssocCache(size_bytes=2 * 64, assoc=2)
        # Both lines land in the same set of a fully-assoc 2-entry cache.
        cache.access(0, False)
        cache.access(2, False)
        cache.access(0, False)           # refresh 0
        _, evicted = cache.access(4, False)
        assert evicted is not None and evicted.line == 2

    def test_dirty_eviction_flagged(self):
        cache = SetAssocCache(size_bytes=64, assoc=1)
        cache.access(0, is_write=True)
        _, evicted = cache.access(1, is_write=False)
        assert evicted == Eviction(0, True)
        assert cache.stats.dirty_evictions == 1


class TestWritePolicies:
    def test_write_back_marks_dirty(self):
        cache = make_cache()
        cache.access(3, is_write=True)
        assert cache.is_dirty(3)
        assert cache.dirty_lines == 1

    def test_write_through_stays_clean(self):
        cache = make_cache(policy=WritePolicy.WRITE_THROUGH)
        cache.access(3, is_write=True)
        assert not cache.is_dirty(3)
        assert cache.dirty_lines == 0

    def test_read_does_not_clear_dirty(self):
        cache = make_cache()
        cache.access(3, is_write=True)
        cache.access(3, is_write=False)
        assert cache.is_dirty(3)


class TestFill:
    def test_fill_does_not_count_demand(self):
        cache = make_cache()
        cache.fill(7, dirty=False)
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        assert cache.lookup(7)

    def test_fill_preserves_existing_dirty(self):
        cache = make_cache()
        cache.access(7, is_write=True)
        cache.fill(7, dirty=False)
        assert cache.is_dirty(7)

    def test_fill_evicts_when_full(self):
        cache = SetAssocCache(size_bytes=64, assoc=1)
        cache.fill(0, dirty=True)
        evicted = cache.fill(1)
        assert evicted == Eviction(0, True)


class TestSyncOperations:
    def test_flush_retains_clean_copies(self):
        """Sec. III-B: a written-back line stays resident, clean."""
        cache = make_cache()
        cache.access(1, True)
        cache.access(2, True)
        cache.access(3, False)
        flushed = cache.flush_dirty()
        assert sorted(flushed) == [1, 2]
        assert cache.resident_lines == 3
        assert cache.dirty_lines == 0
        assert cache.stats.lines_flushed == 2
        assert cache.stats.flush_ops == 1

    def test_invalidate_all_reports_dirty(self):
        cache = make_cache()
        cache.access(1, True)
        cache.access(2, False)
        dropped, dirty = cache.invalidate_all()
        assert dropped == 2
        assert dirty == [1]
        assert cache.resident_lines == 0
        assert cache.stats.lines_invalidated == 2

    def test_invalidate_line(self):
        cache = make_cache()
        cache.access(5, True)
        present, dirty = cache.invalidate_line(5)
        assert present and dirty
        present, dirty = cache.invalidate_line(5)
        assert not present and not dirty

    def test_flush_line(self):
        cache = make_cache()
        cache.access(5, True)
        assert cache.flush_line(5)
        assert not cache.is_dirty(5)
        assert cache.lookup(5)
        assert not cache.flush_line(5)      # already clean
        assert not cache.flush_line(99)     # absent

    def test_flush_empty_cache(self):
        cache = make_cache()
        assert cache.flush_dirty() == []

    def test_invalidate_then_reaccess_misses(self):
        cache = make_cache()
        cache.access(1, False)
        cache.invalidate_all()
        hit, _ = cache.access(1, False)
        assert not hit
