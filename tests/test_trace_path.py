"""TracePath enum: coercion, resolution, API surface, legacy shims."""

import warnings

import pytest

from repro.errors import ConfigError
from repro.gpu.trace_path import (
    DEFAULT_TRACE_PATH,
    TRACE_PATH_ENV,
    TracePath,
    resolve_trace_path,
)


def test_members_equal_their_string_values():
    assert TracePath.LINE == "line"
    assert TracePath.RUN == "run"
    assert TracePath.MEMO == "memo"
    assert str(TracePath.MEMO) == "memo"
    assert f"{TracePath.RUN}" == "run"
    # str-valued: interchangeable as dict keys and in joins.
    assert {"memo": 1}[TracePath.MEMO] == 1
    assert "/".join([TracePath.LINE, TracePath.RUN]) == "line/run"


def test_coerce_accepts_members_and_strings():
    assert TracePath.coerce(TracePath.LINE) is TracePath.LINE
    assert TracePath.coerce("memo") is TracePath.MEMO


@pytest.mark.parametrize("bad", ["", "lines", "Memo", "batch", 3])
def test_coerce_rejects_unknown_values(bad):
    with pytest.raises(ConfigError):
        TracePath.coerce(bad)


def test_resolve_precedence(monkeypatch):
    monkeypatch.delenv(TRACE_PATH_ENV, raising=False)
    assert resolve_trace_path() is DEFAULT_TRACE_PATH
    monkeypatch.setenv(TRACE_PATH_ENV, "line")
    assert resolve_trace_path() is TracePath.LINE
    # Explicit argument wins over the environment.
    assert resolve_trace_path("memo") is TracePath.MEMO
    assert resolve_trace_path(TracePath.RUN) is TracePath.RUN
    # Empty env var counts as unset.
    monkeypatch.setenv(TRACE_PATH_ENV, "")
    assert resolve_trace_path() is DEFAULT_TRACE_PATH
    monkeypatch.setenv(TRACE_PATH_ENV, "bogus")
    with pytest.raises(ConfigError):
        resolve_trace_path()


def test_api_exports_trace_path():
    import repro.api as api

    assert api.TracePath is TracePath
    assert "TracePath" in api.__all__
    assert api.__api_version__ == "4.0"


def test_simulator_accepts_enum_and_string():
    from repro.gpu.config import GPUConfig
    from repro.gpu.sim import Simulator

    config = GPUConfig(num_chiplets=2, scale=1 / 64)
    assert Simulator(config, trace_path="memo").trace_path is TracePath.MEMO
    assert (Simulator(config, trace_path=TracePath.LINE).trace_path
            is TracePath.LINE)
    with pytest.raises(ConfigError):
        Simulator(config, trace_path="batch")


def test_legacy_sim_constants_warn():
    from repro.gpu import sim

    with pytest.warns(DeprecationWarning, match="DEFAULT_TRACE_PATH"):
        assert sim.DEFAULT_TRACE_PATH == "run"
    with pytest.warns(DeprecationWarning, match="_TRACE_PATHS"):
        assert sim._TRACE_PATHS == ("line", "run", "memo")
    with pytest.raises(AttributeError):
        sim.no_such_constant


def test_canonical_imports_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.api import TracePath as api_path  # noqa: F401
        from repro.gpu.sim import TracePath as sim_path  # noqa: F401
        from repro.gpu.trace_path import resolve_trace_path  # noqa: F401
        resolve_trace_path(TracePath.RUN)
