"""Differential referee for the batched run-based trace path.

The batched path (``trace_path="run"``) must be *bit-identical* to the
per-line reference (``trace_path="line"``): same ``SimulationResult``
down to every counter, for every protocol, access-pattern kind, and
scheduler. These tests are the contract the bulk cache/protocol
fast paths are written against.
"""

from __future__ import annotations

import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.coherence.base import protocol_names
from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.device import Device
from repro.gpu.sim import Simulator
from repro.memory.cache import SetAssocCache
from repro.workloads.base import (
    AccessMode,
    KernelArg,
    PatternKind,
    lines_for_arg,
    runs_for_arg,
)
from repro.workloads.suite import WORKLOAD_NAMES, build_workload

SCALE = 1 / 64

#: Workloads chosen so that between them every PatternKind is exercised:
#: babelstream (PARTITIONED), hotspot (STENCIL), bfs (RANDOM + INDIRECT),
#: rnn-gru-small (SHARED).
KIND_COVERING_WORKLOADS = ["babelstream", "hotspot", "bfs", "rnn-gru-small"]


def _result_dict(workload: str, protocol: str, scheduler: str,
                 trace_path: str) -> dict:
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    if protocol == "monolithic":
        config = monolithic_equivalent(config)
    sim = Simulator(config, protocol=protocol, scheduler=scheduler,
                    trace_path=trace_path)
    return sim.run(build_workload(workload, config)).to_dict()


def test_workload_set_covers_every_pattern_kind():
    """Guard the differential sweep's coverage claim itself."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    seen = set()
    for name in KIND_COVERING_WORKLOADS:
        workload = build_workload(name, config)
        for kernel in workload.kernels:
            for arg in kernel.args:
                seen.add(arg.pattern)
    assert seen == set(PatternKind)


@pytest.mark.parametrize("scheduler", ["static", "locality"])
@pytest.mark.parametrize("workload", KIND_COVERING_WORKLOADS)
@pytest.mark.parametrize("protocol", protocol_names())
def test_run_path_bit_identical(protocol, workload, scheduler):
    line = _result_dict(workload, protocol, scheduler, "line")
    run = _result_dict(workload, protocol, scheduler, "run")
    assert line == run


# ---------------------------------------------------------------------------
# Memo trace path (kernel-outcome memoization, src/repro/gpu/memo.py)


@pytest.fixture(autouse=True)
def _fresh_memo_store():
    """Each test starts from a cold memo store — hits within a test are
    the test's own doing, never another test's leftovers."""
    from repro.gpu.memo import clear_memo_stores

    clear_memo_stores()
    yield
    clear_memo_stores()


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("protocol", ["baseline", "hmg", "cpelide"])
def test_memo_path_bit_identical(protocol, workload):
    """Every Table II workload: the memo path's result dict must equal
    the run path's, both on a cold store (record) and on a warm one
    (pure replay)."""
    run = _result_dict(workload, protocol, "static", "run")
    cold = _result_dict(workload, protocol, "static", "memo")
    warm = _result_dict(workload, protocol, "static", "memo")
    assert run == cold
    assert run == warm


@pytest.mark.parametrize("workload", KIND_COVERING_WORKLOADS)
@pytest.mark.parametrize("protocol", ["cpelide", "hmg"])
def test_memo_path_bit_identical_locality_scheduler(protocol, workload):
    run = _result_dict(workload, protocol, "locality", "run")
    memo = _result_dict(workload, protocol, "locality", "memo")
    assert run == memo


def test_memo_counters_second_run_hits():
    """A warm store turns every memoizable kernel into a hit."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    first = Simulator(config, protocol="cpelide", trace_path="memo").run(
        build_workload("hotspot", config))
    second = Simulator(config, protocol="cpelide", trace_path="memo").run(
        build_workload("hotspot", config))
    total = len(build_workload("hotspot", config).kernels)
    assert first.memo_bypasses == 0
    assert first.memo_hits + first.memo_misses == total
    assert first.memo_misses > 0
    assert second.memo_hits == total
    assert second.memo_misses == 0


def test_memo_bypasses_roaming_random_kernels():
    """bfs's frontier kernels roam (kernel-id-seeded sample), so they
    must bypass memoization — and the bypass must be counted."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    workload = build_workload("bfs", config)
    result = Simulator(config, protocol="cpelide",
                       trace_path="memo").run(workload)
    assert result.memo_bypasses > 0
    assert (result.memo_hits + result.memo_misses
            + result.memo_bypasses) == len(workload.kernels)


def test_memo_counters_not_serialized():
    """to_dict() must stay bit-identical across trace paths, so the
    memo diagnostics are dataclass-only fields."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    result = Simulator(config, protocol="cpelide", trace_path="memo").run(
        build_workload("hotspot", config))
    assert result.memo_hits + result.memo_misses > 0
    dumped = result.to_dict()
    assert "memo_hits" not in repr(dumped)
    from repro.gpu.sim import SimulationResult
    rebuilt = SimulationResult.from_dict(dumped)
    # Reconstructed results must not fabricate counters: None means "not
    # memoized / unknown", which is distinct from zero memo activity.
    assert rebuilt.memo_hits is None
    assert rebuilt.memo_misses is None
    assert rebuilt.memo_bypasses is None


# ---------------------------------------------------------------------------
# runs_for_arg / lines_for_arg contract


def test_runs_flatten_to_lines_for_every_suite_arg():
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    for name in KIND_COVERING_WORKLOADS + ["pathfinder", "srad"]:
        workload = build_workload(name, config)
        for kernel_id, kernel in enumerate(workload.kernels):
            for arg in kernel.args:
                for logical in range(4):
                    lines = lines_for_arg(arg, logical, 4, kernel_id)
                    runs = runs_for_arg(arg, logical, 4, kernel_id)
                    flat = [ln for r in runs for ln in r.lines()]
                    assert flat == lines, (name, kernel_id, arg.pattern)


def _digest_cmd(pattern: str) -> list:
    code = (
        "import hashlib, sys;"
        "sys.path.insert(0, 'src');"
        "from repro.gpu.config import GPUConfig;"
        "from repro.workloads.base import lines_for_arg, runs_for_arg;"
        "from repro.workloads.suite import build_workload;"
        "cfg = GPUConfig(num_chiplets=4, scale=1/64);"
        f"wl = build_workload({pattern!r}, cfg);"
        "h = hashlib.sha256();"
        "[h.update(repr((kid, logical,"
        " lines_for_arg(arg, logical, 4, kid),"
        " runs_for_arg(arg, logical, 4, kid))).encode())"
        " for kid, k in enumerate(wl.kernels)"
        " for arg in k.args for logical in range(4)];"
        "print(h.hexdigest())"
    )
    return [sys.executable, "-c", code]


def test_traces_deterministic_across_calls_and_processes():
    """Seeded traces must not depend on interpreter state (e.g. hash
    randomization): identical across repeated calls and across fresh
    processes."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    workload = build_workload("bfs", config)
    arg = next(a for k in workload.kernels for a in k.args
               if a.pattern in (PatternKind.RANDOM, PatternKind.INDIRECT))
    assert lines_for_arg(arg, 1, 4, 3) == lines_for_arg(arg, 1, 4, 3)
    assert runs_for_arg(arg, 1, 4, 3) == runs_for_arg(arg, 1, 4, 3)

    digests = set()
    for seed in ("0", "1"):
        out = subprocess.run(
            _digest_cmd("bfs"), capture_output=True, text=True, check=True,
            cwd=__file__.rsplit("/tests/", 1)[0],
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1


def test_random_sample_varies_with_kernel_and_logical():
    """The seed must mix kernel id and logical chiplet, or resampling
    patterns would silently repeat the same trace."""
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    workload = build_workload("bfs", config)
    arg = next(a for k in workload.kernels for a in k.args
               if a.pattern is PatternKind.RANDOM and a.resample)
    base = lines_for_arg(arg, 0, 4, 0)
    assert lines_for_arg(arg, 0, 4, 1) != base
    assert lines_for_arg(arg, 1, 4, 0) != base


# ---------------------------------------------------------------------------
# STENCIL halo clamping and fraction/offset boundaries


def _buffer(num_lines: int):
    from repro.memory.address import AddressSpace, LINE_SIZE

    return AddressSpace().alloc("buf", num_lines * LINE_SIZE)


def test_stencil_halo_clamps_at_buffer_edges():
    buf = _buffer(64)
    arg = KernelArg(buffer=buf, mode=AccessMode.RW,
                    pattern=PatternKind.STENCIL, halo_lines=4)
    first, last = buf.line_range()
    for logical in range(4):
        runs = runs_for_arg(arg, logical, 4, 0)
        flat = [ln for r in runs for ln in r.lines()]
        assert flat == lines_for_arg(arg, logical, 4, 0)
        assert min(flat) >= first and max(flat) < last
    # Edge slices: the halo must not reach past the allocation.
    lo0 = [ln for r in runs_for_arg(arg, 0, 4, 0) for ln in r.lines()]
    assert min(lo0) == first
    hi3 = [ln for r in runs_for_arg(arg, 3, 4, 0) for ln in r.lines()]
    assert max(hi3) == last - 1


def test_fraction_offset_window_clamps_to_slice():
    buf = _buffer(64)
    # Offset near the end of the slice: the window must clamp at the
    # slice boundary, not spill into the neighbour's lines.
    arg = KernelArg(buffer=buf, mode=AccessMode.RW, fraction=0.5,
                    offset=0.75)
    for logical in range(4):
        lo, hi = buf.slice_lines(logical, 4)
        runs = runs_for_arg(arg, logical, 4, 0)
        flat = [ln for r in runs for ln in r.lines()]
        assert flat == lines_for_arg(arg, logical, 4, 0)
        assert flat and lo <= min(flat) and max(flat) < hi


def test_empty_slice_yields_no_runs():
    # More logical chiplets than lines: some slices are empty.
    buf = _buffer(2)
    arg = KernelArg(buffer=buf, mode=AccessMode.RW)
    for logical in range(4):
        lines = lines_for_arg(arg, logical, 4, 0)
        runs = runs_for_arg(arg, logical, 4, 0)
        assert [ln for r in runs for ln in r.lines()] == lines
        if not lines:
            assert runs == []


# ---------------------------------------------------------------------------
# Satellite regressions: zero-kernel guard and LDS apportionment


def test_zero_kernel_run_does_not_crash():
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    workload = build_workload("square", config)
    workload.kernels.clear()
    result = Simulator(config, protocol="cpelide").run(workload)
    assert result.wall_cycles == 0.0
    # The result must still serialize and round-trip.
    assert result.to_dict()["wall_cycles"] == 0.0


def test_record_lds_largest_remainder_sums_exactly():
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    sim = Simulator(config)
    device = Device(config)
    shares = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1}
    placement = SimpleNamespace(chiplets=[0, 1, 2, 3], num_chiplets=4,
                                share_of=lambda c: shares[c])
    kernel = SimpleNamespace(lds_per_line=0.7)
    sim._record_lds(kernel, device, placement, total_lines=101)
    total = int(round(0.7 * 101))
    amounts = [device.counts[c].lds_accesses for c in range(4)]
    assert sum(amounts) == total
    # Each chiplet within one access of its exact proportional share.
    for c in range(4):
        assert abs(amounts[c] - total * shares[c]) < 1.0


def test_record_lds_ties_break_to_lower_chiplet():
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    sim = Simulator(config)
    device = Device(config)
    placement = SimpleNamespace(chiplets=[0, 1, 2, 3], num_chiplets=4,
                                share_of=lambda c: 0.25)
    kernel = SimpleNamespace(lds_per_line=1.0)
    # 10 accesses over four equal shares: 2 each plus 2 leftovers, which
    # must go to chiplets 0 and 1.
    sim._record_lds(kernel, device, placement, total_lines=10)
    amounts = [device.counts[c].lds_accesses for c in range(4)]
    assert amounts == [3, 3, 2, 2]


# ---------------------------------------------------------------------------
# resident_lines bookkeeping invariant


def test_resident_lines_tracks_full_walk():
    cache = SetAssocCache(size_bytes=256 * 64, assoc=4, name="L2")

    def walk():
        return sum(len(s) for s in cache._sets.values())

    cache.bulk_access(start=0, count=200, load=True, store=True)
    assert cache.resident_lines == walk()
    cache.bulk_access(start=100, count=300, load=True, store=False)
    assert cache.resident_lines == walk()
    cache.bulk_invalidate(start=64, count=64)
    assert cache.resident_lines == walk()
    cache.flush_dirty()
    assert cache.resident_lines == walk()
    cache.bulk_fill(lines=range(500, 600), dirty=True)
    assert cache.resident_lines == walk()
    cache.bulk_serve(events=[(700, None, False), (701, 500, True)])
    assert cache.resident_lines == walk()
    cache.invalidate_line(700)
    assert cache.resident_lines == walk()
    cache.access(9999, is_write=True)
    assert cache.resident_lines == walk()
    cache.invalidate_all()
    assert cache.resident_lines == walk() == 0


def test_trace_path_env_switch(monkeypatch):
    config = GPUConfig(num_chiplets=4, scale=SCALE)
    monkeypatch.setenv("REPRO_TRACE_PATH", "line")
    assert Simulator(config).trace_path == "line"
    monkeypatch.setenv("REPRO_TRACE_PATH", "run")
    assert Simulator(config).trace_path == "run"
    monkeypatch.setenv("REPRO_TRACE_PATH", "memo")
    assert Simulator(config).trace_path == "memo"
    monkeypatch.setenv("REPRO_TRACE_PATH", "bogus")
    with pytest.raises(ValueError):
        Simulator(config)
    monkeypatch.delenv("REPRO_TRACE_PATH")
    assert Simulator(config, trace_path="line").trace_path == "line"
