"""Additional property-based tests across the substrate."""

from hypothesis import given, settings, strategies as st

from repro.core.coarsening import coarsen_regions
from repro.core.elision import ElisionEngine
from repro.core.regions import AccessRegion
from repro.core.table import ChipletCoherenceTable
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket
from repro.cp.wg_scheduler import Placement, WGScheduler
from repro.interconnect.noc import TrafficMeter
from repro.memory.address import AddressSpace

# ----------------------------------------------------------------------
# Coarsening
# ----------------------------------------------------------------------

region_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200),     # base (pages)
              st.integers(min_value=1, max_value=20),      # size (pages)
              st.booleans()),                              # writes?
    min_size=1, max_size=16)


@given(region_specs, st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_coarsening_covers_every_original_extent(specs, budget):
    regions = [
        AccessRegion(name=f"r{i}", base=b * 4096, end=(b + s) * 4096,
                     mode=AccessMode.RW if w else AccessMode.R)
        for i, (b, s, w) in enumerate(specs)
    ]
    out = coarsen_regions(list(regions), budget)
    assert len(out) <= max(budget, 1)
    for original in regions:
        assert any(m.base <= original.base and m.end >= original.end
                   for m in out), "an original extent lost coverage"


@given(region_specs, st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_coarsening_mode_is_conservative(specs, budget):
    regions = [
        AccessRegion(name=f"r{i}", base=b * 4096, end=(b + s) * 4096,
                     mode=AccessMode.RW if w else AccessMode.R)
        for i, (b, s, w) in enumerate(specs)
    ]
    out = coarsen_regions(list(regions), budget)
    for original in regions:
        if original.mode.writes:
            covers = [m for m in out
                      if m.base <= original.base and m.end >= original.end]
            # Identical extents may coexist unmerged within budget, so at
            # least one cover (the original itself or a merged product)
            # must retain the R/W mode.
            assert any(m.mode.writes for m in covers), \
                "a write was demoted to read-only"


# ----------------------------------------------------------------------
# WG scheduler
# ----------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4096))
@settings(max_examples=200, deadline=None)
def test_wg_partitioning_conserves_and_balances(num_chiplets, num_wgs):
    scheduler = WGScheduler(num_chiplets)
    packet = KernelPacket(kernel_id=0, name="k", stream_id=0,
                          num_wgs=num_wgs, args=())
    placement = scheduler.place(packet)
    assert placement.total_wgs == num_wgs
    assert placement.num_chiplets == min(num_chiplets, num_wgs)
    assert max(placement.wg_counts) - min(placement.wg_counts) <= 1
    assert len(set(placement.chiplets)) == placement.num_chiplets


# ----------------------------------------------------------------------
# Traffic meter algebra
# ----------------------------------------------------------------------

meter_events = st.lists(
    st.tuples(st.sampled_from(["l1_request", "l1_data", "l2_request",
                               "l2_data", "remote_request", "remote_data"]),
              st.integers(min_value=0, max_value=50)),
    min_size=0, max_size=40)


def apply_events(meter, events):
    for name, count in events:
        getattr(meter, name)(count)


@given(meter_events, meter_events)
@settings(max_examples=200, deadline=None)
def test_traffic_merge_equals_combined_stream(ev_a, ev_b):
    separate_a, separate_b = TrafficMeter(), TrafficMeter()
    apply_events(separate_a, ev_a)
    apply_events(separate_b, ev_b)
    separate_a.merge(separate_b)

    combined = TrafficMeter()
    apply_events(combined, ev_a + ev_b)
    assert separate_a.as_dict() == combined.as_dict()


# ----------------------------------------------------------------------
# Elision idempotence
# ----------------------------------------------------------------------

repeat_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),      # buffer idx
              st.booleans()),                             # writes?
    min_size=1, max_size=10)


@given(repeat_specs)
@settings(max_examples=150, deadline=None)
def test_full_width_relaunches_are_always_silent(specs):
    """Under stable full-width placements (static kernel-wide
    partitioning, the common case), every kernel's slices coincide with
    their first-touch homes, so an arbitrary sequence of full-width
    kernels never needs a single sync op after the structures' first
    touches — the Stay-in-Dirty / stay-in-Valid rules compose.

    (Placement *changes* legitimately issue conservative ops: the table
    holds one range per chiplet per structure, exactly like the paper's.)
    """
    space = AddressSpace()
    buffers = [space.alloc(f"b{i}", 8 * 4096) for i in range(3)]
    engine = ElisionEngine(ChipletCoherenceTable(num_chiplets=4))
    placement = Placement(chiplets=(0, 1, 2, 3), wg_counts=(4, 4, 4, 4))
    touched = set()
    for kernel_id, (buf_idx, writes) in enumerate(specs):
        mode = AccessMode.RW if writes else AccessMode.R
        packet = KernelPacket(kernel_id=kernel_id, name="k", stream_id=0,
                              num_wgs=16,
                              args=(ArgAccess(buffers[buf_idx], mode),))
        outcome = engine.process_launch(packet, placement)
        if buf_idx in touched:
            assert outcome.ops == [], \
                "full-width re-access issued sync ops"
        touched.add(buf_idx)
