"""Unit tests for the GPU configuration (Table I)."""

import pytest

from repro.gpu.config import GPUConfig, monolithic_equivalent


class TestTableIDefaults:
    def test_headline_parameters(self):
        config = GPUConfig()
        assert config.gpu_clock_hz == 1801e6
        assert config.cus_per_chiplet == 60
        assert config.num_chiplets == 4
        assert config.l2_size == 8 * 1024 * 1024
        assert config.l2_assoc == 32
        assert config.l2_local_latency == 269
        assert config.l2_remote_latency == 390
        assert config.l3_size == 16 * 1024 * 1024
        assert config.l3_latency == 330
        assert config.inter_chiplet_bandwidth == 768e9
        assert config.num_compute_queues == 256

    def test_total_cus_matches_table1_rows(self):
        assert GPUConfig(num_chiplets=2).total_cus == 120
        assert GPUConfig(num_chiplets=4).total_cus == 240
        assert GPUConfig(num_chiplets=6).total_cus == 360

    def test_table_rows_render(self):
        rows = GPUConfig().table_rows()
        features = [row[0] for row in rows]
        assert "GPU Clock" in features
        assert "Inter-chiplet Interconnect BW" in features
        assert all(len(row) == 2 for row in rows)


class TestScaling:
    def test_scaled_sizes(self):
        config = GPUConfig(scale=1 / 16)
        assert config.scaled_l2_size == config.l2_size // 16
        assert config.scaled_l3_size == config.l3_size // 16

    def test_scaled_sizes_floor(self):
        config = GPUConfig(scale=1e-9)
        assert config.scaled_l2_size >= config.line_size * config.l2_assoc

    def test_scaled_page_lines(self):
        assert GPUConfig(scale=1.0).scaled_page_lines == 64
        assert GPUConfig(scale=1 / 32).scaled_page_lines == 2
        assert GPUConfig(scale=1e-6).scaled_page_lines == 1

    def test_overhead_scale_follows_scale(self):
        config = GPUConfig(scale=1 / 8)
        assert config.effective_overhead_scale == pytest.approx(1 / 8)

    def test_overhead_scale_override(self):
        config = GPUConfig(scale=1 / 8, overhead_scale=1.0)
        assert config.effective_overhead_scale == 1.0

    def test_cp_latencies_scale(self):
        paper = GPUConfig()
        scaled = GPUConfig(scale=1 / 4)
        assert scaled.cp_dispatch_cycles \
            == pytest.approx(paper.cp_dispatch_cycles / 4)
        assert scaled.cpelide_op_cycles \
            == pytest.approx(paper.cpelide_op_cycles / 4)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            GPUConfig(scale=0)
        with pytest.raises(ValueError):
            GPUConfig(scale=2.0)

    def test_invalid_chiplets(self):
        with pytest.raises(ValueError):
            GPUConfig(num_chiplets=0)


class TestDerived:
    def test_seconds_cycles_roundtrip(self):
        config = GPUConfig()
        assert config.cycles(config.seconds(12345.0)) == pytest.approx(12345.0)

    def test_with_chiplets(self):
        config = GPUConfig().with_chiplets(7)
        assert config.num_chiplets == 7
        assert config.total_cus == 420

    def test_with_scale(self):
        assert GPUConfig().with_scale(0.5).scale == 0.5

    def test_chiplet_mlp(self):
        config = GPUConfig()
        assert config.chiplet_mlp == config.mlp_per_cu * 60


class TestMonolithicEquivalent:
    def test_preserves_totals(self):
        base = GPUConfig(num_chiplets=4)
        mono = monolithic_equivalent(base)
        assert mono.num_chiplets == 1
        assert mono.total_cus == base.total_cus
        assert mono.l2_size == base.l2_size * 4
        assert mono.l2_bandwidth_per_chiplet \
            == base.l2_bandwidth_per_chiplet * 4
        assert mono.dram_bandwidth_per_stack \
            == base.dram_bandwidth_per_stack * 4

    def test_aggregate_l2_preserved(self):
        base = GPUConfig(num_chiplets=4, scale=1 / 16)
        mono = monolithic_equivalent(base)
        assert mono.aggregate_l2_size == base.aggregate_l2_size
