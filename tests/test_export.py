"""Tests for the CSV export helpers."""

import csv
import io

from repro.experiments.runner import run_matrix, run_one
from repro.metrics.export import KERNEL_COLUMNS, MATRIX_COLUMNS, matrix_to_csv, run_to_csv

from tests.conftest import TEST_SCALE


class TestMatrixExport:
    def test_header_and_rows(self):
        matrix = run_matrix(workloads=("square",),
                            protocols=("baseline", "cpelide"),
                            scale=TEST_SCALE)
        text = matrix_to_csv(matrix)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == MATRIX_COLUMNS
        assert len(rows) == 3  # header + 2 cells

    def test_speedup_column_consistent(self):
        matrix = run_matrix(workloads=("square",),
                            protocols=("baseline", "cpelide"),
                            scale=TEST_SCALE)
        text = matrix_to_csv(matrix)
        rows = list(csv.DictReader(io.StringIO(text)))
        by_protocol = {row["protocol"]: row for row in rows}
        assert float(by_protocol["baseline"]["speedup_vs_baseline"]) == 1.0
        assert float(by_protocol["cpelide"]["speedup_vs_baseline"]) > 1.0

    def test_values_parse_numerically(self):
        matrix = run_matrix(workloads=("square",),
                            protocols=("baseline",), scale=TEST_SCALE)
        row = next(csv.DictReader(io.StringIO(matrix_to_csv(matrix))))
        assert float(row["wall_cycles"]) > 0
        assert 0.0 <= float(row["l2_miss_rate"]) <= 1.0
        assert float(row["energy_j"]) > 0


class TestRunExport:
    def test_one_row_per_kernel(self):
        result = run_one("square", "cpelide", scale=TEST_SCALE)
        text = run_to_csv(result.metrics)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == KERNEL_COLUMNS
        assert len(rows) == 1 + result.metrics.num_kernels

    def test_kernel_names_preserved(self):
        result = run_one("square", "cpelide", scale=TEST_SCALE)
        rows = list(csv.DictReader(io.StringIO(run_to_csv(result.metrics))))
        assert rows[0]["kernel_name"] == "square"
