"""Unit tests for the local dispatcher / occupancy model."""

import pytest

from repro.cp.dispatcher import (
    DEFAULT_RESOURCES,
    KernelResources,
    LocalDispatcher,
)
from repro.gpu.config import GPUConfig

from tests.conftest import TEST_SCALE

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture
def dispatcher():
    return LocalDispatcher(CONFIG)


class TestOccupancy:
    def test_default_resources_full_occupancy(self, dispatcher):
        """The neutral default reaches Table I's 40 wavefronts per CU."""
        report = dispatcher.occupancy(DEFAULT_RESOURCES)
        assert report.max_wavefronts == 40
        assert report.wavefronts == 40
        assert report.fraction == 1.0

    def test_vgpr_pressure_limits(self, dispatcher):
        """Heavy register use cuts resident wavefronts (256 KB VGPR file)."""
        hungry = KernelResources(vgprs_per_thread=128)
        report = dispatcher.occupancy(hungry)
        # 256 KB / (128 * 64 lanes * 4 B) = 8 wavefronts.
        assert report.vgpr_limited == 8
        assert report.wavefronts == 8
        assert report.fraction == pytest.approx(0.2)

    def test_lds_pressure_limits(self, dispatcher):
        """A 32 KB-per-WG kernel fits 2 WGs in the 64 KB LDS."""
        heavy = KernelResources(lds_bytes_per_wg=32 * 1024,
                                wavefronts_per_wg=4)
        report = dispatcher.occupancy(heavy)
        assert report.lds_limited == 8
        assert report.wavefronts == 8

    def test_sgpr_pressure_limits(self, dispatcher):
        hungry = KernelResources(sgprs_per_wavefront=800)
        report = dispatcher.occupancy(hungry)
        # 12.5 KB / (800 * 4 B) = 4 wavefronts.
        assert report.sgpr_limited == 4
        assert report.wavefronts == 4

    def test_wg_granularity_rounds_down(self, dispatcher):
        """With 3-WF work-groups, a 40-WF budget fits 13 whole WGs = 39."""
        resources = KernelResources(wavefronts_per_wg=3)
        report = dispatcher.occupancy(resources)
        assert report.wavefronts == 39

    def test_at_least_one_wg_always_runs(self, dispatcher):
        monster = KernelResources(vgprs_per_thread=256,
                                  wavefronts_per_wg=10)
        report = dispatcher.occupancy(monster)
        assert report.wavefronts >= 1

    def test_invalid_resources(self):
        with pytest.raises(ValueError):
            KernelResources(vgprs_per_thread=0)
        with pytest.raises(ValueError):
            KernelResources(lds_bytes_per_wg=-1)
        with pytest.raises(ValueError):
            KernelResources(wavefronts_per_wg=0)


class TestDispatchRounds:
    def test_single_round_when_everything_fits(self, dispatcher):
        # 40 WFs / 4 per WG = 10 WGs per CU, x60 CUs = 600 concurrent.
        assert dispatcher.dispatch_rounds(600, DEFAULT_RESOURCES) == 1

    def test_multiple_rounds(self, dispatcher):
        assert dispatcher.dispatch_rounds(601, DEFAULT_RESOURCES) == 2
        assert dispatcher.dispatch_rounds(1800, DEFAULT_RESOURCES) == 3

    def test_invalid_wgs(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.dispatch_rounds(0, DEFAULT_RESOURCES)


class TestTimingIntegration:
    def test_low_occupancy_slows_memory_bound_kernels(self):
        from repro.gpu.sim import Simulator
        from repro.memory.address import AddressSpace
        from repro.cp.packets import AccessMode
        from repro.workloads.base import Kernel, KernelArg, Workload

        def build(resources):
            space = AddressSpace()
            buf = space.alloc("A", 32 * 4096)
            kernels = [Kernel("k", args=(KernelArg(buf, AccessMode.R),),
                              resources=resources)
                       for _ in range(4)]
            return Workload(name="occ", space=space, kernels=kernels)

        full = Simulator(CONFIG, "cpelide").run(build(None)).wall_cycles
        starved = Simulator(CONFIG, "cpelide").run(
            build(KernelResources(vgprs_per_thread=128))).wall_cycles
        assert starved > full

    def test_mlp_factor_validated(self):
        from repro.timing.model import TimingModel
        from repro.cp.wg_scheduler import Placement
        from repro.interconnect.noc import TrafficMeter
        from repro.metrics.stats import AccessCounts
        model = TimingModel(CONFIG)
        with pytest.raises(ValueError):
            model.kernel_time(Placement((0,), (1,)), [AccessCounts()] * 4,
                              TrafficMeter(), 0.0, 0, 0, False, 0.0,
                              mlp_factor=0.0)
