"""Property-based safety check of the elision engine.

A reference oracle simulates the semantic protocol exactly at line
granularity — per-chiplet L2 contents with versions and dirty bits,
memory-side versions, forward-to-home routing, write-through remote
stores — applies the engine's acquire/release decisions, and asserts the
SC-for-HRF safety property: **no chiplet ever observes a stale version of
a line at a kernel boundary**, no matter which acquires/releases the
engine elided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.elision import ElisionEngine
from repro.core.regions import region_from_arg
from repro.core.table import ChipletCoherenceTable
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket, RangeAnnotation
from repro.cp.wg_scheduler import Placement
from repro.memory.address import LINE_SIZE, AddressSpace

N_CHIPLETS = 4
NUM_BUFFERS = 3
BUFFER_PAGES = 2  # small buffers keep the oracle fast


@dataclass
class Oracle:
    """Semantic model of the Baseline/CPElide data path."""

    num_chiplets: int
    #: line -> latest committed version number.
    latest: Dict[int, int] = field(default_factory=dict)
    #: line -> version visible in memory (L3/DRAM side).
    memory: Dict[int, int] = field(default_factory=dict)
    #: chiplet -> line -> (version, dirty).
    l2: List[Dict[int, Tuple[int, bool]]] = field(default_factory=list)
    #: line -> home chiplet (first touch).
    homes: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if not self.l2:
            self.l2 = [dict() for _ in range(self.num_chiplets)]

    def home_of(self, line: int, toucher: int) -> int:
        return self.homes.setdefault(line, toucher)

    # -- sync ops -------------------------------------------------------

    def release(self, chiplet: int) -> None:
        """Flush: write back dirty lines, retain clean copies."""
        for line, (version, dirty) in list(self.l2[chiplet].items()):
            if dirty:
                self.memory[line] = max(self.memory.get(line, 0), version)
                self.l2[chiplet][line] = (version, False)

    def acquire(self, chiplet: int) -> None:
        """Invalidate: write back dirty (safety) then drop everything."""
        self.release(chiplet)
        self.l2[chiplet].clear()

    # -- demand accesses -------------------------------------------------

    def read(self, chiplet: int, line: int) -> None:
        home = self.home_of(line, chiplet)
        held = self.l2[home].get(line)
        seen = held[0] if held is not None else self.memory.get(line, 0)
        expected = self.latest.get(line, 0)
        assert seen == expected, (
            f"STALE READ: chiplet {chiplet} line {line:#x} saw v{seen}, "
            f"latest is v{expected} (home {home})")
        if home == chiplet and held is None:
            # Local miss allocates from memory.
            self.l2[chiplet][line] = (seen, False)

    def write(self, chiplet: int, line: int) -> None:
        home = self.home_of(line, chiplet)
        version = self.latest.get(line, 0) + 1
        self.latest[line] = version
        if home == chiplet:
            self.l2[chiplet][line] = (version, True)
        else:
            # Remote store: write through to memory and invalidate the
            # home L2's now-stale copy (matching BaselineProtocol).
            self.memory[line] = version
            self.l2[home].pop(line, None)


def lines_of_range(byte_range) -> range:
    lo, hi = byte_range
    return range(lo // LINE_SIZE, (hi + LINE_SIZE - 1) // LINE_SIZE)


# Strategy: a kernel = (buffer idx, mode, shared?, chiplet subset).
kernel_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_BUFFERS - 1),
        st.sampled_from([AccessMode.R, AccessMode.RW]),
        st.booleans(),                    # shared whole-buffer annotation?
        st.sets(st.integers(min_value=0, max_value=N_CHIPLETS - 1),
                min_size=1, max_size=N_CHIPLETS),
    ),
    min_size=1, max_size=14)


@given(kernel_specs)
@settings(max_examples=120, deadline=None)
def test_elision_never_allows_stale_reads(specs):
    space = AddressSpace()
    buffers = [space.alloc(f"b{i}", BUFFER_PAGES * 4096)
               for i in range(NUM_BUFFERS)]
    engine = ElisionEngine(ChipletCoherenceTable(num_chiplets=N_CHIPLETS))
    oracle = Oracle(num_chiplets=N_CHIPLETS)

    for kernel_id, (buf_idx, mode, is_shared, chiplets) in enumerate(specs):
        buf = buffers[buf_idx]
        chiplet_list = tuple(sorted(chiplets))
        placement = Placement(chiplets=chiplet_list,
                              wg_counts=tuple(4 for _ in chiplet_list))
        if is_shared and mode is AccessMode.R:
            # Shared read: everyone touches the whole structure.
            arg = ArgAccess(buf, mode, ranges=tuple(
                RangeAnnotation(buf.base, buf.end, logical)
                for logical in range(len(chiplet_list))))
        else:
            # Partitioned (the only race-free way to share writes).
            arg = ArgAccess(buf, mode, ranges=None)
        packet = KernelPacket(kernel_id=kernel_id, name=f"k{kernel_id}",
                              stream_id=0, num_wgs=16, args=(arg,))

        outcome = engine.process_launch(packet, placement)
        for op in outcome.ops:
            if op.kind is SyncOpKind.RELEASE:
                oracle.release(op.chiplet)
            else:
                oracle.acquire(op.chiplet)

        region = region_from_arg(arg, placement)
        for chiplet, byte_range in region.chiplet_ranges.items():
            for line in lines_of_range(byte_range):
                oracle.read(chiplet, line)
                if mode.writes:
                    oracle.write(chiplet, line)


@given(kernel_specs)
@settings(max_examples=60, deadline=None)
def test_table_never_exceeds_capacity(specs):
    space = AddressSpace()
    buffers = [space.alloc(f"b{i}", BUFFER_PAGES * 4096)
               for i in range(NUM_BUFFERS)]
    table = ChipletCoherenceTable(num_chiplets=N_CHIPLETS)
    engine = ElisionEngine(table)
    for kernel_id, (buf_idx, mode, _shared, chiplets) in enumerate(specs):
        chiplet_list = tuple(sorted(chiplets))
        placement = Placement(chiplets=chiplet_list,
                              wg_counts=tuple(4 for _ in chiplet_list))
        packet = KernelPacket(
            kernel_id=kernel_id, name=f"k{kernel_id}", stream_id=0,
            num_wgs=16, args=(ArgAccess(buffers[buf_idx], mode),))
        engine.process_launch(packet, placement)
        assert len(table) <= table.capacity
