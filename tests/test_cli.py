"""Tests for the two command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCLI:
    def test_list(self, capsys):
        assert repro_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "babelstream" in out
        assert "cpelide" in out
        assert "streams" in out

    def test_run_compares_protocols(self, capsys):
        rc = repro_main(["--scale", "0.015625", "run", "square",
                         "--protocols", "baseline", "cpelide"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "square on 4 chiplets" in out
        assert "cpelide" in out

    def test_run_with_locality_scheduler(self, capsys):
        rc = repro_main(["--scale", "0.015625", "run", "square",
                         "--protocols", "cpelide",
                         "--scheduler", "locality"])
        assert rc == 0

    def test_trace(self, capsys):
        rc = repro_main(["--scale", "0.015625", "trace", "square",
                         "--limit", "5"])
        assert rc == 0
        assert "sync trace" in capsys.readouterr().out

    def test_occupancy_subset(self, capsys):
        rc = repro_main(["--scale", "0.015625", "occupancy", "square",
                         "nw"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "square" in out and "nw" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "crysis"])

    def test_check_small_matrix(self, capsys):
        rc = repro_main(["--scale", "0.015625", "check",
                         "--workloads", "square",
                         "--protocols", "cpelide",
                         "--trace-paths", "line", "run"])
        assert rc == 0
        assert "oracle OK" in capsys.readouterr().out

    def test_check_with_sanitizer(self, capsys):
        rc = repro_main(["--scale", "0.015625", "check", "--sanitize",
                         "--workloads", "square",
                         "--protocols", "cpelide",
                         "--trace-paths", "line", "run"])
        assert rc == 0
        assert "oracle OK" in capsys.readouterr().out

    def test_check_rejects_unknown_trace_path(self):
        with pytest.raises(SystemExit):
            repro_main(["check", "--trace-paths", "line", "bogus"])

    def test_chiplet_override(self, capsys):
        rc = repro_main(["--scale", "0.015625", "--chiplets", "2",
                         "run", "square", "--protocols", "baseline"])
        assert rc == 0
        assert "2 chiplets" in capsys.readouterr().out


class TestExperimentsCLI:
    def test_table1(self, capsys):
        assert experiments_main(["table1"]) == 0
        assert "1801 MHz" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert experiments_main(["table3"]) == 0
        assert "CPElide" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_scale_flag_threads_through(self, capsys):
        assert experiments_main(["scheduler", "--scale", "0.015625"]) == 0
        assert "Scheduler ablation" in capsys.readouterr().out
