"""Tests for the two command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCLI:
    def test_list(self, capsys):
        assert repro_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "babelstream" in out
        assert "cpelide" in out
        assert "streams" in out

    def test_run_compares_protocols(self, capsys):
        rc = repro_main(["--scale", "0.015625", "run", "square",
                         "--protocols", "baseline", "cpelide"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "square on 4 chiplets" in out
        assert "cpelide" in out

    def test_run_with_locality_scheduler(self, capsys):
        rc = repro_main(["--scale", "0.015625", "run", "square",
                         "--protocols", "cpelide",
                         "--scheduler", "locality"])
        assert rc == 0

    def test_trace(self, capsys):
        rc = repro_main(["--scale", "0.015625", "trace", "square",
                         "--limit", "5"])
        assert rc == 0
        assert "sync trace" in capsys.readouterr().out

    def test_occupancy_subset(self, capsys):
        rc = repro_main(["--scale", "0.015625", "occupancy", "square",
                         "nw"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "square" in out and "nw" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "crysis"])

    def test_check_small_matrix(self, capsys):
        rc = repro_main(["--scale", "0.015625", "check",
                         "--workloads", "square",
                         "--protocols", "cpelide",
                         "--trace-paths", "line", "run"])
        assert rc == 0
        assert "oracle OK" in capsys.readouterr().out

    def test_check_with_sanitizer(self, capsys):
        rc = repro_main(["--scale", "0.015625", "check", "--sanitize",
                         "--workloads", "square",
                         "--protocols", "cpelide",
                         "--trace-paths", "line", "run"])
        assert rc == 0
        assert "oracle OK" in capsys.readouterr().out

    def test_check_rejects_unknown_trace_path(self):
        with pytest.raises(SystemExit):
            repro_main(["check", "--trace-paths", "line", "bogus"])

    def test_chiplet_override(self, capsys):
        rc = repro_main(["--scale", "0.015625", "--chiplets", "2",
                         "run", "square", "--protocols", "baseline"])
        assert rc == 0
        assert "2 chiplets" in capsys.readouterr().out


class TestDistCLI:
    def test_run_then_expect_cached(self, capsys, tmp_path):
        base = ["--scale", "0.015625", "dist", "--workloads", "square",
                "--protocols", "cpelide", "--workers", "2",
                "--cache-dir", str(tmp_path / "c")]
        assert repro_main(base) == 0
        assert repro_main(base + ["--expect-cached"]) == 0
        out = capsys.readouterr().out
        assert "served from in-flight" in out

    def test_expect_cached_fails_cold(self, tmp_path):
        rc = repro_main(["--scale", "0.015625", "dist", "--workloads",
                         "square", "--protocols", "cpelide",
                         "--cache-dir", str(tmp_path / "c"),
                         "--expect-cached"])
        assert rc == 1

    def test_scatter_work_gather(self, capsys, tmp_path):
        work_dir = str(tmp_path / "wd")
        common = ["--scale", "0.015625"]
        assert repro_main(common + ["dist", "--mode", "scatter",
                                    "--work-dir", work_dir,
                                    "--workloads", "square",
                                    "--protocols", "cpelide"]) == 0
        assert repro_main(common + ["dist", "--mode", "work",
                                    "--work-dir", work_dir]) == 0
        assert repro_main(common + ["dist", "--mode", "gather",
                                    "--work-dir", work_dir]) == 0
        out = capsys.readouterr().out
        assert "scattered" in out
        assert "executed" in out

    def test_modes_require_work_dir(self):
        assert repro_main(["dist", "--mode", "work"]) == 2


class TestExploreCLI:
    def test_quick_tiny_grid(self, capsys, tmp_path):
        rc = repro_main(["explore", "--chiplet-counts", "2", "4",
                         "--table-windows", "4", "--l2-mb", "4",
                         "--workloads", "square",
                         "--rungs", "0.015625", "--workers", "1",
                         "--cache-dir", str(tmp_path / "c"),
                         "--out", str(tmp_path / "explore.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto exploration" in out
        assert (tmp_path / "explore.json").exists()


class TestBenchEnvironment:
    def test_environment_stamp_fields(self):
        from repro.bench import bench_environment

        env = bench_environment()
        assert set(env) == {"python", "numpy", "cpu_count", "platform",
                            "hostname_hash"}
        assert env["cpu_count"] >= 1
        assert len(env["hostname_hash"]) == 8

    def test_compare_environments_flags_mismatches(self):
        from repro.bench import bench_environment, compare_environments

        env = bench_environment()
        report = {"meta": {"environment": env}}
        same = {"meta": {"environment": dict(env)}}
        assert compare_environments(report, same) == []
        other = dict(env, cpu_count=env["cpu_count"] + 63)
        diffs = compare_environments(report,
                                     {"meta": {"environment": other}})
        assert len(diffs) == 1
        assert "cpu_count" in diffs[0]
        legacy = compare_environments(report, {"meta": {}})
        assert "predates the stamp" in legacy[0]

    def test_check_dist_scaling_gates(self):
        from repro.bench import check_dist_scaling

        cell = {"workers": 2, "usable_workers": 1, "efficiency": 0.9,
                "speedup": 0.9, "identical": True}
        report = {
            "counts": [cell],
            "warm": {"executed": 0, "identical": True},
            "aggregate": {"max_efficiency": 0.9, "warm_speedup": 10.0},
            "meta": {"worker_counts": [2]},
        }
        ok, message = check_dist_scaling(report, min_efficiency=0.5)
        assert ok and "scaling ok" in message
        bad = dict(report, counts=[dict(cell, efficiency=0.1)])
        ok, message = check_dist_scaling(bad, min_efficiency=0.5)
        assert not ok and "efficiency" in message
        recomputed = dict(report,
                          warm={"executed": 3, "identical": True})
        ok, message = check_dist_scaling(recomputed)
        assert not ok and "recomputed" in message


class TestExperimentsCLI:
    def test_table1(self, capsys):
        assert experiments_main(["table1"]) == 0
        assert "1801 MHz" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert experiments_main(["table3"]) == 0
        assert "CPElide" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_scale_flag_threads_through(self, capsys):
        assert experiments_main(["scheduler", "--scale", "0.015625"]) == 0
        assert "Scheduler ablation" in capsys.readouterr().out
