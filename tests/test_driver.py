"""Unit tests for the GPU driver / software-queue layer."""

import pytest

from repro.coherence.viper import BaselineProtocol
from repro.cp.driver import GPUDriver, PacketKind, SoftwarePacket, SoftwareQueue
from repro.cp.global_cp import GlobalCP
from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.memory.address import AddressSpace
from repro.workloads.base import Kernel, KernelArg

from tests.conftest import TEST_SCALE


@pytest.fixture
def config():
    return GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture
def kernel():
    buf = AddressSpace().alloc("A", 16 * 4096)
    return Kernel("k", args=(KernelArg(buf, AccessMode.RW),), num_wgs=16)


class TestSoftwareQueue:
    def test_doorbell_drains_ring(self):
        queue = SoftwareQueue(0)
        queue.push(SoftwarePacket(PacketKind.BARRIER))
        queue.push(SoftwarePacket(PacketKind.BARRIER))
        assert len(queue) == 2
        drained = queue.ring_doorbell()
        assert len(drained) == 2
        assert len(queue) == 0
        assert queue.doorbell_rings == 1

    def test_dispatch_requires_kernel(self):
        with pytest.raises(ValueError):
            SoftwarePacket(PacketKind.KERNEL_DISPATCH)


class TestGPUDriver:
    def test_dense_kernel_ids(self, config, kernel):
        driver = GPUDriver(config)
        ids = [driver.enqueue_kernel(kernel).kernel_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert driver.kernels_enqueued == 5

    def test_packet_carries_annotations(self, config, kernel):
        driver = GPUDriver(config)
        packet = driver.enqueue_kernel(kernel)
        assert len(packet.args) == 1
        assert packet.args[0].mode is AccessMode.RW

    def test_streams_get_separate_queues(self, config, kernel):
        import dataclasses
        driver = GPUDriver(config)
        driver.enqueue_kernel(kernel)
        driver.enqueue_kernel(dataclasses.replace(kernel, stream_id=1))
        assert len(driver.queue_for_stream(0)) == 1
        assert len(driver.queue_for_stream(1)) == 1

    def test_submit_hands_to_cp(self, config, kernel):
        device = Device(config)
        global_cp = GlobalCP(config, device, BaselineProtocol(config, device))
        driver = GPUDriver(config)
        driver.enqueue_kernel(kernel)
        driver.enqueue_kernel(kernel)
        assert driver.submit(global_cp) == 2
        assert global_cp.queue_scheduler.pending == 2
        # Second submit has nothing left.
        assert driver.submit(global_cp) == 0

    def test_logical_chiplets_respect_masks(self, config):
        buf = AddressSpace().alloc("A", 16 * 4096)
        masked = Kernel("k", args=(KernelArg(buf, AccessMode.R),),
                        num_wgs=16, chiplet_mask=(1, 2))
        driver = GPUDriver(config)
        packet = driver.enqueue_kernel(masked)
        assert packet.chiplet_mask == (1, 2)

    def test_narrow_kernel_logical_count(self, config):
        buf = AddressSpace().alloc("A", 16 * 4096)
        narrow = Kernel("k", args=(KernelArg(buf, AccessMode.R),), num_wgs=1)
        driver = GPUDriver(config)
        packet = driver.enqueue_kernel(narrow)
        # A 1-WG kernel's annotation spans one logical chiplet: the whole
        # buffer on logical 0.
        lo, hi = packet.args[0].range_for_logical_chiplet(0, 1)
        assert (lo, hi) == (buf.base, buf.end)
