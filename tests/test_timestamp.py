"""Timestamp/lease coherence: the ledger, both protocols, the sanitizer
lease invariants, and the v4.0 protocol-registration round trip."""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.check.sanitizer import CheckError
from repro.coherence.registry import (
    ProtocolSpec,
    protocol_names,
    register_protocol,
    unregister_protocol,
)
from repro.coherence.timestamp import (
    CPElideTimestampProtocol,
    LeaseLedger,
    TimestampProtocol,
)
from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE


def run_sim(workload, protocol, *, lease=4, chiplets=4, check=False,
            scale=TEST_SCALE, trace_path=None):
    config = GPUConfig(num_chiplets=chiplets, scale=scale,
                       lease_kernels=lease, check_invariants=check)
    sim = Simulator(config, protocol, trace_path=trace_path)
    return sim, sim.run(build_workload(workload, config))


# ---------------------------------------------------------------------------
# LeaseLedger unit tests
# ---------------------------------------------------------------------------


class TestLeaseLedger:
    def test_lease_boundary_is_exact(self):
        led = LeaseLedger(num_chiplets=1, lease=3)
        led.grant(0, 7)
        for _ in range(2):
            led.tick()
        assert led.invalid_reason(0, 7) is None  # age 2 < lease 3
        led.tick()
        assert led.invalid_reason(0, 7) == "expiry"  # age 3 == lease

    def test_renewal_restarts_the_lease(self):
        led = LeaseLedger(num_chiplets=1, lease=2)
        led.grant(0, 7)
        led.tick()
        led.grant(0, 7)  # renew at age 1
        led.tick()
        assert led.invalid_reason(0, 7) is None
        led.tick()
        assert led.invalid_reason(0, 7) == "expiry"

    def test_zero_lease_never_trusts_a_copy(self):
        led = LeaseLedger(num_chiplets=1, lease=0)
        led.grant(0, 7)
        assert led.invalid_reason(0, 7) == "expiry"  # age 0 >= lease 0
        assert not led.run_valid(0, 7, 1)

    def test_write_stamp_makes_older_copies_stale(self):
        led = LeaseLedger(num_chiplets=2, lease=16)
        led.grant(0, 7)
        led.tick()
        led.stamp_write(7)  # a later write anywhere
        assert led.invalid_reason(0, 7) == "stale"
        led.grant(1, 7)  # filled at the stamp epoch: fresh
        assert led.invalid_reason(1, 7) is None

    def test_expiry_wins_over_staleness(self):
        # Age-first ordering is what makes age-capped canonical
        # snapshots safe: an expired-and-stale copy must count as an
        # expiry on both sides of a memo restore.
        led = LeaseLedger(num_chiplets=1, lease=2)
        led.grant(0, 7)
        led.tick()
        led.stamp_write(7)
        led.tick()
        assert led.invalid_reason(0, 7) == "expiry"

    def test_unleased_lines_have_no_reason(self):
        led = LeaseLedger(num_chiplets=1, lease=4)
        assert led.invalid_reason(0, 99) is None
        led.grant(0, 99)
        led.drop(0, 99)
        assert led.invalid_reason(0, 99) is None

    def test_run_valid_matches_per_line_reasons(self):
        led = LeaseLedger(num_chiplets=1, lease=4)
        led.renew_run(0, 10, 4)
        assert led.run_valid(0, 10, 4)
        led.tick()
        led.stamp_write(12)
        assert not led.run_valid(0, 10, 4)  # line 12 went stale
        assert led.run_valid(0, 10, 2)  # 10..11 still fine

    def test_canonical_is_translation_invariant(self):
        def build(offset):
            led = LeaseLedger(num_chiplets=2, lease=4)
            for _ in range(offset):
                led.tick()
            led.grant(0, 5)
            led.tick()
            led.stamp_write(9)
            led.grant(1, 9)
            return led

        a, b = build(0), build(100)
        assert a.clock != b.clock
        assert a.canonical() == b.canonical()
        assert a.digest() == b.digest()

    def test_restore_round_trips_behavior(self):
        led = LeaseLedger(num_chiplets=2, lease=4)
        led.grant(0, 5)
        led.tick()
        led.stamp_write(9)
        led.grant(1, 9)
        snap = led.canonical()

        other = LeaseLedger(num_chiplets=2, lease=4)
        for _ in range(37):
            other.tick()
        other.restore(snap)
        assert other.canonical() == snap
        assert other.invalid_reason(0, 5) is None
        other.tick()
        other.stamp_write(5)
        assert other.invalid_reason(0, 5) == "stale"

    def test_canonical_caps_expired_ages_and_prunes_dead_stamps(self):
        led = LeaseLedger(num_chiplets=1, lease=2)
        led.grant(0, 5)
        led.stamp_write(8)
        for _ in range(10):
            led.tick()
        fills, stamps = led.canonical()
        assert fills[0] == ((5, 2),)  # age capped at the lease
        assert stamps == ()  # a stamp older than the lease is dead


# ---------------------------------------------------------------------------
# TimestampProtocol end to end
# ---------------------------------------------------------------------------


class TestTimestampProtocol:
    def test_deterministic_and_never_issues_sync_ops(self):
        _, first = run_sim("bfs", "timestamp")
        _, again = run_sim("bfs", "timestamp")
        assert first.to_dict() == again.to_dict()
        sync = first.metrics.total_sync()
        assert sync.acquires_issued == 0
        assert sync.releases_issued == 0

    def test_short_leases_expire_and_long_leases_do_not(self):
        _, short = run_sim("bfs", "timestamp", lease=4)
        _, long_ = run_sim("bfs", "timestamp", lease=1 << 20)
        assert short.metrics.total_sync().lease_expiries > 0
        assert long_.metrics.total_sync().lease_expiries == 0

    def test_writes_stamp_and_stale_copies_refetch(self):
        # hotspot writes lines other chiplets hold under live leases, so
        # the exact stamp check (not expiry) must fire.
        _, res = run_sim("hotspot", "timestamp", lease=1 << 20)
        sync = res.metrics.total_sync()
        assert sync.lease_stale_refetches > 0
        assert sync.lease_expiries == 0

    def test_zero_lease_disables_copy_reuse(self):
        _, zero = run_sim("bfs", "timestamp", lease=0)
        _, some = run_sim("bfs", "timestamp", lease=4)
        sync = zero.metrics.total_sync()
        # Every revisit of a cached copy self-invalidates instead of
        # serving, so expiries dominate and no copy is ever trusted.
        assert sync.lease_expiries > 0
        assert sync.lease_stale_refetches == 0
        assert zero.to_dict() != some.to_dict()

    def test_negative_lease_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(lease_kernels=-1)

    def test_checked_run_is_bit_identical_to_unchecked(self):
        # The sanitizer's serve observer disables the bulk fast paths;
        # batched-equivalence guarantees the numbers cannot move.
        _, plain = run_sim("hotspot", "timestamp")
        sim, checked = run_sim("hotspot", "timestamp", check=True)
        assert sim.last_sanitizer is not None
        assert sim.last_sanitizer.kernels_checked > 0
        assert checked.cycles == plain.cycles
        assert checked.metrics.total_sync() == plain.metrics.total_sync()


# ---------------------------------------------------------------------------
# CPElideTimestampProtocol (cpelide-ts) end to end
# ---------------------------------------------------------------------------


class TestCPElideTimestampProtocol:
    def test_drops_every_acquire_but_keeps_release_elision(self):
        _, hybrid = run_sim("square", "cpelide-ts")
        _, cpelide = run_sim("square", "cpelide")
        hy, cp = hybrid.metrics.total_sync(), cpelide.metrics.total_sync()
        assert hy.acquires_issued == 0
        # Dropped acquires are not "elided" either — they are simply
        # never issued; the table's release behavior is untouched.
        assert hy.releases_issued == cp.releases_issued
        assert hy.releases_elided == cp.releases_elided

    def test_deterministic(self):
        _, first = run_sim("hotspot", "cpelide-ts")
        _, again = run_sim("hotspot", "cpelide-ts")
        assert first.to_dict() == again.to_dict()

    def test_leases_age_out_home_copies(self):
        _, short = run_sim("bfs", "cpelide-ts", lease=1)
        assert short.metrics.total_sync().lease_expiries > 0

    def test_checked_runs_pass_on_sharing_heavy_workloads(self):
        for workload in ("hotspot", "bfs"):
            sim, _ = run_sim(workload, "cpelide-ts", check=True)
            assert sim.last_sanitizer.kernels_checked > 0


# ---------------------------------------------------------------------------
# Sanitizer meta-test: a planted lease bug must be caught
# ---------------------------------------------------------------------------


class _TrustingLedger(LeaseLedger):
    """Planted bug: trusts any un-expired copy, never consulting the
    write stamps — exactly the stale-read hazard leases must prevent."""

    def invalid_reason(self, chiplet, line):
        fill = self.fills[chiplet].get(line)
        if fill is None:
            return None
        if self.clock - fill >= self.lease:
            return "expiry"
        return None  # BUG: skips the stamp check

    def run_valid(self, chiplet, start, count):
        fills = self.fills[chiplet]
        return all(
            fills.get(line) is not None
            and self.clock - fills[line] < self.lease
            for line in range(start, start + count))


class _BuggyTimestampProtocol(TimestampProtocol):
    def __init__(self, config, device):
        super().__init__(config, device)
        self.leases = _TrustingLedger(config.num_chiplets,
                                      config.lease_kernels)


class TestLeaseSanitizerMetaTest:
    def test_stale_serve_is_caught(self):
        # Long lease so expiry never saves the buggy ledger: the only
        # defense against the cross-chiplet write is the stamp check it
        # skips, and the sanitizer must call the resulting serve out.
        with pytest.raises(CheckError, match="lease-stale-serve"):
            run_sim("hotspot", _BuggyTimestampProtocol, lease=1 << 20,
                    check=True)

    def test_scenario_is_live(self):
        # The meta-test is only meaningful if the healthy protocol sees
        # actual staleness on this workload (i.e. the hazard arises).
        _, res = run_sim("hotspot", "timestamp", lease=1 << 20)
        assert res.metrics.total_sync().lease_stale_refetches > 0


# ---------------------------------------------------------------------------
# Registration round trip: one register call reaches every surface
# ---------------------------------------------------------------------------


def _spec(name="test-rt-proto"):
    return ProtocolSpec(name=name, factory=TimestampProtocol,
                        description="round-trip test protocol",
                        knobs=("lease_kernels",))


class TestRegistrationRoundTrip:
    def test_oracle_defaults_cover_the_lease_protocols(self):
        from repro.check.oracle import DEFAULT_PROTOCOLS
        assert "timestamp" in DEFAULT_PROTOCOLS
        assert "cpelide-ts" in DEFAULT_PROTOCOLS
        assert len(DEFAULT_PROTOCOLS) == 5

    def test_registered_name_is_sweepable(self, config2):
        from repro.api import sweep
        register_protocol(_spec())
        try:
            result = sweep(workloads=("square",),
                           protocols=("test-rt-proto",),
                           configs=(config2,), cache=False)
            assert result.outcomes[0].job.protocol == "test-rt-proto"
        finally:
            unregister_protocol("test-rt-proto")

    def test_registered_name_passes_server_admission(self):
        from repro.server.schemas import parse_simulate
        register_protocol(_spec())
        try:
            sub = parse_simulate({"workload": "square",
                                  "protocol": "test-rt-proto",
                                  "scale": TEST_SCALE})
            assert sub.spec.expand()[0].protocol == "test-rt-proto"
        finally:
            unregister_protocol("test-rt-proto")

    def test_admission_rejects_unknown_protocol_naming_valid_set(self):
        from repro.server.schemas import parse_simulate
        with pytest.raises(ConfigError) as err:
            parse_simulate({"workload": "square", "protocol": "bogus"})
        assert "timestamp" in str(err.value)
        assert "cpelide-ts" in str(err.value)

    def test_server_lists_protocols(self):
        from repro.server import ReproServer
        from repro.server.http import Request

        async def scenario():
            srv = ReproServer()
            response = await srv.dispatch(Request(
                method="GET", path="/v1/protocols", headers={}, body=b""))
            assert response.status == 200
            body = json.loads(response.body)
            names = [p["name"] for p in body["protocols"]]
            assert names == list(protocol_names())
            ts = next(p for p in body["protocols"]
                      if p["name"] == "timestamp")
            assert "lease_kernels" in ts["knobs"]
            assert ts["description"]

        asyncio.run(scenario())

    def test_jobspec_rejects_unknown_protocol_at_build_time(self, config2):
        from repro.engine.spec import JobSpec
        with pytest.raises(ConfigError, match="bogus"):
            JobSpec(workload="square", protocol="bogus", config=config2)

    def test_cli_run_accepts_lease_protocols(self, capsys):
        from repro.__main__ import main as repro_main
        rc = repro_main(["--scale", "0.015625", "run", "square",
                         "--protocols", "timestamp", "cpelide-ts"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timestamp" in out and "cpelide-ts" in out

    def test_cli_check_covers_lease_protocols(self, capsys):
        from repro.__main__ import main as repro_main
        rc = repro_main(["--scale", "0.015625", "check",
                         "--workloads", "square",
                         "--protocols", "timestamp", "cpelide-ts",
                         "--trace-paths", "line", "run", "memo"])
        assert rc == 0
        assert "oracle OK" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Cross-path agreement (the oracle's job, pinned here per protocol)
# ---------------------------------------------------------------------------


class TestTracePathAgreement:
    @pytest.mark.parametrize("protocol", ["timestamp", "cpelide-ts"])
    @pytest.mark.parametrize("workload", ["hotspot", "bfs"])
    def test_line_run_memo_agree(self, protocol, workload):
        results = [
            run_sim(workload, protocol, lease=3, trace_path=path)[1]
            for path in ("line", "run", "memo")]
        assert results[0].to_dict() == results[1].to_dict()
        assert results[0].to_dict() == results[2].to_dict()
