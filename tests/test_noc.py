"""Unit tests for interconnect accounting: meters, crossbar, links."""

import pytest

from repro.interconnect.crossbar import CPCrossbar
from repro.interconnect.links import InterChipletLinks
from repro.interconnect.noc import FlitParams, TrafficMeter


class TestFlitParams:
    def test_defaults(self):
        params = FlitParams()
        assert params.control_flits == 1
        assert params.data_flits == 3  # header + 64B / 32B

    def test_custom_flit_size(self):
        params = FlitParams(flit_bytes=16, line_size=64)
        assert params.data_flits == 5


class TestTrafficMeter:
    def test_categories_accumulate_independently(self):
        meter = TrafficMeter()
        meter.l1_request(2)
        meter.l1_data()
        meter.l2_request()
        meter.l2_data(3)
        meter.remote_request()
        meter.remote_data(2)
        assert meter.l1_l2 == 2 + 3
        assert meter.l2_l3 == 1 + 9
        assert meter.remote == 1 + 6
        assert meter.total == meter.l1_l2 + meter.l2_l3 + meter.remote

    def test_as_dict_matches_fig10_components(self):
        meter = TrafficMeter()
        meter.l2_data()
        d = meter.as_dict()
        assert set(d) == {"l1_l2", "l2_l3", "remote", "total"}
        assert d["l2_l3"] == 3

    def test_merge(self):
        a, b = TrafficMeter(), TrafficMeter()
        a.l1_data()
        b.remote_data()
        a.merge(b)
        assert a.l1_l2 == 3
        assert a.remote == 3
        assert b.l1_l2 == 0

    def test_remote_bytes(self):
        meter = TrafficMeter()
        meter.remote_data()   # 3 flits * 32 B
        assert meter.remote_bytes == 96


class TestCPCrossbar:
    def test_unicast_latency_and_count(self):
        xbar = CPCrossbar()
        assert xbar.unicast(3) == 65
        assert xbar.messages_sent == 3

    def test_unicast_zero_targets(self):
        xbar = CPCrossbar()
        assert xbar.unicast(0) == 0
        assert xbar.messages_sent == 0

    def test_broadcast(self):
        xbar = CPCrossbar()
        assert xbar.broadcast() == 100
        assert xbar.messages_sent == 1

    def test_gather_acks(self):
        xbar = CPCrossbar()
        assert xbar.gather_acks([0, 1, 2]) == 65
        assert xbar.gather_acks([]) == 0
        assert xbar.messages_sent == 3

    def test_negative_targets_rejected(self):
        with pytest.raises(ValueError):
            CPCrossbar().unicast(-1)


class TestInterChipletLinks:
    def test_table1_bandwidth(self):
        links = InterChipletLinks()
        assert links.total_bandwidth_bytes_per_sec == 768e9

    def test_transfer_time(self):
        links = InterChipletLinks(total_bandwidth_bytes_per_sec=1e9)
        assert links.transfer_seconds(1e9) == pytest.approx(1.0)
        assert links.transfer_seconds(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            InterChipletLinks().transfer_seconds(-1)
