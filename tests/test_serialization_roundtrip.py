"""Round-trip losslessness of every result dataclass (satellite S4).

Each result type's ``to_dict`` output, pushed through an actual JSON
encode/decode (the engine's cache and worker transport both do), must
rebuild an equal object via ``from_dict``. Fields deliberately excluded
from serialization are pinned by exact set equality, so adding a new
field without either serializing it or updating the exclusion list
fails here instead of silently dropping data in the result cache.
"""

from __future__ import annotations

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.analysis.occupancy import TableOccupancyProfile
from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult, Simulator
from repro.interconnect.noc import FlitParams, TrafficMeter
from repro.metrics.stats import (
    AccessCounts,
    KernelMetrics,
    RunMetrics,
    SyncCounts,
)
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

#: SimulationResult fields that are runtime diagnostics/provenance, not
#: result identity. Everything else must survive serialization.
SIM_RESULT_UNSERIALIZED = {"memo_hits", "memo_misses", "memo_bypasses",
                           "from_cache", "obs"}

counters = st.integers(min_value=0, max_value=2**40)
cycles = st.floats(min_value=0, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
names = st.text(min_size=0, max_size=12)


def roundtrip(obj):
    """from_dict(json-wire(to_dict(obj))) — the real cache round trip."""
    return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))


def fill(cls, ints=(), floats=(), **fixed):
    """Strategy building ``cls`` with drawn counter/cycle fields."""
    strategies = {name: counters for name in ints}
    strategies.update({name: cycles for name in floats})
    return st.builds(cls, **strategies, **fixed)


def int_fields(cls):
    return [f.name for f in dataclasses.fields(cls)]


access_counts = fill(AccessCounts, ints=int_fields(AccessCounts))
sync_counts = fill(SyncCounts, ints=int_fields(SyncCounts))
traffic_meters = st.builds(
    TrafficMeter,
    params=st.builds(FlitParams,
                     flit_bytes=st.integers(min_value=1, max_value=256),
                     line_size=st.integers(min_value=1, max_value=1024)),
    l1_l2=counters, l2_l3=counters, remote=counters)
kernel_metrics = st.builds(
    KernelMetrics,
    kernel_name=names, kernel_index=counters,
    cycles=cycles, compute_cycles=cycles, memory_cycles=cycles,
    sync_cycles=cycles, cp_overhead_cycles=cycles,
    accesses=access_counts, sync=sync_counts, traffic=traffic_meters,
    chiplets_used=st.integers(min_value=0, max_value=64))
run_metrics = st.builds(
    RunMetrics,
    workload=names, protocol=names,
    num_chiplets=st.integers(min_value=1, max_value=64),
    kernels=st.lists(kernel_metrics, max_size=3))
occupancy_profiles = st.builds(
    TableOccupancyProfile,
    workload=names, num_kernels=counters,
    occupancy=st.lists(counters, max_size=8),
    peak_entries=counters, capacity=counters,
    overflow_evictions=counters,
    acquires_issued=counters, releases_issued=counters,
    acquires_elided=counters, releases_elided=counters)
simulation_results = st.builds(
    SimulationResult,
    metrics=run_metrics,
    energy=st.dictionaries(names, cycles, max_size=4),
    wall_cycles=cycles, protocol=names,
    num_chiplets=st.integers(min_value=1, max_value=64))


class TestPropertyRoundTrips:
    @settings(max_examples=50)
    @given(access_counts)
    def test_access_counts(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=50)
    @given(sync_counts)
    def test_sync_counts(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=50)
    @given(traffic_meters)
    def test_traffic_meter(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=50)
    @given(kernel_metrics)
    def test_kernel_metrics(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=25)
    @given(run_metrics)
    def test_run_metrics(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=50)
    @given(occupancy_profiles)
    def test_occupancy_profile(self, obj):
        assert roundtrip(obj) == obj

    @settings(max_examples=25)
    @given(simulation_results)
    def test_simulation_result(self, obj):
        assert roundtrip(obj) == obj


class TestFieldCoverage:
    """New-field tripwires: every dataclass field is either in the
    ``to_dict`` payload or on an explicit exclusion list."""

    def test_counter_dataclasses_serialize_every_field(self):
        for cls in (AccessCounts, SyncCounts, TableOccupancyProfile):
            names_ = {f.name for f in dataclasses.fields(cls)}
            assert set(cls().to_dict() if cls is not TableOccupancyProfile
                       else cls(workload="w", num_kernels=0).to_dict()) \
                == names_

    def test_traffic_meter_payload_covers_state(self):
        payload = TrafficMeter().to_dict()
        assert set(payload) == {"l1_l2", "l2_l3", "remote",
                                "flit_bytes", "line_size"}

    def test_simulation_result_exclusions_are_exact(self):
        field_names = {f.name for f in dataclasses.fields(SimulationResult)}
        result = SimulationResult(
            metrics=RunMetrics(workload="w", protocol="p", num_chiplets=1),
            energy={}, wall_cycles=0.0, protocol="p", num_chiplets=1)
        serialized = set(result.to_dict())
        assert field_names - serialized == SIM_RESULT_UNSERIALIZED
        assert serialized <= field_names


class TestRealRunRoundTrip:
    def test_simulation_result_from_real_run(self):
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        result = Simulator(config, "cpelide").run(
            build_workload("square", config))
        rebuilt = roundtrip(result)
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_occupancy_profile_from_real_run(self):
        from repro.analysis.occupancy import profile_table_occupancy

        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        profile = profile_table_occupancy(
            build_workload("square", config), config)
        assert roundtrip(profile) == profile
