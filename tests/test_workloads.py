"""Tests for the 24 workload models and the trace generator."""

import pytest

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.memory.address import AddressSpace
from repro.workloads.base import (
    AccessKind,
    Kernel,
    KernelArg,
    PatternKind,
    Workload,
    kernel_touched_lines,
    lines_for_arg,
)
from repro.workloads.suite import HIGH_REUSE, LOW_REUSE, WORKLOAD_NAMES, build_workload

from tests.conftest import TEST_SCALE

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


class TestSuiteRegistry:
    def test_twenty_four_workloads(self):
        """Table II evaluates 24 applications."""
        assert len(WORKLOAD_NAMES) == 24
        assert len(set(WORKLOAD_NAMES)) == 24

    def test_grouping_sizes(self):
        assert len(HIGH_REUSE) == 18
        assert len(LOW_REUSE) == 6
        assert not set(HIGH_REUSE) & set(LOW_REUSE)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_workload_builds(self, name):
        workload = build_workload(name, CONFIG)
        assert workload.num_kernels > 0
        assert workload.buffers()
        assert workload.footprint_bytes() > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_kernel_annotated(self, name):
        """Every kernel labels every data structure (Sec. III-B)."""
        workload = build_workload(name, CONFIG)
        for kernel in workload.kernels:
            assert kernel.args, f"{kernel.name} has no annotations"
            packet = kernel.packet(0, num_logical=4)
            assert len(packet.args) == len(kernel.args)

    def test_footprints_scale(self):
        small = build_workload("babelstream", CONFIG)
        big = build_workload("babelstream", CONFIG.with_scale(1 / 16))
        assert big.footprint_bytes() > small.footprint_bytes()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_workload("doom", CONFIG)

    def test_dynamic_kernel_counts_reasonable(self):
        """Table II: up to 510 dynamic kernels; our capped models stay in
        a representative band."""
        for name in WORKLOAD_NAMES:
            n = build_workload(name, CONFIG).num_kernels
            assert 3 <= n <= 510, f"{name}: {n} kernels"


class TestKernelArgValidation:
    def setup_method(self):
        self.buf = AddressSpace().alloc("A", 64 * 4096)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            KernelArg(self.buf, AccessMode.R, fraction=0.0)
        with pytest.raises(ValueError):
            KernelArg(self.buf, AccessMode.R, fraction=1.5)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            KernelArg(self.buf, AccessMode.R, offset=1.0)

    def test_read_only_store_rejected(self):
        with pytest.raises(ValueError):
            KernelArg(self.buf, AccessMode.R, kind=AccessKind.STORE)

    def test_effective_kind_defaults(self):
        assert KernelArg(self.buf, AccessMode.R).effective_kind \
            is AccessKind.LOAD
        assert KernelArg(self.buf, AccessMode.RW).effective_kind \
            is AccessKind.LOAD_STORE


class TestTraceGenerator:
    def setup_method(self):
        self.buf = AddressSpace().alloc("A", 64 * 4096)  # 4096 lines

    def test_partitioned_slices_disjoint_and_complete(self):
        arg = KernelArg(self.buf, AccessMode.R)
        all_lines = []
        for logical in range(4):
            all_lines.extend(lines_for_arg(arg, logical, 4, kernel_id=0))
        assert len(all_lines) == len(set(all_lines)) == self.buf.num_lines

    def test_fraction_limits_sweep(self):
        arg = KernelArg(self.buf, AccessMode.R, fraction=0.5)
        lines = lines_for_arg(arg, 0, 4, 0)
        assert len(lines) == pytest.approx(self.buf.num_lines / 8, abs=2)

    def test_offset_moves_window(self):
        a = KernelArg(self.buf, AccessMode.R, fraction=0.25, offset=0.0)
        b = KernelArg(self.buf, AccessMode.R, fraction=0.25, offset=0.5)
        assert not set(lines_for_arg(a, 0, 4, 0)) \
            & set(lines_for_arg(b, 0, 4, 0))

    def test_stencil_halo_reaches_neighbors(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.STENCIL,
                        halo_lines=4)
        lines = set(lines_for_arg(arg, 1, 4, 0))
        lo, hi = self.buf.slice_lines(1, 4)
        assert (lo - 1) in lines       # reaches into the slice below
        assert hi in lines             # and above

    def test_stencil_halo_clamped_at_edges(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.STENCIL,
                        halo_lines=4)
        lines = set(lines_for_arg(arg, 0, 4, 0))
        assert min(lines) == self.buf.first_line

    def test_shared_touches_whole_buffer_per_chiplet(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.SHARED)
        for logical in range(4):
            assert len(lines_for_arg(arg, logical, 4, 0)) \
                == self.buf.num_lines

    def test_random_is_deterministic(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.RANDOM,
                        fraction=0.2, seed=7)
        a = lines_for_arg(arg, 0, 4, kernel_id=3)
        b = lines_for_arg(arg, 0, 4, kernel_id=3)
        assert a == b

    def test_random_resamples_per_kernel(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.RANDOM,
                        fraction=0.2, seed=7, resample=True)
        a = set(lines_for_arg(arg, 0, 4, kernel_id=0))
        b = set(lines_for_arg(arg, 0, 4, kernel_id=1))
        assert a != b

    def test_random_stable_across_kernels(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.RANDOM,
                        fraction=0.2, seed=7, resample=False)
        a = lines_for_arg(arg, 0, 4, kernel_id=0)
        b = lines_for_arg(arg, 0, 4, kernel_id=9)
        assert a == b

    def test_stable_fraction_mixes(self):
        arg = KernelArg(self.buf, AccessMode.R, pattern=PatternKind.RANDOM,
                        fraction=0.4, seed=7, stable_fraction=0.5)
        a = set(lines_for_arg(arg, 0, 4, kernel_id=0))
        b = set(lines_for_arg(arg, 0, 4, kernel_id=1))
        overlap = len(a & b) / max(1, min(len(a), len(b)))
        assert 0.3 <= overlap <= 0.9  # roughly half recur

    def test_lines_stay_inside_buffer(self):
        for pattern in PatternKind:
            arg = KernelArg(self.buf, AccessMode.R, pattern=pattern,
                            fraction=0.5, halo_lines=8)
            for logical in range(4):
                lines = lines_for_arg(arg, logical, 4, 0)
                first, last = self.buf.line_range()
                assert all(first <= l < last for l in lines)

    def test_kernel_touched_lines_counts_all_args(self):
        kernel = Kernel("k", args=(
            KernelArg(self.buf, AccessMode.R),
            KernelArg(self.buf, AccessMode.RW, fraction=0.5),
        ))
        total = kernel_touched_lines(kernel, 4, 0)
        assert total == pytest.approx(self.buf.num_lines * 1.5, rel=0.01)


class TestWorkloadValidation:
    def test_reuse_class_checked(self):
        space = AddressSpace()
        buf = space.alloc("A", 4096)
        kernel = Kernel("k", args=(KernelArg(buf, AccessMode.R),))
        with pytest.raises(ValueError):
            Workload(name="w", space=space, kernels=[kernel],
                     reuse_class="medium")

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload(name="w", space=AddressSpace(), kernels=[])


class TestStreamsBench:
    """The Sec. VI gem5-resources multi-stream benchmark."""

    def test_builds_with_two_streams(self):
        workload = build_workload("streams", CONFIG)
        streams = {k.stream_id for k in workload.kernels}
        assert streams == {0, 1}

    def test_streams_have_disjoint_masks(self):
        workload = build_workload("streams", CONFIG)
        masks = {k.chiplet_mask for k in workload.kernels}
        assert masks == {(0, 1), (2, 3)}

    def test_not_counted_in_table2(self):
        from repro.workloads.suite import EXTRA_WORKLOADS
        assert "streams" in EXTRA_WORKLOADS
        assert "streams" not in WORKLOAD_NAMES

    def test_rejects_single_chiplet(self):
        from repro.gpu.config import GPUConfig
        with pytest.raises(ValueError):
            build_workload("streams", GPUConfig(num_chiplets=1,
                                                scale=TEST_SCALE))

    def test_runs_concurrently(self):
        from repro.gpu.sim import Simulator
        result = Simulator(CONFIG, "cpelide").run(
            build_workload("streams", CONFIG))
        assert result.wall_cycles < result.metrics.total_cycles
