"""Unit tests for the energy model (Fig. 9 breakdown)."""

import pytest

from repro.energy.model import EnergyModel, EnergyParams
from repro.interconnect.noc import TrafficMeter
from repro.metrics.stats import AccessCounts


@pytest.fixture
def model():
    return EnergyModel()


class TestBreakdown:
    def test_components_match_fig9(self, model):
        bd = model.breakdown(AccessCounts(), TrafficMeter())
        assert set(bd) == set(EnergyModel.COMPONENTS) | {"total"}

    def test_zero_counts_zero_energy(self, model):
        bd = model.breakdown(AccessCounts(), TrafficMeter())
        assert bd["total"] == 0.0

    def test_total_is_sum(self, model):
        counts = AccessCounts(l1_accesses=100, lds_accesses=10,
                              l2_local_hits=50, dram_reads=5)
        traffic = TrafficMeter()
        traffic.l2_data(10)
        bd = model.breakdown(counts, traffic)
        assert bd["total"] == pytest.approx(
            sum(bd[c] for c in EnergyModel.COMPONENTS))

    def test_dram_access_dominates_l2_access(self, model):
        dram = model.breakdown(AccessCounts(dram_reads=1), TrafficMeter())
        l2 = model.breakdown(AccessCounts(l2_local_hits=1), TrafficMeter())
        assert dram["total"] > l2["total"]

    def test_relative_magnitudes(self):
        """DRAM >> NOC/L3 flit >> L2 > L1 > LDS — what Fig. 9 relies on."""
        p = EnergyParams()
        assert p.dram_access > p.l2_access > p.l1d_access > p.lds_access
        assert p.noc_remote_flit > p.noc_l2_l3_flit > p.noc_l1_l2_flit

    def test_writethroughs_add_l2_energy(self, model):
        plain = model.breakdown(AccessCounts(l2_local_hits=10),
                                TrafficMeter())
        wt = model.breakdown(
            AccessCounts(l2_local_hits=10, l2_writethroughs=10),
            TrafficMeter())
        assert wt["l2"] > plain["l2"]

    def test_noc_split_by_link_type(self, model):
        t1 = TrafficMeter()
        t1.l1_data(10)
        t2 = TrafficMeter()
        t2.remote_data(10)
        cheap = model.breakdown(AccessCounts(), t1)
        costly = model.breakdown(AccessCounts(), t2)
        assert costly["noc"] > cheap["noc"]

    def test_custom_params(self):
        model = EnergyModel(EnergyParams(dram_access=1.0))
        bd = model.breakdown(AccessCounts(dram_reads=3), TrafficMeter())
        assert bd["dram"] == pytest.approx(3.0)
