"""Distributed sweep engine: shared cache claims, sharding, runners.

Covers the cross-process dedupe protocol (claim/lease/reclaim), the
deterministic sharder, :class:`DistSweepRunner` bit-identity against the
serial engine, and the scatter/work/gather multi-host flow.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.engine.cache import (
    CLAIM_ACQUIRED,
    CLAIM_HIT,
    CLAIM_INFLIGHT,
    SharedResultCache,
)
from repro.engine.dist import (
    DistSweepRunner,
    gather,
    scatter,
    shard_jobs,
    unit_key,
    work,
)
from repro.engine.runner import SweepRunner
from repro.engine.spec import JobSpec, SweepSpec
from repro.errors import CacheError
from repro.gpu.config import GPUConfig

from tests.conftest import TEST_SCALE

WORKLOADS = ("square", "bfs")
PROTOCOLS = ("baseline", "cpelide")


def small_spec(workloads=WORKLOADS, protocols=PROTOCOLS,
               chiplet_counts=(4,)):
    return SweepSpec.grid(workloads=workloads, protocols=protocols,
                          chiplet_counts=chiplet_counts, scale=TEST_SCALE)


def one_job(workload="square", protocol="cpelide"):
    return JobSpec(workload=workload, protocol=protocol,
                   config=GPUConfig(num_chiplets=4, scale=TEST_SCALE))


class TestClaimProtocol:
    def test_miss_acquires_then_other_sees_inflight(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        job = one_job()
        status, token = cache.try_claim(job)
        assert status == CLAIM_ACQUIRED
        assert cache.stats.claims == 1
        other = SharedResultCache(root=tmp_path / "c")
        status2, claim = other.try_claim(job)
        assert status2 == CLAIM_INFLIGHT
        assert claim["pid"] == os.getpid()
        cache.store_and_release(job, {"x": 1}, token)
        status3, payload = other.try_claim(job)
        assert status3 == CLAIM_HIT
        assert payload == {"x": 1}

    def test_abandon_lets_next_caller_claim(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        job = one_job()
        status, token = cache.try_claim(job)
        assert status == CLAIM_ACQUIRED
        cache.abandon(job, token)
        status2, _ = cache.try_claim(job)
        assert status2 == CLAIM_ACQUIRED
        assert cache.load(job) is None

    def test_expired_lease_is_reclaimed(self, tmp_path):
        dead = SharedResultCache(root=tmp_path / "c", lease_seconds=0.01)
        job = one_job()
        status, _ = dead.try_claim(job)  # never released: "crashed"
        assert status == CLAIM_ACQUIRED
        time.sleep(0.05)
        survivor = SharedResultCache(root=tmp_path / "c")
        status2, _ = survivor.try_claim(job)
        assert status2 == CLAIM_ACQUIRED
        assert survivor.stats.reclaims == 1

    def test_wait_for_serves_inflight_result(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c", poll_seconds=0.01)
        waiter = SharedResultCache(root=tmp_path / "c", poll_seconds=0.01)
        job = one_job()
        status, token = cache.try_claim(job)
        assert status == CLAIM_ACQUIRED

        def publish():
            time.sleep(0.05)
            cache.store_and_release(job, {"served": True}, token)

        thread = threading.Thread(target=publish)
        thread.start()
        try:
            payload = waiter.wait_for(job, timeout=5.0)
        finally:
            thread.join()
        assert payload == {"served": True}
        assert waiter.stats.deduped == 1

    def test_wait_for_returns_none_when_holder_abandons(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c", poll_seconds=0.01)
        job = one_job()
        _, token = cache.try_claim(job)
        cache.abandon(job, token)
        assert cache.wait_for(job, timeout=0.2) is None

    def test_release_requires_matching_token(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        job = one_job()
        _, token = cache.try_claim(job)
        cache.abandon(job, "not-the-token")
        # Wrong token must not drop the live claim.
        other = SharedResultCache(root=tmp_path / "c")
        status, _ = other.try_claim(job)
        assert status == CLAIM_INFLIGHT
        cache.abandon(job, token)

    def test_claim_files_invisible_to_len_and_clear(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        job = one_job()
        cache.try_claim(job)
        assert len(cache) == 0
        assert cache.clear() == 0
        assert cache.claimed_keys() == [cache.key(job)]

    def test_acquire_blocks_until_hit_or_ownership(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c", poll_seconds=0.01)
        job = one_job()
        status, token = cache.acquire(job)
        assert status == CLAIM_ACQUIRED
        cache.store_and_release(job, {"x": 2}, token)
        status2, payload = cache.acquire(job)
        assert status2 == CLAIM_HIT
        assert payload == {"x": 2}


def _race_worker(root, barrier, counter_path, out_path):
    """One contender: acquire the cell, compute (counted) or be served."""
    from repro.engine.cache import (
        CLAIM_ACQUIRED,
        SharedResultCache,
    )

    cache = SharedResultCache(root=root, poll_seconds=0.01)
    job = one_job()
    barrier.wait()
    status, value = cache.acquire(job)
    if status == CLAIM_ACQUIRED:
        # Count this compute via an O_APPEND side file (atomic on
        # linux for small writes), then publish after a delay so the
        # loser demonstrably waits on the in-flight claim.
        fd = os.open(counter_path, os.O_CREAT | os.O_APPEND | os.O_WRONLY)
        os.write(fd, b"computed\n")
        os.close(fd)
        time.sleep(0.2)
        payload = {"winner": True, "value": 42}
        cache.store_and_release(job, payload, value)
    else:
        payload = value
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


class TestCrossProcessRace:
    def test_two_processes_one_compute_identical_results(self, tmp_path):
        """Satellite S4: two processes racing the same key — exactly one
        computes, both end up with identical payloads."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        counter = tmp_path / "computes.log"
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [ctx.Process(target=_race_worker,
                             args=(str(tmp_path / "c"), barrier,
                                   str(counter), str(out)))
                 for out in outs]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
        assert all(proc.exitcode == 0 for proc in procs)
        assert counter.read_text().count("computed") == 1
        payloads = [json.loads(out.read_text()) for out in outs]
        assert payloads[0]["value"] == payloads[1]["value"] == 42


class TestClaimTimekeeping:
    """The clock/lease rules: wall-clock deadlines compare with a skew
    margin; local waits are monotonic (PR 9 bugfix sweep)."""

    def test_skew_margin_keeps_barely_expired_claim(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c", lease_seconds=100.0)
        barely = {"deadline": time.time() - 1.0, "lease": 100.0}
        assert not cache._claim_expired(barely)  # within the 5s margin
        clearly = {"deadline": time.time() - 10.0, "lease": 100.0}
        assert cache._claim_expired(clearly)

    def test_skew_margin_scales_down_with_short_leases(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        # A 10ms lease gets a 2.5ms margin, not 5s — short-lease tests
        # and crash recovery must not wait out the full skew allowance.
        stale = {"deadline": time.time() - 0.05, "lease": 0.01}
        assert cache._claim_expired(stale)

    def test_legacy_claim_without_lease_uses_cache_lease(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c", lease_seconds=0.01)
        assert cache._claim_expired({"deadline": time.time() - 0.05})

    def test_wait_for_timeout_is_monotonic_not_wall_clock(self, tmp_path,
                                                          monkeypatch):
        """A wall-clock step must not extend/shrink a local timeout."""
        cache = SharedResultCache(root=tmp_path / "c", poll_seconds=0.01)
        job = one_job()
        _, _token = cache.try_claim(job)  # held in-flight, never released
        real_time = time.time
        state = {"first": True}

        def stepping_clock():
            # First read normal, then the wall clock "steps" 1h back
            # mid-wait: a time.time()-based deadline would now be an
            # hour away, while the monotonic one still fires at 0.2s.
            if state["first"]:
                state["first"] = False
                return real_time()
            return real_time() - 3600.0

        monkeypatch.setattr(time, "time", stepping_clock)
        t0 = time.monotonic()
        assert cache.wait_for(job, timeout=0.2) is None
        assert time.monotonic() - t0 < 5.0

    def test_reclaim_cas_restores_stolen_fresh_claim(self, tmp_path):
        """Token mismatch inside _reclaim_expired means the expired
        claim was already replaced: the fresh claim must be restored,
        not destroyed (the double-reclaim bug)."""
        cache = SharedResultCache(root=tmp_path / "c", lease_seconds=0.01)
        job = one_job()
        status, _ = cache.try_claim(job)
        assert status == CLAIM_ACQUIRED
        time.sleep(0.05)
        claim_path = cache._claim_path(cache.key(job))
        observed = cache._read_claim(claim_path)
        assert observed is not None
        # Another worker reclaims first and writes its own fresh claim.
        fresh = SharedResultCache(root=tmp_path / "c")
        assert fresh._reclaim_expired(claim_path, observed)
        fresh_token = fresh._claim_token()
        assert fresh._write_claim(claim_path, fresh_token)
        # The slow reclaimer still holds the stale observation: its CAS
        # must fail and leave the fresh claim in place.
        assert not cache._reclaim_expired(claim_path, observed)
        survivor = cache._read_claim(claim_path)
        assert survivor is not None and survivor["token"] == fresh_token


class TestExpiredClaimReclaimRace:
    def test_two_processes_one_reclaim_one_compute(self, tmp_path):
        """PR 9 satellite: two waiters racing an *expired* claim — the
        atomic reclaim guarantees exactly one recompute."""
        root = tmp_path / "c"
        dead = SharedResultCache(root=root, lease_seconds=0.01)
        job = one_job()
        status, _ = dead.try_claim(job)  # crashed owner, never released
        assert status == CLAIM_ACQUIRED
        time.sleep(0.05)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        counter = tmp_path / "computes.log"
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [ctx.Process(target=_race_worker,
                             args=(str(root), barrier, str(counter),
                                   str(out)))
                 for out in outs]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
        assert all(proc.exitcode == 0 for proc in procs)
        assert counter.read_text().count("computed") == 1
        payloads = [json.loads(out.read_text()) for out in outs]
        assert payloads[0]["value"] == payloads[1]["value"] == 42


class TestShardJobs:
    def test_units_cover_pending_exactly_once(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        jobs = small_spec().expand()
        pending = list(range(len(jobs)))
        units = shard_jobs(jobs, pending, workers=2, cache=cache)
        covered = [index for unit in units for index, _ in unit.items]
        assert covered == pending

    def test_unit_keys_are_content_addressed_and_deterministic(
            self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        jobs = small_spec().expand()
        key_a = unit_key(jobs[:2], cache)
        key_b = unit_key(jobs[:2], cache)
        assert key_a == key_b
        assert key_a != unit_key(jobs[2:4], cache)
        units = shard_jobs(jobs, list(range(len(jobs))), 2, cache)
        again = shard_jobs(jobs, list(range(len(jobs))), 2, cache)
        assert [u.key for u in units] == [u.key for u in again]

    def test_batch_size_override(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        jobs = small_spec().expand()
        units = shard_jobs(jobs, list(range(len(jobs))), 2, cache,
                           batch_size=1)
        assert len(units) == len(jobs)
        assert all(unit.cells == 1 for unit in units)

    def test_only_pending_jobs_shard(self, tmp_path):
        cache = SharedResultCache(root=tmp_path / "c")
        jobs = small_spec().expand()
        units = shard_jobs(jobs, [1, 3], 2, cache)
        covered = [index for unit in units for index, _ in unit.items]
        assert covered == [1, 3]


class TestDistRunner:
    def test_bit_identical_to_serial(self, tmp_path):
        spec = small_spec()
        serial = SweepRunner(jobs=1, cache=False).run(spec)
        dist = DistSweepRunner(workers=2, cache=tmp_path / "c").run(spec)
        assert dist.to_dicts() == serial.to_dicts()

    def test_second_pass_zero_recomputes(self, tmp_path):
        spec = small_spec()
        runner = DistSweepRunner(workers=2, cache=tmp_path / "c")
        first = runner.run(spec)
        assert first.report.executed == first.report.total_jobs
        warm = DistSweepRunner(workers=2, cache=tmp_path / "c").run(spec)
        assert warm.report.executed == 0
        assert warm.report.cache_hits == warm.report.total_jobs
        assert warm.to_dicts() == first.to_dicts()

    def test_summary_reports_dedupe_and_worker_cells(self, tmp_path):
        spec = small_spec()
        result = DistSweepRunner(workers=2, cache=tmp_path / "c").run(spec)
        summary = result.report.summary()
        assert "served from in-flight" in summary
        if result.report.parallel:
            assert "/".join(
                str(n) for n in result.report.per_worker_cells) in summary
        assert sum(result.report.per_worker_cells) == \
            result.report.executed

    def test_single_worker_runs_in_process(self, tmp_path):
        spec = small_spec(workloads=("square",))
        result = DistSweepRunner(workers=1, cache=tmp_path / "c").run(spec)
        assert result.report.executed == result.report.total_jobs
        serial = SweepRunner(jobs=1, cache=False).run(spec)
        assert result.to_dicts() == serial.to_dicts()

    def test_results_marked_from_cache_on_warm_pass(self, tmp_path):
        spec = small_spec(workloads=("square",))
        DistSweepRunner(workers=1, cache=tmp_path / "c").run(spec)
        warm = DistSweepRunner(workers=1, cache=tmp_path / "c").run(spec)
        assert all(outcome.result.from_cache
                   for outcome in warm.outcomes)


class TestScatterWorkGather:
    def test_round_trip_matches_serial(self, tmp_path):
        spec = small_spec()
        work_dir = tmp_path / "wd"
        units = scatter(spec, work_dir, workers=2)
        assert (work_dir / "spec.json").exists()
        assert len(list((work_dir / "units").glob("unit-*.json"))) == \
            len(units)
        executed = work(work_dir)
        assert executed == len(units)
        gathered = gather(work_dir)
        serial = SweepRunner(jobs=1, cache=False).run(spec)
        assert gathered.to_dicts() == serial.to_dicts()

    def test_second_work_call_finds_nothing(self, tmp_path):
        spec = small_spec(workloads=("square",))
        work_dir = tmp_path / "wd"
        scatter(spec, work_dir, workers=2)
        assert work(work_dir) > 0
        assert work(work_dir) == 0

    def test_gather_names_missing_units(self, tmp_path):
        spec = small_spec(workloads=("square",))
        work_dir = tmp_path / "wd"
        units = scatter(spec, work_dir, workers=2)
        with pytest.raises(CacheError) as excinfo:
            gather(work_dir)
        message = str(excinfo.value)
        assert all(str(unit.index) in message for unit in units)

    def test_max_units_bounds_one_call(self, tmp_path):
        spec = small_spec()
        work_dir = tmp_path / "wd"
        units = scatter(spec, work_dir, workers=2)
        assert len(units) > 1
        assert work(work_dir, max_units=1) == 1
        assert work(work_dir) == len(units) - 1

    def test_workers_share_cells_through_cache(self, tmp_path):
        # Two scattered sweeps over the same work dir: the second's
        # cells are all served from the shared cache, not recomputed.
        spec = small_spec(workloads=("square",))
        work_dir = tmp_path / "wd"
        scatter(spec, work_dir, workers=1)
        work(work_dir)
        result_files = sorted(
            (work_dir / "results").glob("unit-*.json"))
        first_docs = [json.loads(p.read_text()) for p in result_files]
        assert any(cell["how"] == "run"
                   for doc in first_docs for cell in doc["cells"])
        for path in list((work_dir / "results").iterdir()):
            path.unlink()
        work(work_dir)
        second_docs = [json.loads(p.read_text()) for p in sorted(
            (work_dir / "results").glob("unit-*.json"))]
        assert all(cell["how"] != "run"
                   for doc in second_docs for cell in doc["cells"])


class TestApiIntegration:
    def test_sweep_workers_routes_through_dist(self, tmp_path):
        from repro.api import sweep

        spec = small_spec(workloads=("square",))
        res = sweep(spec, workers=2, cache_dir=tmp_path / "c")
        serial = sweep(spec, jobs=1, cache=False)
        assert res.to_dicts() == serial.to_dicts()
        again = sweep(spec, workers=2, cache_dir=tmp_path / "c")
        assert again.report.executed == 0
