"""Unit tests for the L1 filter, LDS, and DRAM models."""

import pytest

from repro.memory.dram import DRAMModel
from repro.memory.l1 import L1Filter
from repro.memory.lds import LocalDataShare


class TestL1Filter:
    def test_single_touch_all_forwarded(self):
        res = L1Filter(0.9).filter(distinct_lines=100, touches_per_line=1.0)
        assert res.l1_accesses == 100
        assert res.l1_hits == 0
        assert res.l2_distinct == 100
        assert res.l2_repeats == 0

    def test_repeats_mostly_absorbed(self):
        res = L1Filter(0.9).filter(distinct_lines=100, touches_per_line=3.0)
        assert res.l1_accesses == 300
        assert res.l1_hits == 180          # 200 repeats * 0.9
        assert res.l2_repeats == 20

    def test_zero_hit_rate_forwards_everything(self):
        res = L1Filter(0.0).filter(100, 2.0)
        assert res.l1_hits == 0
        assert res.l2_repeats == 100

    def test_perfect_hit_rate(self):
        res = L1Filter(1.0).filter(50, 4.0)
        assert res.l1_hits == 150
        assert res.l2_repeats == 0

    def test_accounting_identity(self):
        res = L1Filter(0.7).filter(64, 2.5)
        assert res.l1_accesses == res.l2_distinct + res.l1_hits + res.l2_repeats

    def test_zero_lines(self):
        res = L1Filter(0.9).filter(0, 2.0)
        assert res.l1_accesses == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            L1Filter(1.5)
        with pytest.raises(ValueError):
            L1Filter(0.9).filter(-1, 1.0)
        with pytest.raises(ValueError):
            L1Filter(0.9).filter(10, 0.5)


class TestLDS:
    def test_record_accumulates(self):
        lds = LocalDataShare()
        lds.record(100)
        lds.record(50)
        assert lds.accesses == 150

    def test_reset(self):
        lds = LocalDataShare()
        lds.record(10)
        lds.reset()
        assert lds.accesses == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LocalDataShare().record(-1)

    def test_table1_defaults(self):
        lds = LocalDataShare()
        assert lds.size_bytes == 64 * 1024
        assert lds.latency_cycles == 65


class TestDRAM:
    def test_per_stack_accounting(self):
        dram = DRAMModel(num_stacks=4)
        dram.record_read(0, 5)
        dram.record_write(3, 2)
        assert dram.reads == [5, 0, 0, 0]
        assert dram.writes == [0, 0, 0, 2]
        assert dram.total_reads == 5
        assert dram.total_writes == 2
        assert dram.total_accesses == 7

    def test_reset(self):
        dram = DRAMModel(num_stacks=2)
        dram.record_read(1)
        dram.reset()
        assert dram.total_accesses == 0
        assert len(dram.reads) == 2

    def test_invalid_stacks(self):
        with pytest.raises(ValueError):
            DRAMModel(num_stacks=0)
