"""Unit tests for the CPElide state machine (Fig. 6)."""

import pytest

from repro.core.states import ChipletState, is_legal_transition, merge_conservative


class TestEncodings:
    def test_two_bit_encodings_match_paper(self):
        assert ChipletState.NOT_PRESENT == 0b00
        assert ChipletState.VALID == 0b01
        assert ChipletState.DIRTY == 0b10
        assert ChipletState.STALE == 0b11

    def test_all_states_fit_two_bits(self):
        for state in ChipletState:
            assert 0 <= state <= 3


class TestTransitions:
    def test_self_loops_always_legal(self):
        for state in ChipletState:
            assert is_legal_transition(state, state)

    def test_access_transitions(self):
        assert is_legal_transition(ChipletState.NOT_PRESENT, ChipletState.VALID)
        assert is_legal_transition(ChipletState.NOT_PRESENT, ChipletState.DIRTY)
        assert is_legal_transition(ChipletState.VALID, ChipletState.DIRTY)

    def test_remote_write_makes_stale(self):
        assert is_legal_transition(ChipletState.VALID, ChipletState.STALE)
        assert is_legal_transition(ChipletState.DIRTY, ChipletState.STALE)

    def test_release_cleans(self):
        assert is_legal_transition(ChipletState.DIRTY, ChipletState.VALID)

    def test_acquire_drops(self):
        for state in (ChipletState.VALID, ChipletState.DIRTY,
                      ChipletState.STALE):
            assert is_legal_transition(state, ChipletState.NOT_PRESENT)

    def test_illegal_transitions(self):
        # Clean data cannot silently become dirty-at-another-state etc.
        assert not is_legal_transition(ChipletState.NOT_PRESENT,
                                       ChipletState.STALE)
        assert not is_legal_transition(ChipletState.VALID,
                                       ChipletState.VALID) is False  # legal
        # A stale copy cannot be cleaned by a release (flush writes the
        # *holder's* data; a stale holder needs an acquire).
        assert is_legal_transition(ChipletState.STALE, ChipletState.VALID)


class TestConservativeMerge:
    def test_dirty_dominates_everything(self):
        for other in ChipletState:
            assert merge_conservative(ChipletState.DIRTY, other) \
                == ChipletState.DIRTY

    def test_stale_dominates_valid(self):
        assert merge_conservative(ChipletState.STALE, ChipletState.VALID) \
            == ChipletState.STALE

    def test_valid_dominates_not_present(self):
        assert merge_conservative(ChipletState.VALID,
                                  ChipletState.NOT_PRESENT) \
            == ChipletState.VALID

    def test_commutative(self):
        for a in ChipletState:
            for b in ChipletState:
                assert merge_conservative(a, b) == merge_conservative(b, a)

    def test_idempotent(self):
        for state in ChipletState:
            assert merge_conservative(state, state) == state
