"""Unit tests for access regions and range algebra."""

import pytest

from repro.core.regions import (
    AccessRegion,
    intersect_ranges,
    merge_ranges,
    ranges_overlap,
    region_from_arg,
)
from repro.cp.packets import AccessMode, ArgAccess, RangeAnnotation
from repro.cp.wg_scheduler import Placement
from repro.memory.address import Buffer

BUF = Buffer("A", 4096, 16384, 0)


class TestRangeAlgebra:
    def test_overlap(self):
        assert ranges_overlap((0, 10), (5, 15))
        assert ranges_overlap((0, 10), (9, 10))
        assert not ranges_overlap((0, 10), (10, 20))
        assert not ranges_overlap((10, 20), (0, 10))
        assert not ranges_overlap(None, (0, 10))
        assert not ranges_overlap((0, 10), None)

    def test_merge(self):
        assert merge_ranges((0, 10), (20, 30)) == (0, 30)
        assert merge_ranges(None, (1, 2)) == (1, 2)
        assert merge_ranges((1, 2), None) == (1, 2)
        assert merge_ranges(None, None) is None

    def test_intersect(self):
        assert intersect_ranges((0, 10), (5, 15)) == (5, 10)
        assert intersect_ranges((0, 10), (10, 20)) is None
        assert intersect_ranges(None, (0, 1)) is None
        assert intersect_ranges((0, 5), (0, 5)) == (0, 5)


class TestAccessRegion:
    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            AccessRegion("x", 100, 100, AccessMode.R)

    def test_gap_to(self):
        a = AccessRegion("a", 0, 100, AccessMode.R)
        b = AccessRegion("b", 150, 250, AccessMode.R)
        c = AccessRegion("c", 50, 120, AccessMode.R)
        assert a.gap_to(b) == 50
        assert b.gap_to(a) == 50
        assert a.gap_to(c) == 0  # overlapping

    def test_overlaps_extent(self):
        a = AccessRegion("a", 0, 100, AccessMode.R)
        b = AccessRegion("b", 99, 200, AccessMode.R)
        c = AccessRegion("c", 100, 200, AccessMode.R)
        assert a.overlaps_extent(b)
        assert not a.overlaps_extent(c)


class TestRegionFromArg:
    def test_even_split(self):
        placement = Placement(chiplets=(0, 1), wg_counts=(4, 4))
        region = region_from_arg(ArgAccess(BUF, AccessMode.RW), placement)
        assert region.mode is AccessMode.RW
        assert set(region.chiplet_ranges) == {0, 1}
        lo0, hi0 = region.chiplet_ranges[0]
        lo1, hi1 = region.chiplet_ranges[1]
        assert lo0 == BUF.base and hi1 == BUF.end
        assert hi0 == lo1

    def test_logical_to_physical_mapping(self):
        """Logical chiplet i maps to placement.chiplets[i]."""
        placement = Placement(chiplets=(3, 1), wg_counts=(4, 4))
        mid = BUF.base + BUF.size // 2
        arg = ArgAccess(BUF, AccessMode.R, ranges=(
            RangeAnnotation(BUF.base, mid, 0),
            RangeAnnotation(mid, BUF.end, 1)))
        region = region_from_arg(arg, placement)
        assert region.chiplet_ranges[3] == (BUF.base, mid)
        assert region.chiplet_ranges[1] == (mid, BUF.end)

    def test_chiplet_with_empty_range_excluded(self):
        placement = Placement(chiplets=(0, 1), wg_counts=(4, 4))
        arg = ArgAccess(BUF, AccessMode.R, ranges=(
            RangeAnnotation(BUF.base, BUF.end, 0),))
        region = region_from_arg(arg, placement)
        assert 1 not in region.chiplet_ranges
        assert region.chiplet_ranges[0] == (BUF.base, BUF.end)
