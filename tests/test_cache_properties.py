"""Property-based tests for the cache model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssocCache, WritePolicy

# Small parameter space keeps shrinking effective.
accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
    min_size=0, max_size=200)
shapes = st.tuples(st.integers(min_value=1, max_value=32),    # lines
                   st.integers(min_value=1, max_value=8))     # assoc
policies = st.sampled_from(list(WritePolicy))


def run_trace(cache, trace):
    for line, is_write in trace:
        cache.access(line, is_write)


@given(shapes, policies, accesses)
@settings(max_examples=150, deadline=None)
def test_residency_never_exceeds_capacity(shape, policy, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc, policy=policy)
    run_trace(cache, trace)
    assert cache.resident_lines <= cache.capacity_lines


@given(shapes, accesses)
@settings(max_examples=150, deadline=None)
def test_flush_leaves_no_dirty_lines_and_keeps_residency(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    run_trace(cache, trace)
    before = cache.resident_lines
    flushed = cache.flush_dirty()
    assert cache.dirty_lines == 0
    assert cache.resident_lines == before
    assert len(set(flushed)) == len(flushed)


@given(shapes, accesses)
@settings(max_examples=150, deadline=None)
def test_invalidate_empties_cache(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    run_trace(cache, trace)
    dropped, dirty = cache.invalidate_all()
    assert cache.resident_lines == 0
    assert cache.dirty_lines == 0
    assert len(dirty) <= dropped


@given(shapes, accesses)
@settings(max_examples=150, deadline=None)
def test_write_through_never_holds_dirty(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc,
                          policy=WritePolicy.WRITE_THROUGH)
    run_trace(cache, trace)
    assert cache.dirty_lines == 0
    assert cache.stats.dirty_evictions == 0


@given(shapes, accesses)
@settings(max_examples=150, deadline=None)
def test_hits_plus_misses_equals_accesses(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    run_trace(cache, trace)
    assert cache.stats.hits + cache.stats.misses == len(trace)


@given(shapes, accesses)
@settings(max_examples=100, deadline=None)
def test_immediate_reaccess_always_hits(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    for line, is_write in trace:
        cache.access(line, is_write)
        hit, _ = cache.access(line, False)
        assert hit


@given(shapes, accesses)
@settings(max_examples=100, deadline=None)
def test_deterministic_replay(shape, trace):
    lines, assoc = shape
    a = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    b = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    run_trace(a, trace)
    run_trace(b, trace)
    assert a.stats == b.stats
    assert a.resident_lines == b.resident_lines


@given(shapes, accesses)
@settings(max_examples=100, deadline=None)
def test_dirty_lines_only_from_writeback_writes(shape, trace):
    lines, assoc = shape
    cache = SetAssocCache(size_bytes=lines * 64, assoc=assoc)
    run_trace(cache, trace)
    written = {line for line, is_write in trace if is_write}
    for cset in cache._sets.values():
        for line, dirty in cset.items():
            if dirty:
                assert line in written
