"""Unit tests for >8-structure coarsening (Sec. III-B)."""

from repro.core.coarsening import coarsen_regions, merge_two
from repro.core.regions import AccessRegion
from repro.cp.packets import AccessMode

import pytest


def region(name, base, end, mode=AccessMode.R, chiplet_ranges=None):
    return AccessRegion(name=name, base=base, end=end, mode=mode,
                        chiplet_ranges=dict(chiplet_ranges or {}))


class TestMergeTwo:
    def test_covers_both_extents(self):
        merged = merge_two(region("a", 0, 100), region("b", 300, 400))
        assert merged.base == 0 and merged.end == 400

    def test_mode_conservative(self):
        """R + R/W combines to R/W (Sec. III-B)."""
        merged = merge_two(region("a", 0, 100, AccessMode.R),
                           region("b", 100, 200, AccessMode.RW))
        assert merged.mode is AccessMode.RW
        merged = merge_two(region("a", 0, 100, AccessMode.R),
                           region("b", 100, 200, AccessMode.R))
        assert merged.mode is AccessMode.R

    def test_tracks_all_chiplets(self):
        """The combined entry tracks every chiplet any constituent was
        assigned to."""
        merged = merge_two(
            region("a", 0, 100, chiplet_ranges={0: (0, 50)}),
            region("b", 100, 200, chiplet_ranges={1: (100, 150)}))
        assert set(merged.chiplet_ranges) == {0, 1}

    def test_same_chiplet_ranges_unioned(self):
        merged = merge_two(
            region("a", 0, 100, chiplet_ranges={0: (0, 50)}),
            region("b", 100, 200, chiplet_ranges={0: (150, 200)}))
        assert merged.chiplet_ranges[0] == (0, 200)

    def test_name_joins(self):
        assert merge_two(region("a", 0, 10), region("b", 10, 20)).name == "a+b"


class TestCoarsenRegions:
    def test_no_op_when_within_budget(self):
        regions = [region("a", 0, 100), region("b", 200, 300)]
        assert coarsen_regions(regions, 8) == sorted(
            regions, key=lambda r: r.base)

    def test_reduces_to_budget(self):
        regions = [region(f"r{i}", i * 1000, i * 1000 + 100)
                   for i in range(12)]
        out = coarsen_regions(regions, 8)
        assert len(out) == 8

    def test_prefers_contiguous(self):
        """Contiguous structures merge before distant ones."""
        regions = [
            region("a", 0, 100),        # contiguous with b
            region("b", 100, 200),
            region("far", 100000, 100100),
        ]
        out = coarsen_regions(regions, 2)
        names = {r.name for r in out}
        assert "a+b" in names
        assert "far" in names

    def test_then_closest(self):
        regions = [
            region("a", 0, 100),
            region("b", 200, 300),       # gap 100 to a
            region("c", 10000, 10100),   # far away
        ]
        out = coarsen_regions(regions, 2)
        assert {r.name for r in out} == {"a+b", "c"}

    def test_extreme_budget_one(self):
        regions = [region(f"r{i}", i * 500, i * 500 + 100) for i in range(5)]
        out = coarsen_regions(regions, 1)
        assert len(out) == 1
        assert out[0].base == 0
        assert out[0].end == 4 * 500 + 100

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            coarsen_regions([region("a", 0, 1)], 0)
