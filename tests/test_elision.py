"""Behavioral tests for the elision engine (Sec. III-B/III-C scenarios)."""

import pytest

from repro.core.elision import ElisionEngine
from repro.core.states import ChipletState
from repro.core.table import ChipletCoherenceTable
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket, RangeAnnotation
from repro.cp.wg_scheduler import Placement
from repro.memory.address import AddressSpace

N = 4  # chiplets


@pytest.fixture
def engine():
    return ElisionEngine(ChipletCoherenceTable(num_chiplets=N))


@pytest.fixture
def buffers():
    space = AddressSpace()
    return space.alloc("A", 16 * 4096), space.alloc("B", 16 * 4096)


def placement(chiplets):
    return Placement(chiplets=tuple(chiplets),
                     wg_counts=tuple(4 for _ in chiplets))


def launch(engine, kernel_id, args, chiplets=range(N)):
    packet = KernelPacket(kernel_id=kernel_id, name=f"k{kernel_id}",
                          stream_id=0, num_wgs=16, args=tuple(args))
    return engine.process_launch(packet, placement(chiplets))


def shared(buf, mode):
    """Whole-buffer annotation for every scheduled chiplet."""
    return ArgAccess(buf, mode, ranges=tuple(
        RangeAnnotation(buf.base, buf.end, logical) for logical in range(N)))


def kinds(ops):
    return [(op.kind, op.chiplet) for op in ops]


class TestStayInDirty:
    def test_same_placement_rw_elides_everything(self, engine, buffers):
        """Sec. III-B Stay-in-Dirty: iterating on the same chiplets over
        the same ranges needs no synchronization at all."""
        a, _ = buffers
        for kid in range(5):
            outcome = launch(engine, kid, [ArgAccess(a, AccessMode.RW)])
            assert outcome.ops == []
            assert outcome.releases_elided == N
            assert outcome.acquires_elided == N

    def test_read_after_local_write_elides(self, engine, buffers):
        a, _ = buffers
        launch(engine, 0, [ArgAccess(a, AccessMode.RW)])
        outcome = launch(engine, 1, [ArgAccess(a, AccessMode.R)])
        assert outcome.ops == []
        # Dirty data stays Dirty under a local read (Stay-in-Dirty rule).
        entry = engine.table.entries[0]
        assert all(s == ChipletState.DIRTY for s in entry.states)


class TestReadOnlySharing:
    def test_remote_reads_keep_valid(self, engine, buffers):
        """Sec. III-B: caches retain clean copies when other chiplets are
        also only reading a given range."""
        a, _ = buffers
        launch(engine, 0, [ArgAccess(a, AccessMode.R)])
        for kid in range(1, 4):
            outcome = launch(engine, kid, [shared(a, AccessMode.R)])
            assert outcome.ops == []


class TestLazyRelease:
    def test_release_only_for_dirty_holders_needed_elsewhere(self, engine,
                                                             buffers):
        a, _ = buffers
        # Kernel 0: every chiplet writes its slice.
        launch(engine, 0, [ArgAccess(a, AccessMode.RW)])
        # Kernel 1: chiplet 0 alone reads the whole structure.
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.R),))
        outcome = engine.process_launch(packet, placement([0]))
        released = {c for k, c in kinds(outcome.ops) if k is SyncOpKind.RELEASE}
        # Chiplets 1-3 must flush; chiplet 0 reads its own dirty data.
        assert released == {1, 2, 3}
        acquires = [c for k, c in kinds(outcome.ops) if k is SyncOpKind.ACQUIRE]
        assert acquires == []

    def test_no_release_when_consumer_is_producer(self, engine, buffers):
        a, _ = buffers
        launch(engine, 0, [ArgAccess(a, AccessMode.RW)], chiplets=[2])
        outcome = launch(engine, 1, [ArgAccess(a, AccessMode.R)], chiplets=[2])
        assert outcome.ops == []


class TestLazyAcquire:
    def test_acquire_deferred_until_stale_chiplet_reaccesses(self, engine,
                                                             buffers):
        a, _ = buffers
        # K0: all chiplets read their slices (Valid everywhere).
        launch(engine, 0, [ArgAccess(a, AccessMode.R)])
        # K1: chiplet 0 writes the whole structure -> others become Stale,
        # but no op is issued yet (lazy acquire).
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.RW),))
        outcome = engine.process_launch(packet, placement([0]))
        assert all(k is not SyncOpKind.ACQUIRE for k, _ in kinds(outcome.ops))
        entry = engine.table.entries[0]
        assert entry.states[1] == ChipletState.STALE
        assert entry.states[2] == ChipletState.STALE
        # K2: everyone reads again -> stale chiplets acquire now.
        outcome = launch(engine, 2, [ArgAccess(a, AccessMode.R)])
        acquired = {c for k, c in kinds(outcome.ops) if k is SyncOpKind.ACQUIRE}
        assert acquired == {1, 2, 3}

    def test_stale_chiplet_not_accessing_is_left_alone(self, engine, buffers):
        a, _ = buffers
        launch(engine, 0, [ArgAccess(a, AccessMode.R)])
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.RW),))
        engine.process_launch(packet, placement([0]))
        # K2 runs only on chiplets 0 and 1: chiplets 2-3 stay Stale, no op.
        packet = KernelPacket(kernel_id=2, name="k2", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.R),))
        outcome = engine.process_launch(packet, placement([0, 1]))
        targeted = {c for _, c in kinds(outcome.ops)}
        assert 2 not in targeted and 3 not in targeted


class TestProducerConsumerAcrossChiplets:
    def test_flush_then_stale_then_acquire(self, engine, buffers):
        a, _ = buffers
        # K0: chiplet 0 writes all of A.
        packet = KernelPacket(kernel_id=0, name="k0", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.RW),))
        engine.process_launch(packet, placement([0]))
        # K1: chiplet 1 writes all of A -> chiplet 0 must flush first, and
        # its copy becomes Stale afterwards.
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.RW),))
        outcome = engine.process_launch(packet, placement([1]))
        assert (SyncOpKind.RELEASE, 0) in kinds(outcome.ops)
        entry = engine.table.entries[0]
        assert entry.states[0] == ChipletState.STALE
        assert entry.states[1] == ChipletState.DIRTY

    def test_release_precedes_acquire_on_same_chiplet(self, engine, buffers):
        a, b = buffers
        # Make chiplet 0 dirty on A and stale on B simultaneously.
        packet = KernelPacket(kernel_id=0, name="k0", stream_id=0, num_wgs=16,
                              args=(ArgAccess(a, AccessMode.RW),
                                    ArgAccess(b, AccessMode.R)))
        engine.process_launch(packet, placement([0]))
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0, num_wgs=16,
                              args=(ArgAccess(b, AccessMode.RW),))
        engine.process_launch(packet, placement([1]))  # B stale on 0
        # K2 on chiplets 0 and 1 reads both structures: chiplet 1 needs
        # A's dirty data from chiplet 0 (release 0) and chiplet 0 rereads
        # the B range that went stale (acquire 0).
        packet = KernelPacket(kernel_id=2, name="k2", stream_id=0, num_wgs=16,
                              args=(shared(a, AccessMode.R),
                                    shared(b, AccessMode.R)))
        outcome = engine.process_launch(packet, placement([0, 1]))
        ops0 = [op.kind for op in outcome.ops if op.chiplet == 0]
        if SyncOpKind.ACQUIRE in ops0 and SyncOpKind.RELEASE in ops0:
            assert ops0.index(SyncOpKind.RELEASE) \
                < ops0.index(SyncOpKind.ACQUIRE)


class TestHomeRangeClipping:
    def test_remote_only_reads_create_no_phantom_residency(self, engine,
                                                           buffers):
        a, _ = buffers
        # K0 fixes first-touch homes: each chiplet owns its slice.
        launch(engine, 0, [ArgAccess(a, AccessMode.RW)])
        # K1: every chiplet reads the whole structure (remote reads are
        # forwarded to homes; nothing new becomes locally resident).
        launch(engine, 1, [shared(a, AccessMode.R)])
        entry = engine.table.entries[0]
        for chiplet in range(N):
            lo, hi = entry.ranges[chiplet]
            expected = a.byte_range_of_slice(chiplet, N)
            assert (lo, hi) == expected
        # K2: chiplet 2 writes only slice 0's bytes -> only chiplet 0 can
        # be stale; chiplets 1 and 3 keep their slices untouched.
        s0 = a.byte_range_of_slice(0, N)
        packet = KernelPacket(
            kernel_id=2, name="k2", stream_id=0, num_wgs=16,
            args=(ArgAccess(a, AccessMode.RW,
                            ranges=(RangeAnnotation(s0[0], s0[1], 0),)),))
        engine.process_launch(packet, placement([2]))
        entry = engine.table.entries[0]
        assert entry.states[0] == ChipletState.STALE
        # K1's shared read released every dirty holder (remote readers
        # need the data), so 1 and 3 hold clean copies — and, crucially,
        # they are NOT marked stale by the slice-0 write thanks to the
        # home-range clipping (their tracked ranges are their own slices).
        assert entry.states[1] == ChipletState.VALID
        assert entry.states[3] == ChipletState.VALID


class TestOverflow:
    def test_overflow_issues_conservative_ops(self, buffers):
        engine = ElisionEngine(ChipletCoherenceTable(
            num_chiplets=N, structs_per_kernel=2, kernel_window=1))
        space = AddressSpace()
        bufs = [space.alloc(f"b{i}", 64 * 4096 * (i + 1)) for i in range(4)]
        launch(engine, 0, [ArgAccess(bufs[0], AccessMode.RW)])
        launch(engine, 1, [ArgAccess(bufs[1], AccessMode.RW)])
        # Third distinct structure overflows the 2-entry table; the victim
        # (bufs[0], Dirty everywhere) must be conservatively synchronized.
        outcome = launch(engine, 2, [ArgAccess(bufs[2], AccessMode.RW)])
        released = [c for k, c in kinds(outcome.ops)
                    if k is SyncOpKind.RELEASE]
        acquired = [c for k, c in kinds(outcome.ops)
                    if k is SyncOpKind.ACQUIRE]
        assert sorted(released) == list(range(N))
        assert sorted(acquired) == list(range(N))
        assert engine.table.overflow_evictions == 1


class TestCoarseningIntegration:
    def test_more_than_eight_structures_coarsened(self, engine):
        space = AddressSpace()
        bufs = [space.alloc(f"b{i}", 4096) for i in range(12)]
        outcome = launch(engine, 0,
                         [ArgAccess(b, AccessMode.RW) for b in bufs])
        assert len(engine.table) <= engine.table.structs_per_kernel


class TestElisionCounters:
    def test_counts_reflect_baseline_comparison(self, engine, buffers):
        a, _ = buffers
        outcome = launch(engine, 0, [ArgAccess(a, AccessMode.RW)])
        assert outcome.acquires_issued == 0
        assert outcome.releases_issued == 0
        assert outcome.acquires_elided == N
        assert outcome.releases_elided == N

    def test_table_checks_once_per_kernel(self, engine, buffers):
        a, _ = buffers
        launch(engine, 0, [ArgAccess(a, AccessMode.RW)])
        outcome = launch(engine, 1, [ArgAccess(a, AccessMode.RW)])
        assert outcome.table_checks == 1
