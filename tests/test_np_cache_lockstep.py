"""Lockstep property tests: numpy cache core vs the dict reference.

The numpy core (:class:`repro.memory.npcache.NumpyCacheCore`) must be
*bit-identical* in behavior to the dict-backed
:class:`~repro.memory.cache.SetAssocCache` it subclasses — same hits,
same evictions in the same order, same dirty sets, same LRU victim
order, same stats, same canonical ``memo_state()``. These tests drive
random operation sequences through both cores in lockstep (hypothesis
shrinks any divergence to a minimal counterexample) and also pin the
unified bulk-op API surface: ``bulk_*`` returns :class:`BulkResult`
without warning, the five legacy names still work but warn.
"""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import (
    BulkResult,
    Eviction,
    SetAssocCache,
    WritePolicy,
)
from repro.memory.npcache import (
    NUMPY_AVAILABLE,
    NumpyCacheCore,
    make_cache_core,
)

pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE,
                                reason="numpy not installed")

LINE_SPACE = 96  # larger than every generated capacity, to force spills

shapes = st.tuples(st.integers(min_value=1, max_value=32),   # capacity lines
                   st.integers(min_value=1, max_value=8))    # assoc
policies = st.sampled_from(list(WritePolicy))
lines = st.integers(min_value=0, max_value=LINE_SPACE - 1)
spans = st.tuples(st.integers(min_value=0, max_value=LINE_SPACE - 1),
                  st.integers(min_value=1, max_value=48))
load_store = st.sampled_from([(True, False), (False, True), (True, True)])

serve_events = st.lists(
    st.one_of(
        st.tuples(lines, st.none(), st.just(False)),
        st.tuples(lines, lines, st.booleans()),
    ),
    min_size=1, max_size=24)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("access"), lines, st.booleans()),
        st.tuples(st.just("fill"), lines, st.booleans()),
        st.tuples(st.just("bulk_access"), spans, load_store),
        st.tuples(st.just("bulk_fill"),
                  st.lists(lines, min_size=1, max_size=40), st.booleans()),
        st.tuples(st.just("bulk_serve"), serve_events),
        st.tuples(st.just("bulk_flush"), st.one_of(st.none(), spans)),
        st.tuples(st.just("bulk_invalidate"), st.one_of(st.none(), spans)),
        st.tuples(st.just("flush_line"), lines),
        st.tuples(st.just("invalidate_line"), lines),
    ),
    min_size=0, max_size=30)


def make_pair(shape, policy=WritePolicy.WRITE_BACK):
    """One dict-backed reference and one numpy core, same geometry."""
    capacity, assoc = shape
    kwargs = dict(size_bytes=capacity * 64, assoc=assoc, policy=policy)
    return SetAssocCache(**kwargs), NumpyCacheCore(**kwargs)


def apply_op(cache, op):
    """Apply one generated operation; return its comparable outcome."""
    kind = op[0]
    if kind == "access":
        return cache.access(op[1], op[2])
    if kind == "fill":
        return cache.fill(op[1], dirty=op[2])
    if kind == "bulk_access":
        (start, count), (load, store) = op[1], op[2]
        return cache.bulk_access(start=start, count=count,
                                 load=load, store=store)
    if kind == "bulk_fill":
        return cache.bulk_fill(lines=list(op[1]), dirty=op[2])
    if kind == "bulk_serve":
        return cache.bulk_serve(events=list(op[1]))
    if kind == "bulk_flush":
        if op[1] is None:
            return cache.bulk_flush()
        return cache.bulk_flush(start=op[1][0], count=op[1][1])
    if kind == "bulk_invalidate":
        if op[1] is None:
            return cache.bulk_invalidate()
        return cache.bulk_invalidate(start=op[1][0], count=op[1][1])
    if kind == "flush_line":
        return cache.flush_line(op[1])
    if kind == "invalidate_line":
        return cache.invalidate_line(op[1])
    raise AssertionError(f"unknown op {kind!r}")


def assert_same_state(ref, got):
    """Full behavioral-state comparison of the two cores."""
    assert got.memo_state() == ref.memo_state()
    assert got.stats == ref.stats
    assert got.resident_lines == ref.resident_lines
    assert got.dirty_lines == ref.dirty_lines
    assert sorted(got.iter_lines()) == sorted(ref.iter_lines())


@given(shapes, policies, ops)
@settings(max_examples=120, deadline=None)
def test_lockstep_op_sequences(shape, policy, trace):
    """Every op returns the same result and leaves identical state."""
    ref, got = make_pair(shape, policy)
    for op in trace:
        expected = apply_op(ref, op)
        actual = apply_op(got, op)
        assert actual == expected, f"op {op}: {actual!r} != {expected!r}"
    assert_same_state(ref, got)


@given(shapes, ops, st.lists(lines, min_size=1, max_size=64), st.booleans())
@settings(max_examples=100, deadline=None)
def test_lockstep_eviction_victim_order(shape, warmup, fills, dirty):
    """After an arbitrary warmup, a bulk fill evicts the same victims in
    the same (LRU) order on both cores."""
    ref, got = make_pair(shape)
    for op in warmup:
        apply_op(ref, op)
        apply_op(got, op)
    expected = ref.bulk_fill(lines=list(fills), dirty=dirty)
    actual = got.bulk_fill(lines=list(fills), dirty=dirty)
    assert actual.evictions == expected.evictions
    assert_same_state(ref, got)


@given(shapes, ops)
@settings(max_examples=100, deadline=None)
def test_lockstep_flush_and_invalidate_walk_order(shape, trace):
    """Whole-cache flush and invalidate emit lines in the same order
    (creation order then LRU — behavioral state downstream consumers
    bit-compare)."""
    ref, got = make_pair(shape)
    for op in trace:
        apply_op(ref, op)
        apply_op(got, op)
    assert got.flush_dirty() == ref.flush_dirty()
    assert got.invalidate_all() == ref.invalidate_all()
    assert_same_state(ref, got)


@given(shapes, ops)
@settings(max_examples=80, deadline=None)
def test_numpy_snapshot_restore_roundtrip(shape, trace):
    """memo_restore(memo_snapshot()) is a perfect rewind on the numpy
    core: canonical state and digest both return to the captured point."""
    _, cache = make_pair(shape)
    for op in trace:
        apply_op(cache, op)
    snap = cache.memo_snapshot()
    state, digest = cache.memo_state(), cache.memo_digest()
    # Perturb: fills + a flush are enough to move every matrix.
    for line in range(0, LINE_SPACE, 3):
        cache.fill(line, dirty=True)
    cache.flush_dirty()
    cache.memo_restore(snap)
    assert cache.memo_state() == state
    assert cache.memo_digest() == digest


@given(shapes, ops)
@settings(max_examples=80, deadline=None)
def test_numpy_digest_is_behavioral(shape, trace):
    """Two numpy cores fed the same sequence digest identically, and the
    digest moves exactly when the canonical behavioral state does."""
    _, a = make_pair(shape)
    _, b = make_pair(shape)
    for op in trace:
        apply_op(a, op)
        apply_op(b, op)
    assert a.memo_digest() == b.memo_digest()
    before_state, before_digest = a.memo_state(), a.memo_digest()
    a.fill(0, dirty=True)
    if a.memo_state() != before_state:
        assert a.memo_digest() != before_digest
    else:
        assert a.memo_digest() == before_digest


def test_legacy_shims_warn_and_preserve_shapes():
    """The five pre-BulkResult names still work — with a warning — and
    return the historical shapes, equal to what the unified API reports
    on a twin cache driven through the same sequence; ``bulk_*`` itself
    never warns."""
    legacy, _ = make_pair((16, 4))
    twin, _ = make_pair((16, 4))

    with pytest.warns(DeprecationWarning, match="access_run"):
        run = legacy.access_run(0, 8, True, True)
    ref = twin.bulk_access(start=0, count=8, load=True, store=True)
    assert (run.hits, run.misses, run.events, run.uniform_miss) == (
        ref.hits, ref.misses, ref.events, ref.uniform_miss)

    with pytest.warns(DeprecationWarning, match="fill_many"):
        evs = legacy.fill_many([30, 31, 32], True)
    assert evs == twin.bulk_fill(lines=[30, 31, 32], dirty=True).evictions

    with pytest.warns(DeprecationWarning, match="serve_miss_seq"):
        missed, access_devs, fill_devs, writebacks = (
            legacy.serve_miss_seq([(5, None, False), (40, 41, True)]))
    ref = twin.bulk_serve(events=[(5, None, False), (40, 41, True)])
    assert missed == ref.lines
    assert access_devs == [e.line for e in ref.evictions]
    assert fill_devs == [e.line for e in ref.fill_evictions]
    assert writebacks == ref.writebacks

    with pytest.warns(DeprecationWarning, match="flush_run"):
        flushed = legacy.flush_run(0, 48)
    assert flushed == twin.bulk_flush(start=0, count=48).lines

    with pytest.warns(DeprecationWarning, match="invalidate_run"):
        dropped, dirty = legacy.invalidate_run(0, 64)
    ref = twin.bulk_invalidate(start=0, count=64)
    assert (dropped, dirty) == (ref.dropped, ref.lines)
    assert legacy.memo_state() == twin.memo_state()

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        res = twin.bulk_access(start=0, count=8, load=True, store=True)
        assert isinstance(res, BulkResult)
        twin.bulk_fill(lines=[1, 2, 3], dirty=True)
        twin.bulk_serve(events=[(5, None, False)])
        assert twin.bulk_flush().writebacks > 0
        assert twin.bulk_invalidate().dropped > 0


def test_bulk_range_argument_validation():
    _, cache = make_pair((8, 2))
    with pytest.raises(ValueError):
        cache.bulk_flush(count=4)
    with pytest.raises(ValueError):
        cache.bulk_flush(start=0)
    with pytest.raises(ValueError):
        cache.bulk_invalidate(count=4)
    with pytest.raises(ValueError):
        cache.bulk_invalidate(start=0)


def test_make_cache_core_backends():
    dict_core = make_cache_core("dict", size_bytes=1024, assoc=2,
                                line_size=64, policy=WritePolicy.WRITE_BACK,
                                name="t")
    np_core = make_cache_core("numpy", size_bytes=1024, assoc=2,
                              line_size=64, policy=WritePolicy.WRITE_BACK,
                              name="t")
    assert type(dict_core) is SetAssocCache
    assert isinstance(np_core, NumpyCacheCore)
    with pytest.raises(ValueError):
        make_cache_core("redis", size_bytes=1024, assoc=2, line_size=64,
                        policy=WritePolicy.WRITE_BACK, name="t")


def test_eviction_dataclass_shape():
    """BulkResult.evictions carries (line, dirty) evictions — the shape
    both cores and the device attribute traffic from."""
    _, cache = make_pair((4, 1))
    res = cache.bulk_fill(lines=[0, 1, 2], dirty=True)  # 3 of 4 sets
    assert res.evictions == []
    res = cache.bulk_fill(lines=[4], dirty=False)  # set 0 again: evicts 0
    assert res.evictions == [Eviction(line=0, dirty=True)]
