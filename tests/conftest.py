"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.memory.address import AddressSpace
from repro.workloads.base import AccessKind, Kernel, KernelArg, PatternKind, Workload

#: Small scale used throughout the tests (fast, preserves ratios).
TEST_SCALE = 1 / 64


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep every test's result cache in a private tmp dir — tests must
    never read or populate the user's ``~/.cache`` sweep cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def config() -> GPUConfig:
    """A 4-chiplet test-scale configuration."""
    return GPUConfig(num_chiplets=4, scale=TEST_SCALE)


@pytest.fixture
def config2() -> GPUConfig:
    """A 2-chiplet test-scale configuration."""
    return GPUConfig(num_chiplets=2, scale=TEST_SCALE)


@pytest.fixture
def space() -> AddressSpace:
    """A fresh address space."""
    return AddressSpace()


def make_kernel(name, args, **kwargs):
    """Build a kernel with test-friendly defaults."""
    kwargs.setdefault("num_wgs", 64)
    kwargs.setdefault("compute_intensity", 2.0)
    return Kernel(name=name, args=tuple(args), **kwargs)


def simple_workload(space, kernels, name="test-app", reuse_class="high"):
    """Wrap kernels into a workload."""
    return Workload(name=name, space=space, kernels=list(kernels),
                    reuse_class=reuse_class)


def rw(buffer, **kwargs):
    """A read/write argument."""
    return KernelArg(buffer=buffer, mode=AccessMode.RW, **kwargs)


def ro(buffer, **kwargs):
    """A read-only argument."""
    return KernelArg(buffer=buffer, mode=AccessMode.R, **kwargs)


def store(buffer, **kwargs):
    """A streaming-store argument."""
    return KernelArg(buffer=buffer, mode=AccessMode.RW,
                     kind=AccessKind.STORE, **kwargs)
