"""Simulation-as-a-service tests: the HTTP job API end to end.

Covers the PR 9 acceptance criteria:

* two concurrent clients submitting the same sweep produce exactly one
  computation, pinned via the shared cache's ``deduped`` counter;
* a served result is byte-identical JSON to a direct
  :func:`repro.api.sweep` run of the same spec;
* the SSE stream's kernel timeline is ordering-identical to an
  :class:`~repro.obs.EventTracer` recording of the same cell;
* admission control sheds over-quota/overload submissions with ``429``
  and a ``Retry-After`` header;
* cancelling a running job abandons its shared-cache claim.

Most tests drive :meth:`ReproServer.dispatch` in-process (no sockets:
fast and deterministic); ``TestHttpFace`` additionally exercises the
real asyncio socket server, including a raw SSE stream read.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine.cache import SharedResultCache
from repro.errors import ConfigError
from repro.server import ReproServer
from repro.server.admission import AdmissionController
from repro.server.http import Request
from repro.server.queue import Job, JobQueue
from repro.server.schemas import (
    MAX_CELLS_PER_JOB,
    parse_simulate,
    parse_sweep,
)
from tests.conftest import TEST_SCALE

#: One cheap cell every test can share.
SIMULATE_BODY = {"workload": "square", "chiplets": 2, "scale": TEST_SCALE}


def run_async(coro):
    return asyncio.run(coro)


async def call(srv: ReproServer, method: str, path: str, body=None,
               headers=None):
    """Drive one request through the app's dispatcher in-process."""
    data = b"" if body is None else json.dumps(body).encode()
    response = await srv.dispatch(Request(
        method=method, path=path, headers=headers or {}, body=data))
    parsed = json.loads(response.body) if getattr(response, "body", b"") \
        else None
    return response.status, parsed, response.headers


async def wait_terminal(srv: ReproServer, job_id: str, timeout=60.0):
    job = srv.jobs[job_id]
    for _ in range(int(timeout / 0.02)):
        if job.terminal:
            return job
        await asyncio.sleep(0.02)
    raise AssertionError(f"job {job_id} still {job.state} after {timeout}s")


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


class TestSchemas:
    def test_simulate_defaults(self):
        sub = parse_simulate(dict(SIMULATE_BODY))
        assert sub.cells == 1
        assert sub.client == "anonymous"
        assert sub.priority == 0
        job = sub.spec.expand()[0]
        assert job.protocol == "cpelide"
        assert job.config.num_chiplets == 2

    def test_simulate_requires_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            parse_simulate({"protocol": "cpelide"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            parse_simulate({**SIMULATE_BODY, "wokload": "square"})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            parse_simulate({"workload": "not-a-workload"})

    def test_config_overrides_validated(self):
        sub = parse_simulate({**SIMULATE_BODY,
                              "config": {"l2_assoc": 32}})
        assert sub.spec.expand()[0].config.l2_assoc == 32
        with pytest.raises(ConfigError, match="unknown GPUConfig"):
            parse_simulate({**SIMULATE_BODY, "config": {"nope": 1}})
        with pytest.raises(ConfigError, match="do not repeat"):
            parse_simulate({**SIMULATE_BODY,
                            "config": {"num_chiplets": 8}})

    def test_priority_bounds(self):
        with pytest.raises(ConfigError, match="priority"):
            parse_simulate({**SIMULATE_BODY, "priority": 1000})

    def test_sweep_grid_and_cell_cap(self):
        sub = parse_sweep({"workloads": ["square", "bfs"],
                           "protocols": ["baseline", "cpelide"],
                           "scale": TEST_SCALE})
        assert sub.cells == 4
        with pytest.raises(ConfigError, match=str(MAX_CELLS_PER_JOB)):
            parse_sweep({"chiplet_counts": list(range(1, 33)),
                         "scale": TEST_SCALE})

    def test_body_must_be_object(self):
        with pytest.raises(ConfigError, match="JSON object"):
            parse_sweep([1, 2, 3])


# ---------------------------------------------------------------------------
# Admission + queue units
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_client_quota(self):
        adm = AdmissionController(client_quota=2)
        assert adm.admit("a").admitted
        adm.on_enqueue("a")
        assert adm.admit("a").admitted
        adm.on_enqueue("a")
        decision = adm.admit("a")
        assert not decision.admitted
        assert decision.status == 429
        assert decision.retry_after >= 1.0
        assert adm.admit("b").admitted  # other clients unaffected

    def test_queue_depth_shedding(self):
        adm = AdmissionController(max_queue_depth=1)
        adm.on_enqueue("a")
        decision = adm.admit("b")
        assert not decision.admitted and decision.status == 429
        assert "queue full" in decision.reason

    def test_lifecycle_accounting_and_ema(self):
        adm = AdmissionController(max_inflight=1)
        adm.on_enqueue("a")
        assert not adm.admit("b").admitted or True  # depth 64 default
        adm.on_start("a")
        assert adm.queued == 0 and adm.running == 1
        assert not adm.has_slot()
        before = adm.retry_after()
        adm.on_finish("a", seconds=100.0)
        assert adm.running == 0 and adm.finished == 1
        assert adm.active_for("a") == 0
        adm.on_enqueue("a")
        assert adm.retry_after() > before  # EMA absorbed the slow job

    def test_cancel_queued_releases_quota(self):
        adm = AdmissionController(client_quota=1)
        adm.on_enqueue("a")
        assert not adm.admit("a").admitted
        adm.on_cancel_queued("a")
        assert adm.admit("a").admitted


class TestJobQueue:
    def _job(self, priority=0, client="c"):
        return Job(submission=parse_simulate(
            {**SIMULATE_BODY, "priority": priority, "client": client}))

    def test_priority_then_fifo(self):
        queue = JobQueue()
        low = self._job(priority=-5)
        first = self._job(priority=3)
        second = self._job(priority=3)
        queue.push(low)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second
        assert queue.pop() is low
        assert queue.pop() is None

    def test_cancelled_jobs_skipped(self):
        queue = JobQueue()
        job = self._job()
        queue.push(job)
        job.cancel.cancel("test")
        assert len(queue) == 0
        assert queue.pop() is None


# ---------------------------------------------------------------------------
# End-to-end through the dispatcher
# ---------------------------------------------------------------------------


class TestServerEndToEnd:
    def test_submit_poll_result_roundtrip(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            await srv.start_background()
            try:
                status, body, _ = await call(srv, "POST", "/v1/simulate",
                                             SIMULATE_BODY)
                assert status == 202
                assert body["state"] == "queued"
                job_id = body["id"]
                # Result is a 409 until the job lands.
                status, err, _ = await call(
                    srv, "GET", f"/v1/jobs/{job_id}/result")
                if status != 200:  # may already be done on fast machines
                    assert status == 409
                job = await wait_terminal(srv, job_id)
                assert job.state == "done"
                status, result, _ = await call(
                    srv, "GET", f"/v1/jobs/{job_id}/result")
                assert status == 200
                assert result["report"]["total_jobs"] == 1
                assert len(result["results"]) == 1
                status, shown, _ = await call(srv, "GET",
                                              f"/v1/jobs/{job_id}")
                assert shown["state"] == "done"
                assert shown["progress"]["cells_done"] == 1
                assert shown["progress"]["kernels_done"] > 0
            finally:
                await srv.stop_background()

        run_async(scenario())

    def test_concurrent_overlapping_sweeps_compute_once(self, tmp_path):
        """Acceptance: two clients, same sweep, exactly one computation
        — the second is served from the first's in-flight claim."""
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"), max_inflight=2)
            await srv.start_background()
            try:
                body = {"workloads": ["square"],
                        "protocols": ["baseline", "cpelide"],
                        "scale": TEST_SCALE}
                status_a, job_a, _ = await call(
                    srv, "POST", "/v1/sweep", {**body, "client": "alice"})
                status_b, job_b, _ = await call(
                    srv, "POST", "/v1/sweep", {**body, "client": "bob"})
                assert status_a == status_b == 202
                a = await wait_terminal(srv, job_a["id"])
                b = await wait_terminal(srv, job_b["id"])
                assert a.state == b.state == "done"
                merged = {key: a.cache_stats[key] + b.cache_stats[key]
                          for key in a.cache_stats}
                # Exactly one computation per cell across BOTH jobs...
                assert merged["stores"] == 2
                # ...every other serving was an in-flight dedupe or a
                # completed-entry hit, and at least one cell was
                # demonstrably served from the other client's in-flight
                # computation (CacheStats.deduped).
                assert merged["deduped"] + merged["hits"] == 2
                assert merged["deduped"] >= 1
                assert (a.result["results"] == b.result["results"])
            finally:
                await srv.stop_background()

        run_async(scenario())

    def test_served_result_byte_identical_to_direct_sweep(self, tmp_path):
        from repro.api import sweep

        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            await srv.start_background()
            try:
                body = {"workloads": ["square"],
                        "protocols": ["baseline", "cpelide"],
                        "chiplet_counts": [2], "scale": TEST_SCALE}
                _, submitted, _ = await call(srv, "POST", "/v1/sweep",
                                             body)
                await wait_terminal(srv, submitted["id"])
                _, result, _ = await call(
                    srv, "GET", f"/v1/jobs/{submitted['id']}/result")
                return result

            finally:
                await srv.stop_background()

        served = run_async(scenario())
        direct = sweep(workloads=("square",),
                       protocols=("baseline", "cpelide"),
                       chiplet_counts=(2,), scale=TEST_SCALE,
                       jobs=1, cache=False)
        assert (json.dumps(served["results"], sort_keys=True)
                == json.dumps(direct.to_dicts(), sort_keys=True))

    def test_over_quota_sheds_429_with_retry_after(self, tmp_path):
        async def scenario():
            # No scheduler: jobs stay queued, so the quota fills.
            srv = ReproServer(cache=str(tmp_path / "c"), client_quota=2)
            for _ in range(2):
                status, _, _ = await call(srv, "POST", "/v1/simulate",
                                          {**SIMULATE_BODY,
                                           "client": "greedy"})
                assert status == 202
            status, body, headers = await call(
                srv, "POST", "/v1/simulate",
                {**SIMULATE_BODY, "client": "greedy"})
            assert status == 429
            assert "quota" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            # Another client still gets in.
            status, _, _ = await call(srv, "POST", "/v1/simulate",
                                      {**SIMULATE_BODY,
                                       "client": "polite"})
            assert status == 202

        run_async(scenario())

    def test_queue_depth_sheds_429(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"),
                              max_queue_depth=1)
            status, _, _ = await call(srv, "POST", "/v1/simulate",
                                      {**SIMULATE_BODY, "client": "a"})
            assert status == 202
            status, body, headers = await call(
                srv, "POST", "/v1/simulate",
                {**SIMULATE_BODY, "client": "b"})
            assert status == 429
            assert "queue full" in body["error"]
            assert "Retry-After" in headers

        run_async(scenario())

    def test_cancel_running_job_releases_claim(self, tmp_path):
        async def scenario():
            root = str(tmp_path / "c")
            srv = ReproServer(cache=root, max_inflight=1)
            await srv.start_background()
            try:
                # Several cells so the job is reliably still running
                # when the cancel lands.
                body = {"workloads": ["square", "bfs"],
                        "protocols": ["baseline", "cpelide"],
                        "scale": TEST_SCALE}
                _, submitted, _ = await call(srv, "POST", "/v1/sweep",
                                             body)
                job = srv.jobs[submitted["id"]]
                for _ in range(500):
                    if job.state == "running":
                        break
                    await asyncio.sleep(0.01)
                assert job.state == "running"
                status, _, _ = await call(
                    srv, "POST", f"/v1/jobs/{job.id}/cancel")
                assert status in (200, 202)
                finished = await wait_terminal(srv, job.id)
                # The job may have finished its last cell before the
                # token was observed; normally it is cancelled.
                assert finished.state in ("cancelled", "done")
                # Either way: no claim survives — the cell either
                # published or its claim was abandoned on unwind.
                assert SharedResultCache(root=root).claimed_keys() == []
                status, _, _ = await call(
                    srv, "GET", f"/v1/jobs/{job.id}/result")
                assert status == (200 if finished.state == "done"
                                  else 409)
            finally:
                await srv.stop_background()

        run_async(scenario())

    def test_cancel_queued_job_before_start(self, tmp_path):
        async def scenario():
            # No scheduler running: the job can never start.
            srv = ReproServer(cache=str(tmp_path / "c"))
            _, submitted, _ = await call(srv, "POST", "/v1/simulate",
                                         SIMULATE_BODY)
            job_id = submitted["id"]
            status, body, _ = await call(
                srv, "POST", f"/v1/jobs/{job_id}/cancel")
            assert status == 200
            assert body["state"] == "cancelled"
            assert srv.admission.queued == 0
            # Cancel is idempotent.
            status, body, _ = await call(
                srv, "POST", f"/v1/jobs/{job_id}/cancel")
            assert status == 200 and body["state"] == "cancelled"

        run_async(scenario())

    def test_priority_orders_execution(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"), max_inflight=1)
            # Enqueue before the scheduler exists so order is pinned.
            _, low, _ = await call(srv, "POST", "/v1/simulate",
                                   {**SIMULATE_BODY, "priority": -1})
            _, high, _ = await call(
                srv, "POST", "/v1/simulate",
                {**SIMULATE_BODY, "chiplets": 4, "priority": 9})
            await srv.start_background()
            try:
                low_job = await wait_terminal(srv, low["id"])
                high_job = await wait_terminal(srv, high["id"])
                assert high_job.started_at <= low_job.started_at
            finally:
                await srv.stop_background()

        run_async(scenario())

    def test_unknown_job_and_bad_requests(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            status, _, _ = await call(srv, "GET", "/v1/jobs/deadbeef")
            assert status == 404
            status, _, _ = await call(srv, "GET", "/nope")
            assert status == 404
            status, _, _ = await call(srv, "GET", "/v1/simulate")
            assert status == 405
            status, body, _ = await call(srv, "POST", "/v1/simulate",
                                         {"workload": "nope"})
            assert status == 400
            assert "workload" in body["error"]
            status, body, _ = await call(srv, "GET", "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body, _ = await call(srv, "GET", "/metrics")
            assert status == 200
            assert body["admission"]["max_inflight"] == 2

        run_async(scenario())

    def test_client_header_names_quota_bucket(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"), client_quota=1)
            status, body, _ = await call(
                srv, "POST", "/v1/simulate", SIMULATE_BODY,
                headers={"x-client-id": "carol"})
            assert status == 202 and body["client"] == "carol"
            status, _, _ = await call(
                srv, "POST", "/v1/simulate", SIMULATE_BODY,
                headers={"x-client-id": "carol"})
            assert status == 429

        run_async(scenario())


# ---------------------------------------------------------------------------
# The real socket server + SSE
# ---------------------------------------------------------------------------


async def raw_request(port: int, method: str, path: str, body=None):
    """One HTTP/1.1 request over a real socket; returns (status, bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n\r\n")
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    return int(head_part.split(b" ")[1]), body_part


def parse_sse(stream: bytes):
    """SSE frames as (event, data-dict) pairs, comments skipped."""
    frames = []
    for block in stream.decode().split("\n\n"):
        kind = data = None
        for line in block.splitlines():
            if line.startswith("event: "):
                kind = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        if kind is not None:
            frames.append((kind, data))
    return frames


class TestHttpFace:
    def test_socket_roundtrip_and_sse_kernel_ordering(self, tmp_path):
        """The streamed kernel timeline must match an EventTracer
        recording of the same cell, event for event, in order."""
        from repro.api import simulate
        from repro.obs import EventTracer

        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            server = await srv.start(port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                status, body = await raw_request(port, "POST",
                                                 "/v1/simulate",
                                                 SIMULATE_BODY)
                assert status == 202
                job_id = json.loads(body)["id"]
                await wait_terminal(srv, job_id)
                status, stream = await raw_request(
                    port, "GET", f"/v1/jobs/{job_id}/events")
                assert status == 200
                return parse_sse(stream)
            finally:
                await srv.stop()

        frames = run_async(scenario())
        assert frames[-1][0] == "done"
        assert frames[-1][1]["state"] == "done"
        streamed = [(d["name"], d["index"]) for kind, d in frames
                    if kind == "kernel" and d["phase"] == "complete"]
        assert streamed, "no kernel events streamed"

        tracer = EventTracer()
        simulate("square", "cpelide",
                 config=__import__("repro.gpu.config",
                                   fromlist=["GPUConfig"]).GPUConfig(
                     num_chiplets=2, scale=TEST_SCALE),
                 tracer=tracer)
        recorded = [(e.args["name"], e.args["index"]) for e in tracer.events
                    if e.kind == "kernel" and e.phase == "complete"]
        assert streamed == recorded

    def test_sse_ids_are_monotone(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            server = await srv.start(port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                _, body = await raw_request(port, "POST", "/v1/simulate",
                                            SIMULATE_BODY)
                job_id = json.loads(body)["id"]
                await wait_terminal(srv, job_id)
                _, stream = await raw_request(
                    port, "GET", f"/v1/jobs/{job_id}/events")
                ids = [int(line[len("id: "):])
                       for line in stream.decode().splitlines()
                       if line.startswith("id: ")]
                assert ids == sorted(ids) == list(range(len(ids)))
            finally:
                await srv.stop()

        run_async(scenario())

    def test_malformed_requests_rejected(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            server = await srv.start(port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"POST /v1/simulate HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 9\r\n\r\nnot json!")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b" 400 " in raw.split(b"\r\n")[0]

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"BOGUS-LINE\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b" 400 " in raw.split(b"\r\n")[0]
            finally:
                await srv.stop()

        run_async(scenario())


# ---------------------------------------------------------------------------
# ASGI adapter (the optional-uvicorn face, driven directly)
# ---------------------------------------------------------------------------


class TestAsgiAdapter:
    def test_http_scope_roundtrip(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            sent = []

            async def receive():
                return {"type": "http.request",
                        "body": json.dumps(SIMULATE_BODY).encode(),
                        "more_body": False}

            async def send(message):
                sent.append(message)

            await srv.asgi({"type": "http", "method": "POST",
                            "path": "/v1/simulate", "query_string": b"",
                            "headers": []}, receive, send)
            start = sent[0]
            assert start["type"] == "http.response.start"
            assert start["status"] == 202
            body = json.loads(sent[1]["body"])
            assert body["state"] == "queued"

        run_async(scenario())

    def test_lifespan_starts_and_stops_scheduler(self, tmp_path):
        async def scenario():
            srv = ReproServer(cache=str(tmp_path / "c"))
            messages = iter([{"type": "lifespan.startup"},
                             {"type": "lifespan.shutdown"}])
            acks = []

            async def receive():
                return next(messages)

            async def send(message):
                acks.append(message["type"])

            await srv.asgi({"type": "lifespan"}, receive, send)
            assert acks == ["lifespan.startup.complete",
                            "lifespan.shutdown.complete"]
            assert srv._scheduler_task is None

        run_async(scenario())
