"""Unit tests for the HMG comparator."""

import pytest

from repro.coherence.hmg import LINES_PER_REGION, DirectoryEntry, HMGProtocol, L2Directory
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.memory.cache import WritePolicy

from tests.conftest import TEST_SCALE


def make(write_back=False, num_chiplets=4):
    config = GPUConfig(num_chiplets=num_chiplets, scale=TEST_SCALE)
    device = Device(config)
    return config, device, HMGProtocol(config, device, write_back=write_back)


class TestL2Directory:
    def test_region_of(self):
        assert L2Directory.region_of(0) == 0
        assert L2Directory.region_of(3) == 0
        assert L2Directory.region_of(4) == 1

    def test_lru_eviction(self):
        directory = L2Directory(num_entries=2)
        directory.get_or_insert(0)
        directory.get_or_insert(1)
        directory.get(0)                      # refresh region 0
        _, evicted = directory.get_or_insert(2)
        assert evicted is not None
        assert evicted[0] == 1
        assert directory.evictions == 1

    def test_drop(self):
        directory = L2Directory(num_entries=4)
        directory.get_or_insert(5)
        directory.drop(5)
        assert directory.get(5) is None
        assert len(directory) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            L2Directory(0)


class TestHMGSetup:
    def test_wt_policy_applied(self):
        _, device, protocol = make(write_back=False)
        assert protocol.l2_policy is WritePolicy.WRITE_THROUGH
        assert all(l2.policy is WritePolicy.WRITE_THROUGH
                   for l2 in device.l2s)

    def test_wb_variant(self):
        _, device, protocol = make(write_back=True)
        assert protocol.name == "hmg-wb"
        assert all(l2.policy is WritePolicy.WRITE_BACK for l2 in device.l2s)

    def test_no_boundary_ops(self):
        from repro.cp.packets import KernelPacket
        from repro.cp.wg_scheduler import Placement
        _, _, protocol = make()
        packet = KernelPacket(kernel_id=0, name="k", stream_id=0, num_wgs=4,
                              args=())
        placement = Placement((0, 1), (2, 2))
        assert protocol.on_kernel_launch(packet, placement) == []
        assert protocol.on_kernel_complete(packet, placement) == []

    def test_directory_scaled(self):
        config, _, protocol = make()
        expected = max(16, int(HMGProtocol.PAPER_DIR_ENTRIES * config.scale))
        assert protocol.directories[0].num_entries == expected
        assert len(protocol.directories) == config.num_chiplets


class TestHMGLoads:
    def test_remote_line_cached_locally(self):
        _, device, protocol = make()
        protocol.access(0, 100, False)        # home 0
        protocol.access(2, 100, False)        # remote fetch by 2
        assert device.l2s[2].lookup(100)      # cached at requester
        assert device.counts[2].l2_remote_hits == 1

    def test_local_hit_after_remote_caching(self):
        _, device, protocol = make()
        protocol.access(0, 100, False)
        protocol.access(2, 100, False)
        protocol.access(2, 100, False)
        assert device.counts[2].l2_local_hits == 1

    def test_sharer_registered(self):
        _, _, protocol = make()
        protocol.access(0, 100, False)
        protocol.access(2, 100, False)
        entry = protocol.directories[0].get(L2Directory.region_of(100))
        assert entry is not None
        assert 2 in entry.sharers

    def test_remote_miss_fills_home_node(self):
        _, device, protocol = make()
        device.home_map.home_of_line(100, 0)   # home 0, nothing resident
        protocol.access(2, 100, False)
        assert device.l2s[0].lookup(100)       # home-node caching
        assert device.counts[2].l2_remote_misses == 1


class TestHMGStores:
    def test_wt_store_goes_through_to_memory(self):
        _, device, protocol = make()
        protocol.access(1, 50, True)
        assert device.counts[1].l2_writethroughs == 1
        assert device.counts[1].dram_writes == 1
        assert not device.l2s[1].is_dirty(50)

    def test_store_invalidates_other_sharers(self):
        _, device, protocol = make()
        protocol.access(0, 100, False)   # home 0
        protocol.access(2, 100, False)   # sharer 2 caches it
        assert device.l2s[2].lookup(100)
        protocol.access(0, 100, True)    # home writes
        assert not device.l2s[2].lookup(100)
        sync = protocol.drain_sync_counts()
        assert sync.dir_invalidations >= 1

    def test_store_invalidation_stalls_writer(self):
        _, device, protocol = make()
        protocol.access(0, 100, False)
        protocol.access(2, 100, False)
        protocol.access(0, 100, True)
        assert device.counts[0].coherence_stalls >= 1

    def test_remote_store_keeps_copies_home_and_sender(self):
        """Sec. IV-C: HMG retains a valid copy in home and sender L2s."""
        _, device, protocol = make()
        protocol.access(0, 100, False)   # home 0
        protocol.access(2, 100, True)    # remote store by 2
        assert device.l2s[2].lookup(100)
        assert device.l2s[0].lookup(100)


class TestDirectoryEvictions:
    def test_eviction_invalidates_sharers_four_lines(self):
        config, device, protocol = make()
        # Shrink the directory to force evictions deterministically.
        protocol.directories[0] = L2Directory(num_entries=1)
        protocol.access(0, 0, False)          # home 0 for region 0
        protocol.access(0, 4, False)          # home 0 for region 1
        protocol.access(2, 0, False)          # sharer of region 0
        protocol.access(2, 1, False)          # second line, same region
        assert device.l2s[2].lookup(0) and device.l2s[2].lookup(1)
        protocol.access(2, 4, False)          # region 1 evicts region 0
        # All of region 0's lines vanish from the sharer.
        assert not device.l2s[2].lookup(0)
        assert not device.l2s[2].lookup(1)
        sync = protocol.drain_sync_counts()
        assert sync.dir_evictions >= 1
        assert sync.dir_invalidations >= 1


class TestWriteBackVariant:
    def test_store_stays_dirty_locally(self):
        _, device, protocol = make(write_back=True)
        protocol.access(1, 50, True)
        assert device.l2s[1].is_dirty(50)
        assert device.counts[1].dram_writes == 0

    def test_owner_tracked(self):
        _, _, protocol = make(write_back=True)
        protocol.access(0, 100, False)   # home 0
        protocol.access(2, 100, True)    # remote write -> owner 2
        entry = protocol.directories[0].get(L2Directory.region_of(100))
        assert entry.owner == 2

    def test_read_pulls_owner_data(self):
        _, device, protocol = make(write_back=True)
        protocol.access(0, 100, False)
        protocol.access(2, 100, True)    # dirty at 2
        device.begin_kernel()
        protocol.access(3, 100, False)   # reader must get 2's data
        assert not device.l2s[2].is_dirty(100)  # flushed by the pull
        assert device.traffic.remote > 0
