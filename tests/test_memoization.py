"""Unit tests for the memoization layer's building blocks.

The end-to-end referee (memo path bit-identical to the run path) lives
in tests/test_batched_equivalence.py; these tests pin the component
contracts it rests on: digest stability, snapshot/restore round trips,
counter-delta replay, the home-map journal, memo-key invalidation, the
store's LRU bound, and run-trace interning.
"""

from __future__ import annotations

import pytest

from repro.coherence.cpelide import CPElideProtocol
from repro.coherence.hmg import HMGProtocol
from repro.cp.wg_scheduler import WGScheduler
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.gpu.memo import (
    MemoEntry,
    MemoStore,
    clear_memo_stores,
    kernel_is_bypassed,
    store_for,
)
from repro.gpu.sim import Simulator
from repro.memory.cache import SetAssocCache
from repro.workloads.base import (
    clear_trace_cache,
    interned_runs_for_arg,
    prewarm_workload_traces,
    runs_for_arg,
)
from repro.workloads.suite import build_workload

SCALE = 1 / 64


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_memo_stores()
    clear_trace_cache()
    yield
    clear_memo_stores()
    clear_trace_cache()


def _config(**kw) -> GPUConfig:
    kw.setdefault("num_chiplets", 4)
    kw.setdefault("scale", SCALE)
    return GPUConfig(**kw)


# ---------------------------------------------------------------------------
# Cache digest / snapshot / stats delta


def _touched_cache() -> SetAssocCache:
    cache = SetAssocCache(size_bytes=64 * 64, assoc=4, name="L2")
    cache.bulk_access(start=0, count=100, load=True, store=True)
    cache.bulk_access(start=50, count=30, load=True, store=False)
    return cache


def test_cache_digest_is_stable_and_state_sensitive():
    a = _touched_cache()
    b = _touched_cache()
    # Equal states digest equal, across instances and repeated calls.
    assert a.memo_digest() == b.memo_digest() == a.memo_digest()
    b.access(5000, is_write=True)
    assert a.memo_digest() != b.memo_digest()


def test_cache_snapshot_restore_round_trip():
    cache = _touched_cache()
    digest = cache.memo_digest()
    state = cache.memo_state()
    snapshot = cache.memo_snapshot()
    cache.bulk_access(start=200, count=150, load=True, store=True)
    cache.invalidate_all()
    assert cache.memo_digest() != digest
    cache.memo_restore(snapshot)
    assert cache.memo_digest() == digest
    assert cache.memo_state() == state
    # The restored cache must stay usable and the shared snapshot
    # untouched by further traffic.
    cache.bulk_access(start=0, count=10, load=True, store=False)
    cache.memo_restore(snapshot)
    assert cache.memo_digest() == digest


def test_cache_stats_delta_round_trip():
    cache = _touched_cache()
    before = cache.stats.counter_tuple()
    cache.bulk_access(start=300, count=80, load=True, store=True)
    delta = cache.stats.delta_since(before)
    assert any(delta)
    fresh = _touched_cache()
    fresh.stats.apply_delta(delta)
    assert fresh.stats.counter_tuple() == cache.stats.counter_tuple()


# ---------------------------------------------------------------------------
# Protocol state round trips (CPElide table, HMG directories)


def _launch(protocol, workload, kernel_index, kernel_id):
    kernel = workload.kernels[kernel_index]
    packet = kernel.packet(kernel_id, 4)
    placement = WGScheduler(4).place(packet)
    protocol.on_kernel_launch(packet, placement)
    protocol.on_kernel_complete(packet, placement)


def test_cpelide_table_snapshot_restore_round_trip():
    config = _config()
    device = Device(config)
    protocol = CPElideProtocol(config, device)
    workload = build_workload("gaussian", config)
    empty = protocol.memo_digest()
    _launch(protocol, workload, 0, 0)
    digest = protocol.memo_digest()
    assert digest != empty
    snapshot = protocol.memo_snapshot()
    _launch(protocol, workload, 1, 1)
    protocol.memo_restore(snapshot)
    assert protocol.memo_digest() == digest


def test_cpelide_counter_delta_replays_peak_and_launches():
    config = _config()
    device = Device(config)
    protocol = CPElideProtocol(config, device)
    workload = build_workload("gaussian", config)
    _launch(protocol, workload, 0, 0)
    launches = protocol._launches
    token = protocol.memo_counters_begin()
    _launch(protocol, workload, 1, 1)
    delta = protocol.memo_counters_end(token)
    peak = protocol.table.peak_entries
    overflow = protocol.table.overflow_evictions
    # Applying the delta elsewhere advances the same counters (peak via
    # max-fold, launches by one).
    other = CPElideProtocol(_config(), Device(_config()))
    wl2 = build_workload("gaussian", _config())
    _launch(other, wl2, 0, 0)
    other.memo_counters_apply(delta)
    assert other.table.peak_entries == peak
    assert other.table.overflow_evictions == overflow
    assert other._launches == protocol._launches == launches + 1


def test_cpelide_first_launch_flag_in_memo_key():
    config = _config()
    protocol = CPElideProtocol(config, Device(config))
    assert protocol.memo_key_flags() == (True,)
    _launch(protocol, build_workload("gaussian", config), 0, 0)
    assert protocol.memo_key_flags() == (False,)


def test_hmg_directory_snapshot_restore_round_trip():
    config = _config()
    device = Device(config)
    protocol = HMGProtocol(config, device, write_back=False)
    for line in range(0, 4000, 7):
        protocol.access(line % 4, line, is_write=(line % 3 == 0))
    digest = protocol.memo_digest()
    snapshot = protocol.memo_snapshot()
    for line in range(0, 2000, 5):
        protocol.access((line + 1) % 4, line, is_write=True)
    assert protocol.memo_digest() != digest
    protocol.memo_restore(snapshot)
    assert protocol.memo_digest() == digest


# ---------------------------------------------------------------------------
# HomeMap journal


def test_home_map_journal_apply_reproduces_digest():
    config = _config()
    recorder, replayer = Device(config).home_map, Device(config).home_map
    recorder.memo_enable()
    replayer.memo_enable()
    assert recorder.memo_digest() == replayer.memo_digest()
    recorder.memo_begin_journal()
    for line in range(0, 5000, 11):
        recorder.home_of_line(line, line % 4)
    journal = recorder.memo_take_journal()
    assert journal
    replayer.memo_apply_journal(journal)
    assert recorder.memo_digest() == replayer.memo_digest()
    for line in range(0, 5000, 11):
        assert (replayer.peek_home_of_line(line)
                == recorder.peek_home_of_line(line))


# ---------------------------------------------------------------------------
# Store: context isolation, key invalidation, LRU bound


def test_store_contexts_are_isolated():
    a = store_for(("config-a", "cpelide", "static"))
    b = store_for(("config-b", "cpelide", "static"))
    c = store_for(("config-a", "hmg", "static"))
    assert a is not b and a is not c
    assert store_for(("config-a", "cpelide", "static")) is a


def test_config_or_protocol_change_misses_the_memo():
    """Changing the config or the protocol must invalidate memoized
    outcomes (fresh misses, no replay of the old context's entries)."""
    base = _config()
    first = Simulator(base, "cpelide", trace_path="memo").run(
        build_workload("hotspot", base))
    assert first.memo_hits > 0

    # A rebuilt simulator in the SAME context replays everything...
    warm = Simulator(_config(), "cpelide", trace_path="memo").run(
        build_workload("hotspot", _config()))
    assert warm.memo_misses == 0

    # ...but a different config or protocol keys a different store, so
    # the old entries must not replay: fresh misses again.
    other_scale = _config(scale=1 / 32)
    rescaled = Simulator(other_scale, "cpelide", trace_path="memo").run(
        build_workload("hotspot", other_scale))
    assert rescaled.memo_misses > 0

    reprotocoled = Simulator(_config(), "hmg", trace_path="memo").run(
        build_workload("hotspot", _config()))
    assert reprotocoled.memo_misses > 0


def test_store_lru_evicts_oldest_entry():
    store = MemoStore(max_entries=2)

    def entry():
        return MemoEntry(
            post_digests=(), cache_snapshots=(), cache_stat_deltas=(),
            dram_delta=None, home_journal=(), lds_delta=None,
            local_cp_delta=None, translations_delta=0,
            proto_snapshot=None, proto_counter_delta=None,
            sched_snapshot=None, metrics={}, trace_lines=0)

    store.put("a", entry())
    store.put("b", entry())
    assert store.get("a") is not None  # refresh "a"
    store.put("c", entry())  # evicts "b", the least recently used
    assert store.get("b") is None
    assert store.get("a") is not None and store.get("c") is not None


def test_snapshot_pool_dedups_by_digest():
    store = MemoStore()
    built = []

    def build():
        built.append(object())
        return built[-1]

    first = store.intern_snapshot(0, b"digest", build)
    second = store.intern_snapshot(0, b"digest", build)
    assert first is second and len(built) == 1
    # A different slot with the same digest is a different state space.
    store.intern_snapshot(1, b"digest", build)
    assert len(built) == 2


# ---------------------------------------------------------------------------
# Bypass predicate


def test_bypass_predicate_matches_roaming_args():
    config = _config()
    bfs = build_workload("bfs", config)
    assert any(kernel_is_bypassed(k) for k in bfs.kernels)
    hotspot = build_workload("hotspot", config)
    assert not any(kernel_is_bypassed(k) for k in hotspot.kernels)


# ---------------------------------------------------------------------------
# Run-trace interning


def test_interned_runs_match_direct_generation_for_every_suite_arg():
    """Drift referee: the interned accessor must return exactly the runs
    the direct generator produces, for every argument the differential
    workloads sweep."""
    config = _config()
    for name in ["bfs", "sssp", "color", "hotspot", "rnn-gru-small",
                 "babelstream"]:
        workload = build_workload(name, config)
        for kernel_id, kernel in enumerate(workload.kernels):
            for arg in kernel.args:
                for logical in range(4):
                    direct = runs_for_arg(arg, logical, 4, kernel_id)
                    interned = interned_runs_for_arg(arg, logical, 4,
                                                     kernel_id)
                    assert list(interned) == direct, (name, kernel_id)
                    # Second call serves the identical object.
                    again = interned_runs_for_arg(arg, logical, 4,
                                                  kernel_id)
                    assert again == interned


def _random_arg(resample: bool):
    from repro.cp.packets import AccessMode
    from repro.memory.address import LINE_SIZE, AddressSpace
    from repro.workloads.base import KernelArg, PatternKind

    buf = AddressSpace().alloc("buf", 4096 * LINE_SIZE)
    return KernelArg(buffer=buf, mode=AccessMode.R,
                     pattern=PatternKind.RANDOM, resample=resample)


def test_interning_shares_stable_traces_across_kernel_ids():
    stable = _random_arg(resample=False)  # fully stable sample
    first = interned_runs_for_arg(stable, 0, 4, 0)
    second = interned_runs_for_arg(stable, 0, 4, 7)
    assert first is second  # same interned tuple, not just equal
    assert list(first) == runs_for_arg(stable, 0, 4, 7)


def test_interning_keeps_roaming_traces_distinct_per_kernel():
    roaming = _random_arg(resample=True)  # kernel-id-seeded sample
    assert (interned_runs_for_arg(roaming, 0, 4, 0)
            != interned_runs_for_arg(roaming, 0, 4, 1))
    assert (list(interned_runs_for_arg(roaming, 0, 4, 1))
            == runs_for_arg(roaming, 0, 4, 1))


def test_prewarm_populates_the_trace_cache():
    config = _config()
    workload = build_workload("bfs", config)
    assert prewarm_workload_traces(workload, config.num_chiplets) > 0


# ---------------------------------------------------------------------------
# Sweep engine: memo counters stay out of engine payloads


def test_engine_payload_identical_across_trace_paths(monkeypatch):
    from repro.api import sweep

    monkeypatch.setenv("REPRO_TRACE_PATH", "run")
    run = sweep(workloads=("hotspot",), protocols=("cpelide",),
                configs=(_config(),), jobs=1, cache=False).to_dicts()
    monkeypatch.setenv("REPRO_TRACE_PATH", "memo")
    memo = sweep(workloads=("hotspot",), protocols=("cpelide",),
                 configs=(_config(),), jobs=1, cache=False).to_dicts()
    assert run == memo
