"""Unit tests for metrics containers and report helpers."""

import pytest

from repro.interconnect.noc import TrafficMeter
from repro.metrics.report import format_table, geomean, normalize, speedup
from repro.metrics.stats import AccessCounts, KernelMetrics, RunMetrics, SyncCounts


class TestAccessCounts:
    def test_merge(self):
        a = AccessCounts(l2_local_hits=3, dram_reads=1)
        b = AccessCounts(l2_local_hits=2, l3_hits=5)
        a.merge(b)
        assert a.l2_local_hits == 5
        assert a.l3_hits == 5
        assert a.dram_reads == 1

    def test_l2_aggregates(self):
        counts = AccessCounts(l2_local_hits=6, l2_remote_hits=2,
                              l2_local_misses=1, l2_remote_misses=1)
        assert counts.l2_accesses == 10
        assert counts.l2_hits == 8
        assert counts.l2_misses == 2
        assert counts.l2_miss_rate == pytest.approx(0.2)

    def test_miss_rate_empty(self):
        assert AccessCounts().l2_miss_rate == 0.0

    def test_dram_accesses(self):
        counts = AccessCounts(dram_reads=3, dram_writes=4)
        assert counts.dram_accesses == 7


class TestSyncCounts:
    def test_merge(self):
        a = SyncCounts(acquires_issued=1, lines_flushed=10)
        b = SyncCounts(acquires_issued=2, dir_evictions=3)
        a.merge(b)
        assert a.acquires_issued == 3
        assert a.lines_flushed == 10
        assert a.dir_evictions == 3


class TestRunMetrics:
    def _run(self):
        run = RunMetrics(workload="w", protocol="p", num_chiplets=4)
        for i in range(3):
            km = KernelMetrics(kernel_name=f"k{i}", kernel_index=i,
                               cycles=100.0 * (i + 1), sync_cycles=10.0)
            km.accesses.l2_local_hits = 10
            km.traffic.l2_data(2)
            km.sync.releases_elided = 4
            run.add_kernel(km)
        return run

    def test_totals(self):
        run = self._run()
        assert run.total_cycles == 600.0
        assert run.total_sync_cycles == 30.0
        assert run.num_kernels == 3
        assert run.total_accesses().l2_local_hits == 30
        assert run.total_sync().releases_elided == 12
        assert run.total_traffic().l2_l3 == 18

    def test_summary_keys(self):
        summary = self._run().summary()
        for key in ("cycles", "sync_cycles", "l2_miss_rate",
                    "traffic_flits", "releases_elided"):
            assert key in summary


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_normalize(self):
        out = normalize({"baseline": 4.0, "cpelide": 2.0}, "baseline")
        assert out == {"baseline": 1.0, "cpelide": 0.5}
        with pytest.raises(ValueError):
            normalize({"baseline": 0.0}, "baseline")

    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1.5], ["longer", 2.25]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)
        assert "1.500" in table
