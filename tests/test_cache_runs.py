"""Differential tests: SetAssocCache bulk run ops vs the per-line primitives.

`bulk_access` / `bulk_flush` / `bulk_invalidate` promise bit-exact
equivalence with issuing the per-line calls in ascending line order:
identical residency, LRU order, dirty flags, `CacheStats`, and (for
accesses) an identical ordered miss/victim event stream. These tests
drive both implementations from the same randomized pre-state and compare
everything.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssocCache, WritePolicy


def make_cache(num_lines, assoc, policy=WritePolicy.WRITE_BACK):
    return SetAssocCache(size_bytes=num_lines * 64, assoc=assoc,
                         policy=policy, name="t")


def snapshot(cache):
    """Full observable state: per-set (line, dirty) in LRU order + stats."""
    sets = {idx: list(cset.items()) for idx, cset in cache._sets.items()
            if cset}
    return sets, vars(cache.stats).copy()


def reference_access_run(cache, start, count, do_load, do_store):
    """The per-line semantics bulk_access must reproduce."""
    hits = 0
    events = []
    for line in range(start, start + count):
        if do_load:
            hit, ev = cache.access(line, is_write=False)
            if do_store:
                cache.access(line, is_write=True)
        else:
            hit, ev = cache.access(line, is_write=True)
        if hit:
            hits += 1
        else:
            events.append((line, ev.line if ev else None,
                           ev.dirty if ev else False))
    return hits, events


def prepopulate(cache, ops):
    """Apply a warm-up access sequence (line, is_write) pairs."""
    for line, is_write in ops:
        cache.access(line, is_write)


kind_strategy = st.sampled_from([(True, False), (False, True), (True, True)])


@settings(max_examples=200, deadline=None)
@given(
    num_lines=st.sampled_from([8, 16, 32, 64]),
    assoc=st.sampled_from([1, 2, 4, 8]),
    policy=st.sampled_from(list(WritePolicy)),
    warmup=st.lists(st.tuples(st.integers(0, 127), st.booleans()),
                    max_size=60),
    start=st.integers(0, 127),
    count=st.integers(1, 90),
    kind=kind_strategy,
)
def test_access_run_matches_per_line(num_lines, assoc, policy, warmup,
                                     start, count, kind):
    do_load, do_store = kind
    bulk = make_cache(num_lines, assoc, policy)
    ref = make_cache(num_lines, assoc, policy)
    prepopulate(bulk, warmup)
    prepopulate(ref, warmup)

    res = bulk.bulk_access(start=start, count=count,
                           load=do_load, store=do_store)
    ref_hits, ref_events = reference_access_run(ref, start, count,
                                                do_load, do_store)

    assert snapshot(bulk) == snapshot(ref)
    assert res.hits == ref_hits
    assert res.misses == count - ref_hits
    if res.uniform_miss:
        assert res.events is None
        assert ref_hits == 0
        assert ref_events == [(line, None, False)
                              for line in range(start, start + count)]
    else:
        assert res.events == ref_events


@settings(max_examples=150, deadline=None)
@given(
    num_lines=st.sampled_from([8, 32, 64]),
    assoc=st.sampled_from([2, 4, 16]),
    warmup=st.lists(st.tuples(st.integers(0, 127), st.booleans()),
                    max_size=60),
    start=st.integers(0, 127),
    count=st.integers(1, 90),
)
def test_flush_and_invalidate_run_match_per_line(num_lines, assoc, warmup,
                                                 start, count):
    bulk = make_cache(num_lines, assoc)
    ref = make_cache(num_lines, assoc)
    prepopulate(bulk, warmup)
    prepopulate(ref, warmup)

    flushed = bulk.bulk_flush(start=start, count=count).lines
    ref_flushed = [line for line in range(start, start + count)
                   if ref.flush_line(line)]
    assert flushed == ref_flushed
    assert snapshot(bulk) == snapshot(ref)

    inv = bulk.bulk_invalidate(start=start, count=count)
    dropped, dirty = inv.dropped, inv.lines
    ref_dropped = 0
    ref_dirty = []
    for line in range(start, start + count):
        present, was_dirty = ref.invalidate_line(line)
        if present:
            ref_dropped += 1
        if was_dirty:
            ref_dirty.append(line)
    assert (dropped, dirty) == (ref_dropped, ref_dirty)
    assert snapshot(bulk) == snapshot(ref)


def test_access_run_uniform_miss_on_cold_cache():
    cache = make_cache(64, 4)
    res = cache.bulk_access(start=0, count=16, load=True, store=False)
    assert res.uniform_miss and res.misses == 16 and res.events is None
    assert cache.stats.read_misses == 16


def test_access_run_all_hit_refreshes_lru():
    cache = make_cache(64, 4)
    cache.bulk_access(start=0, count=16, load=True, store=False)
    res = cache.bulk_access(start=0, count=16, load=True, store=False)
    assert res.all_hit and res.hits == 16 and res.events == []
    assert cache.stats.read_hits == 16


def test_access_run_rejects_no_op_kind():
    cache = make_cache(64, 4)
    with pytest.raises(ValueError):
        cache.bulk_access(start=0, count=4, load=False, store=False)


def test_access_run_empty_run_is_noop():
    cache = make_cache(64, 4)
    before = snapshot(cache)
    res = cache.bulk_access(start=5, count=0, load=True, store=True)
    assert res.hits == 0 and res.misses == 0 and res.events == []
    assert snapshot(cache) == before


def test_load_store_run_marks_lines_dirty_under_write_back():
    cache = make_cache(64, 4)
    cache.bulk_access(start=0, count=8, load=True, store=True)
    assert cache.dirty_lines == 8
    # Write-through never dirties.
    wt = make_cache(64, 4, WritePolicy.WRITE_THROUGH)
    wt.bulk_access(start=0, count=8, load=True, store=True)
    assert wt.dirty_lines == 0
