"""Unit tests for the Chiplet Coherence Table."""

import pytest

from repro.core.regions import AccessRegion
from repro.core.states import ChipletState
from repro.core.table import ChipletCoherenceTable, TableEntry
from repro.cp.packets import AccessMode


def region(name, base, end, mode=AccessMode.R, chiplet_ranges=None):
    return AccessRegion(name=name, base=base, end=end, mode=mode,
                        chiplet_ranges=dict(chiplet_ranges or {}))


def make_table(num_chiplets=4, structs=8, window=8):
    return ChipletCoherenceTable(num_chiplets=num_chiplets,
                                 structs_per_kernel=structs,
                                 kernel_window=window)


class TestSizing:
    def test_capacity_is_8x8(self):
        """Sec. III-A: 8 structures x 8 kernels = 64 entries."""
        assert make_table().capacity == 64

    def test_storage_about_2kb(self):
        """Sec. III-A: ~2 KB total for a 4-chiplet system."""
        size = make_table(num_chiplets=4).storage_bytes()
        assert 1.5 * 1024 <= size <= 3 * 1024

    def test_storage_grows_with_chiplets(self):
        assert make_table(num_chiplets=8).storage_bytes() \
            > make_table(num_chiplets=2).storage_bytes()


class TestGetOrCreate:
    def test_creates_blank_entry(self):
        table = make_table()
        entry, evicted = table.get_or_create(region("a", 0, 100))
        assert evicted is None
        assert entry.is_empty()
        assert len(table) == 1

    def test_reuses_overlapping_entry(self):
        table = make_table()
        first, _ = table.get_or_create(region("a", 0, 100))
        second, _ = table.get_or_create(region("a", 50, 150))
        assert first is second
        assert second.base == 0 and second.end == 150
        assert len(table) == 1

    def test_merges_multiple_overlapping_entries(self):
        table = make_table()
        a, _ = table.get_or_create(region("a", 0, 100))
        b, _ = table.get_or_create(region("b", 200, 300))
        a.states[0] = ChipletState.VALID
        b.states[1] = ChipletState.DIRTY
        merged, _ = table.get_or_create(region("c", 50, 250))
        assert len(table) == 1
        assert merged.states[0] == ChipletState.VALID
        assert merged.states[1] == ChipletState.DIRTY

    def test_overflow_evicts_lru(self):
        table = make_table(structs=2, window=2)  # capacity 4
        entries = []
        for i in range(4):
            e, _ = table.get_or_create(region(f"r{i}", i * 1000, i * 1000 + 10))
            entries.append(e)
        _, evicted = table.get_or_create(region("new", 99000, 99010))
        assert evicted is entries[0]
        assert table.overflow_evictions == 1
        assert len(table) == 4

    def test_touch_refreshes_lru(self):
        table = make_table(structs=2, window=1)  # capacity 2
        a, _ = table.get_or_create(region("a", 0, 10))
        table.get_or_create(region("b", 1000, 1010))
        table.touch(a)
        _, evicted = table.get_or_create(region("c", 2000, 2010))
        assert evicted is not a

    def test_peak_entries_tracked(self):
        table = make_table()
        for i in range(5):
            table.get_or_create(region(f"r{i}", i * 100, i * 100 + 10))
        assert table.peak_entries == 5


class TestWholeCacheSideEffects:
    def test_acquire_clears_chiplet_everywhere(self):
        table = make_table()
        a, _ = table.get_or_create(region("a", 0, 100))
        b, _ = table.get_or_create(region("b", 200, 300))
        a.states[1] = ChipletState.DIRTY
        a.ranges[1] = (0, 100)
        b.states[1] = ChipletState.VALID
        b.ranges[1] = (200, 300)
        b.states[2] = ChipletState.VALID
        table.on_chiplet_acquired(1)
        assert a not in table.entries            # became empty -> removed
        assert b.states[1] == ChipletState.NOT_PRESENT
        assert b.ranges[1] is None
        assert b.states[2] == ChipletState.VALID  # untouched chiplet

    def test_release_cleans_dirty_only(self):
        table = make_table()
        a, _ = table.get_or_create(region("a", 0, 100))
        a.states[0] = ChipletState.DIRTY
        a.states[1] = ChipletState.STALE
        table.on_chiplet_released(0)
        table.on_chiplet_released(1)
        assert a.states[0] == ChipletState.VALID
        assert a.states[1] == ChipletState.STALE  # release never fixes stale


class TestRemoveIfEmpty:
    def test_removes_all_not_present(self):
        table = make_table()
        entry, _ = table.get_or_create(region("a", 0, 100))
        assert table.remove_if_empty(entry)
        assert len(table) == 0

    def test_keeps_non_empty(self):
        table = make_table()
        entry, _ = table.get_or_create(region("a", 0, 100))
        entry.states[0] = ChipletState.VALID
        assert not table.remove_if_empty(entry)
        assert len(table) == 1


class TestFindOverlapping:
    def test_finds_by_extent(self):
        table = make_table()
        table.get_or_create(region("a", 0, 100))
        table.get_or_create(region("b", 1000, 1100))
        found = table.find_overlapping(50, 60)
        assert len(found) == 1 and found[0].name == "a"
        assert table.find_overlapping(500, 600) == []

    def test_invalid_chiplet_count(self):
        with pytest.raises(ValueError):
            ChipletCoherenceTable(num_chiplets=0)
