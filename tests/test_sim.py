"""Integration tests: the full simulator over small workloads."""

import pytest

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.memory.address import AddressSpace
from repro.workloads.base import AccessKind, Kernel, KernelArg, PatternKind, Workload
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


def iterative_workload(iterations=6):
    """in -> out elementwise kernel relaunched (square-like)."""
    space = AddressSpace()
    a = space.alloc("A", 32 * 4096)
    c = space.alloc("C", 32 * 4096)
    kernels = [
        Kernel("square", args=(
            KernelArg(a, AccessMode.R),
            KernelArg(c, AccessMode.RW, kind=AccessKind.STORE),
        ), compute_intensity=1.0)
        for _ in range(iterations)
    ]
    return Workload(name="square-mini", space=space, kernels=kernels)


class TestBasicRuns:
    @pytest.mark.parametrize("protocol", ["baseline", "cpelide", "hmg",
                                          "hmg-wb", "nosync"])
    def test_runs_and_produces_metrics(self, protocol):
        result = Simulator(CONFIG, protocol).run(iterative_workload())
        assert result.wall_cycles > 0
        assert result.metrics.num_kernels >= 6
        assert result.energy["total"] > 0
        acc = result.metrics.total_accesses()
        assert acc.l2_accesses > 0

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError):
            Simulator(CONFIG, "bogus").run(iterative_workload())

    def test_protocol_factory_callable(self):
        from repro.coherence.viper import BaselineProtocol
        result = Simulator(CONFIG, BaselineProtocol).run(iterative_workload())
        assert result.protocol == "baseline"


class TestDeterminism:
    def test_same_run_same_numbers(self):
        a = Simulator(CONFIG, "cpelide").run(build_workload("bfs", CONFIG))
        b = Simulator(CONFIG, "cpelide").run(build_workload("bfs", CONFIG))
        assert a.wall_cycles == b.wall_cycles
        assert a.metrics.total_traffic().total \
            == b.metrics.total_traffic().total


class TestPaperInvariants:
    def test_cpelide_beats_baseline_on_iterative_reuse(self):
        base = Simulator(CONFIG, "baseline").run(iterative_workload(10))
        cpe = Simulator(CONFIG, "cpelide").run(iterative_workload(10))
        assert cpe.wall_cycles < base.wall_cycles

    def test_cpelide_elides_on_iterative_reuse(self):
        cpe = Simulator(CONFIG, "cpelide").run(iterative_workload(10))
        sync = cpe.metrics.total_sync()
        assert sync.releases_elided > 0
        assert sync.acquires_elided > 0
        # Steady state issues nothing.
        assert sync.acquires_issued == 0

    def test_baseline_issues_everything(self):
        base = Simulator(CONFIG, "baseline").run(iterative_workload(10))
        sync = base.metrics.total_sync()
        # 4 acquires + 4 releases per kernel, plus the final release.
        assert sync.acquires_issued == 4 * 10
        assert sync.releases_issued >= 4 * 10

    def test_cpelide_reduces_traffic(self):
        base = Simulator(CONFIG, "baseline").run(iterative_workload(10))
        cpe = Simulator(CONFIG, "cpelide").run(iterative_workload(10))
        assert cpe.metrics.total_traffic().total \
            < base.metrics.total_traffic().total

    def test_hmg_writes_through_to_dram(self):
        hmg = Simulator(CONFIG, "hmg").run(iterative_workload(10))
        cpe = Simulator(CONFIG, "cpelide").run(iterative_workload(10))
        assert hmg.metrics.total_accesses().dram_writes \
            > cpe.metrics.total_accesses().dram_writes

    def test_nosync_upper_bounds_cpelide_miss_rate(self):
        nosync = Simulator(CONFIG, "nosync").run(iterative_workload(10))
        base = Simulator(CONFIG, "baseline").run(iterative_workload(10))
        assert nosync.metrics.total_accesses().l2_miss_rate \
            <= base.metrics.total_accesses().l2_miss_rate

    def test_finalize_flushes_dirty_data(self):
        cpe = Simulator(CONFIG, "cpelide").run(iterative_workload(4))
        final = cpe.metrics.kernels[-1]
        assert final.kernel_name == "__finalize__"
        assert final.sync.lines_flushed > 0


class TestMultiStream:
    def _two_stream_workload(self):
        space = AddressSpace()
        kernels = []
        for stream, mask in ((0, (0, 1)), (1, (2, 3))):
            buf = space.alloc(f"s{stream}", 16 * 4096)
            for _ in range(4):
                kernels.append(Kernel(
                    f"work{stream}", args=(KernelArg(buf, AccessMode.RW),),
                    stream_id=stream, chiplet_mask=mask))
        return Workload(name="ms", space=space, kernels=kernels)

    def test_streams_overlap_in_time(self):
        result = Simulator(CONFIG, "cpelide").run(self._two_stream_workload())
        serial = result.metrics.total_cycles
        assert result.wall_cycles < serial

    def test_stream_masks_respected(self):
        result = Simulator(CONFIG, "baseline").run(self._two_stream_workload())
        for km in result.metrics.kernels:
            if km.kernel_name.startswith("work"):
                assert km.chiplets_used == 2


class TestL1Model:
    def test_touches_generate_l1_hits(self):
        space = AddressSpace()
        buf = space.alloc("A", 16 * 4096)
        workload = Workload(name="t", space=space, kernels=[
            Kernel("k", args=(KernelArg(buf, AccessMode.R, touches=3.0),))])
        result = Simulator(CONFIG, "baseline").run(workload)
        acc = result.metrics.total_accesses()
        assert acc.l1_hits > 0
        assert acc.l1_accesses > acc.l2_accesses
