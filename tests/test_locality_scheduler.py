"""Unit tests for the locality-aware WG scheduler."""

import pytest

from repro.cp.locality_scheduler import LocalityAwareWGScheduler
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket
from repro.memory.address import AddressSpace


@pytest.fixture
def buf():
    return AddressSpace().alloc("data", 16 * 4096)


def packet(kid, buf, num_wgs=16, mask=None):
    return KernelPacket(kernel_id=kid, name=f"k{kid}", stream_id=0,
                        num_wgs=num_wgs,
                        args=(ArgAccess(buf, AccessMode.RW),),
                        chiplet_mask=mask)


class TestLocalitySteering:
    def test_full_width_kernels_unchanged(self, buf):
        sched = LocalityAwareWGScheduler(4)
        placement = sched.place(packet(0, buf, num_wgs=16))
        assert placement.chiplets == (0, 1, 2, 3)

    def test_narrow_kernel_steered_to_producer(self, buf):
        sched = LocalityAwareWGScheduler(4)
        # Producer restricted to chiplets {2, 3}.
        sched.place(packet(0, buf, num_wgs=16, mask=(2, 3)))
        # Narrow consumer: the default scheduler would pick chiplet 0;
        # the locality-aware one steers to a producer chiplet.
        placement = sched.place(packet(1, buf, num_wgs=1))
        assert placement.chiplets[0] in (2, 3)

    def test_cold_buffer_falls_back_to_default(self, buf):
        sched = LocalityAwareWGScheduler(4)
        placement = sched.place(packet(0, buf, num_wgs=1))
        assert placement.chiplets == (0,)

    def test_masked_kernels_never_steered(self, buf):
        sched = LocalityAwareWGScheduler(4)
        sched.place(packet(0, buf, num_wgs=16, mask=(2, 3)))
        placement = sched.place(packet(1, buf, num_wgs=4, mask=(0,)))
        assert placement.chiplets == (0,)

    def test_affinity_updates_with_latest_placement(self, buf):
        sched = LocalityAwareWGScheduler(4)
        sched.place(packet(0, buf, num_wgs=16, mask=(2, 3)))
        sched.place(packet(1, buf, num_wgs=16, mask=(0, 1)))
        placement = sched.place(packet(2, buf, num_wgs=1))
        assert placement.chiplets[0] in (0, 1)

    def test_wg_counts_preserved_when_steering(self, buf):
        sched = LocalityAwareWGScheduler(4)
        sched.place(packet(0, buf, num_wgs=16, mask=(3,)))
        placement = sched.place(packet(1, buf, num_wgs=2))
        assert placement.total_wgs == 2


class TestSimulatorIntegration:
    def test_scheduler_selection_validated(self):
        from repro.gpu.config import GPUConfig
        from repro.gpu.sim import Simulator
        with pytest.raises(ValueError):
            Simulator(GPUConfig(num_chiplets=2, scale=1 / 64),
                      scheduler="random")
