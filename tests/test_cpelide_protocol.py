"""Unit tests for the CPElide protocol glue (table-driven sync)."""

import pytest

from repro.coherence.cpelide import CPElideProtocol
from repro.core.states import ChipletState
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.memory.address import AddressSpace

from tests.conftest import TEST_SCALE


@pytest.fixture
def setup():
    config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
    device = Device(config)
    return config, device, CPElideProtocol(config, device)


@pytest.fixture
def buf():
    return AddressSpace().alloc("A", 16 * 4096)


def launch(protocol, kid, args, chiplets=(0, 1, 2, 3)):
    packet = KernelPacket(kernel_id=kid, name=f"k{kid}", stream_id=0,
                          num_wgs=16, args=tuple(args))
    placement = Placement(chiplets=tuple(chiplets),
                          wg_counts=tuple(4 for _ in chiplets))
    return protocol.on_kernel_launch(packet, placement), packet, placement


class TestBoundaries:
    def test_first_launch_no_ops(self, setup, buf):
        _, _, protocol = setup
        ops, _, _ = launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        assert ops == []

    def test_completion_is_lazy(self, setup, buf):
        _, _, protocol = setup
        _, packet, placement = launch(protocol, 0,
                                      [ArgAccess(buf, AccessMode.RW)])
        assert protocol.on_kernel_complete(packet, placement) == []

    def test_table_sized_from_config(self, setup):
        config, _, protocol = setup
        assert protocol.table.capacity == (config.table_structs_per_kernel
                                           * config.table_kernel_window)

    def test_last_outcome_recorded(self, setup, buf):
        _, _, protocol = setup
        launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        assert protocol.last_outcome is not None
        assert protocol.last_outcome.releases_elided == 4


class TestLaunchOverhead:
    def test_first_kernel_pays_table_op(self, setup, buf):
        config, _, protocol = setup
        _, packet, _ = launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        assert protocol.launch_overhead_cycles(packet) \
            == pytest.approx(config.cpelide_op_cycles)

    def test_later_kernels_hidden(self, setup, buf):
        _, _, protocol = setup
        _, packet, _ = launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        protocol.launch_overhead_cycles(packet)
        launch(protocol, 1, [ArgAccess(buf, AccessMode.RW)])
        assert protocol.launch_overhead_cycles(packet) == 0.0


class TestRangeExtension:
    def test_range_ops_carry_ranges(self, buf):
        config = GPUConfig(num_chiplets=4, scale=TEST_SCALE)
        device = Device(config)
        protocol = CPElideProtocol(config, device, range_ops=True)
        assert protocol.name == "cpelide-range"
        launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        # Chiplet 0 alone rereads everything -> releases others, ranged.
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0,
                              num_wgs=16, args=(ArgAccess(buf, AccessMode.R),))
        ops = protocol.on_kernel_launch(packet, Placement((0,), (16,)))
        assert ops, "expected release ops"
        assert all(op.ranges is not None for op in ops)
        for op in ops:
            for lo, hi in op.ranges:
                assert buf.base <= lo < hi <= buf.end


class TestIntrospection:
    def test_table_state_lookup(self, setup, buf):
        _, _, protocol = setup
        launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        assert protocol.table_state(buf.base, 0) == ChipletState.DIRTY
        assert protocol.table_state(buf.end + 4096, 0) \
            == ChipletState.NOT_PRESENT


class TestEndToEndOps:
    def test_cross_chiplet_consumer_triggers_release(self, setup, buf):
        _, device, protocol = setup
        launch(protocol, 0, [ArgAccess(buf, AccessMode.RW)])
        packet = KernelPacket(kernel_id=1, name="k1", stream_id=0,
                              num_wgs=16, args=(ArgAccess(buf, AccessMode.R),))
        ops = protocol.on_kernel_launch(packet, Placement((0,), (16,)))
        released = {op.chiplet for op in ops
                    if op.kind is SyncOpKind.RELEASE}
        assert released == {1, 2, 3}
