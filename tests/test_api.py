"""The ``repro.api`` facade and its top-level re-exports."""

from __future__ import annotations

import pytest

import repro
from repro.api import (
    ProtocolSpec,
    default_config,
    protocols,
    register_protocol,
    simulate,
    sweep,
    unregister_protocol,
)
from repro.coherence.registry import protocol_names
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.workloads.suite import WORKLOAD_NAMES, build_workload

from tests.conftest import TEST_SCALE


class TestDefaultConfig:
    def test_defaults(self):
        config = default_config()
        assert config.num_chiplets == 4
        assert config.scale == pytest.approx(1 / 32)

    def test_overrides_pass_through(self):
        config = default_config(num_chiplets=2, scale=TEST_SCALE,
                                l2_assoc=32)
        assert config.num_chiplets == 2
        assert config.l2_assoc == 32


class TestSimulate:
    def test_matches_direct_simulator_run(self, config):
        via_api = simulate("square", "cpelide", config=config)
        direct = Simulator(config, "cpelide").run(
            build_workload("square", config))
        assert via_api.to_dict() == direct.to_dict()

    def test_accepts_workload_instance(self, config):
        workload = build_workload("square", config)
        result = simulate(workload, "baseline", config=config)
        assert result.protocol == "baseline"
        assert result.wall_cycles > 0

    def test_scheduler_passes_through(self, config):
        static = simulate("square", "cpelide", config=config)
        locality = simulate("square", "cpelide", config=config,
                            scheduler="locality")
        assert static.wall_cycles > 0 and locality.wall_cycles > 0


class TestSweep:
    def test_grid_and_get(self, config2):
        result = sweep(workloads=("square", "babelstream"),
                       protocols=("baseline", "cpelide"),
                       configs=(config2,), cache=False)
        assert result.report.total_jobs == 4
        cell = result.get("square", "cpelide", num_chiplets=2)
        assert cell.protocol == "cpelide"
        with pytest.raises(KeyError):
            result.get("square", "hmg")

    def test_default_grid_covers_full_suite(self):
        # Expansion only — no simulation.
        from repro.engine.spec import SweepSpec
        spec = SweepSpec.grid(workloads=None, scale=TEST_SCALE)
        assert spec.num_jobs == len(WORKLOAD_NAMES) * 3

    def test_multistream_spec(self, config):
        result = sweep(workloads=(("multistream", "square", 2),),
                       protocols=("cpelide",), configs=(config,),
                       cache=False)
        assert result.outcomes[0].workload == "square-ms2"


class TestProtocolRegistry:
    def test_names_cover_the_paper_configurations(self):
        names = protocol_names()
        for expected in ("baseline", "cpelide", "cpelide-range",
                         "cpelide-driver", "cpelide-ts", "hmg", "hmg-wb",
                         "nosync", "monolithic", "timestamp"):
            assert expected in names
        assert list(names) == sorted(names)

    def test_every_name_constructs(self, config2):
        from repro.api import make_protocol, monolithic_equivalent
        from repro.gpu.device import Device
        for name in protocol_names():
            # The monolithic comparator models a single-chiplet GPU.
            config = (monolithic_equivalent(config2) if name == "monolithic"
                      else config2)
            protocol = make_protocol(name, config, Device(config))
            assert protocol is not None

    def test_protocols_returns_frozen_specs(self):
        specs = protocols()
        assert [s.name for s in specs] == list(protocol_names())
        for spec in specs:
            assert spec.description
            with pytest.raises(Exception):
                spec.name = "mutated"  # frozen dataclass

    def test_spec_to_dict_is_json_shaped(self):
        spec = next(s for s in protocols() if s.name == "timestamp")
        payload = spec.to_dict()
        assert payload["name"] == "timestamp"
        assert "lease_kernels" in payload["knobs"]

    def test_register_and_unregister_round_trip(self, config2):
        from repro.coherence.timestamp import TimestampProtocol

        class LongLease(TimestampProtocol):
            name = "test-long-lease"

        spec = ProtocolSpec(name="test-long-lease", factory=LongLease,
                            description="registration round-trip dummy")
        register_protocol(spec)
        try:
            assert "test-long-lease" in protocol_names()
            result = simulate("square", "test-long-lease", config=config2)
            assert result.protocol == "test-long-lease"
            # A ProtocolSpec may also be passed directly.
            again = simulate("square", spec, config=config2)
            assert again.to_dict() == result.to_dict()
        finally:
            unregister_protocol("test-long-lease")
        assert "test-long-lease" not in protocol_names()

    def test_duplicate_registration_requires_replace(self):
        existing = next(s for s in protocols() if s.name == "cpelide")
        with pytest.raises(repro.ConfigError):
            register_protocol(existing)
        register_protocol(existing, replace=True)  # idempotent

    def test_unknown_protocol_raises_config_error(self, config2):
        with pytest.raises(repro.ConfigError, match="no-such-proto"):
            simulate("square", "no-such-proto", config=config2)

    def test_protocol_names_shim_warns(self):
        import repro.api as api
        with pytest.warns(DeprecationWarning, match="protocol_names"):
            shim = api.protocol_names
        assert shim is protocol_names


class TestTopLevelExports:
    def test_facade_reexported_from_package_root(self):
        assert repro.simulate is simulate
        assert repro.sweep is sweep
        assert repro.default_config is default_config
        assert repro.protocol_names is protocol_names
        assert repro.protocols is protocols
        assert repro.register_protocol is register_protocol
        assert repro.ProtocolSpec is ProtocolSpec
        for name in ("SweepRunner", "SweepSpec", "SweepResult",
                     "SweepReport", "ResultCache", "ProtocolSpec",
                     "protocols", "register_protocol",
                     "TimestampProtocol", "CPElideTimestampProtocol"):
            assert hasattr(repro, name)
            assert name in repro.__all__
