"""Tests for the analysis tooling: occupancy, sync traces, charts."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.occupancy import profile_table_occupancy
from repro.analysis.sync_trace import trace_sync_ops
from repro.cp.local_cp import SyncOpKind
from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.memory.address import AddressSpace
from repro.workloads.base import Kernel, KernelArg, Workload
from repro.workloads.suite import build_workload

from tests.conftest import TEST_SCALE

CONFIG = GPUConfig(num_chiplets=4, scale=TEST_SCALE)


def iterative_workload(iterations=6):
    space = AddressSpace()
    buf = space.alloc("A", 16 * 4096)
    kernels = [Kernel("step", args=(KernelArg(buf, AccessMode.RW),))
               for _ in range(iterations)]
    return Workload(name="iter", space=space, kernels=kernels)


class TestOccupancyProfile:
    def test_iterative_workload_single_entry(self):
        profile = profile_table_occupancy(iterative_workload(), CONFIG)
        assert profile.peak_entries == 1
        assert profile.never_overflows
        assert profile.elision_rate == 1.0
        assert len(profile.occupancy) == 6

    def test_real_workload_within_paper_bounds(self):
        profile = profile_table_occupancy(
            build_workload("rnn-lstm-large", CONFIG), CONFIG)
        assert profile.peak_entries <= 11
        assert profile.never_overflows

    def test_issued_ops_counted(self):
        space = AddressSpace()
        buf = space.alloc("A", 16 * 4096)
        kernels = [
            Kernel("produce", args=(KernelArg(buf, AccessMode.RW),)),
            Kernel("consume", args=(KernelArg(buf, AccessMode.R),),
                   num_wgs=1),
        ]
        workload = Workload(name="pc", space=space, kernels=kernels)
        profile = profile_table_occupancy(workload, CONFIG)
        assert profile.releases_issued > 0


class TestSyncTrace:
    def test_cpelide_trace_mostly_silent_on_iterative(self):
        trace = trace_sync_ops(iterative_workload(8), CONFIG, "cpelide")
        assert trace.boundaries == 8
        assert trace.silent_fraction >= 0.9
        assert "silent" in trace.render()

    def test_baseline_trace_never_silent(self):
        trace = trace_sync_ops(iterative_workload(4), CONFIG, "baseline")
        assert trace.silent_fraction == 0.0
        kinds = {e.kind for e in trace.events}
        assert kinds == {SyncOpKind.ACQUIRE, SyncOpKind.RELEASE}

    def test_trace_carries_reasons(self):
        space = AddressSpace()
        buf = space.alloc("A", 16 * 4096)
        kernels = [
            Kernel("produce", args=(KernelArg(buf, AccessMode.RW),)),
            Kernel("consume", args=(KernelArg(buf, AccessMode.R),),
                   num_wgs=1),
        ]
        workload = Workload(name="pc", space=space, kernels=kernels)
        trace = trace_sync_ops(workload, CONFIG, "cpelide")
        assert any(e.reason == "remote-consumer" for e in trace.events)

    def test_render_truncation(self):
        trace = trace_sync_ops(iterative_workload(4), CONFIG, "baseline")
        rendered = trace.render(limit=3)
        assert "more" in rendered

    def test_result_attached(self):
        trace = trace_sync_ops(iterative_workload(4), CONFIG, "cpelide")
        assert trace.result is not None
        assert trace.result.wall_cycles > 0


class TestCharts:
    def test_bar_chart_renders_all_labels(self):
        chart = bar_chart({"baseline": 1.0, "cpelide": 1.2}, title="t")
        assert "baseline" in chart and "cpelide" in chart
        assert "1.200" in chart

    def test_bar_lengths_monotone(self):
        chart = bar_chart({"small": 1.0, "big": 2.0})
        small_line, big_line = chart.splitlines()
        assert small_line.count("█") < big_line.count("█")

    def test_bar_chart_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_grouped_chart(self):
        chart = grouped_bar_chart(
            {"app1": {"C": 1.1, "H": 0.9}, "app2": {"C": 1.3, "H": 1.0}},
            title="fig8")
        assert "app1" in chart and "app2" in chart
        assert "ref" in chart  # reference line at 1.0

    def test_grouped_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})
