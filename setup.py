"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build an editable wheel) fail; this shim
lets ``pip install -e .`` fall back to the classic develop-mode path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
