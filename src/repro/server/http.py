"""Minimal HTTP layer: stdlib asyncio server + optional ASGI adapter.

The service carries no hard web-framework dependency. This module
supplies the two ways its request handlers can face the network:

* :func:`serve_connection` — an ``asyncio.start_server`` callback that
  speaks just enough HTTP/1.1 for the API: one request per connection
  (every response carries ``Connection: close``; streaming responses are
  close-delimited, which is what SSE clients expect), a bounded header
  block, and a ``Content-Length``-framed body.
* :class:`AsgiAdapter` — wraps the same dispatcher as an ASGI 3
  application, so ``repro.api.serve()`` can hand the app to uvicorn
  when it happens to be installed (never required, never imported
  here).

Handlers exchange plain dataclasses: a :class:`Request` in, a
:class:`Response` (buffered) or :class:`StreamResponse` (async byte
iterator, used by SSE) out.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["AsgiAdapter", "HttpError", "Request", "Response",
           "StreamResponse", "json_response", "serve_connection"]

#: Upper bounds keeping one bad client from ballooning server memory.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 501: "Not Implemented",
}


class HttpError(Exception):
    """A malformed/oversized request the connection layer rejects."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON (``None`` when empty)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def client_header(self) -> Optional[str]:
        """``X-Client-Id``, the out-of-band client identity spelling."""
        return self.headers.get("x-client-id")


@dataclass
class Response:
    """A buffered response."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class StreamResponse:
    """A close-delimited streaming response (SSE)."""

    chunks: AsyncIterator[bytes]
    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(payload: Any, status: int = 200,
                  headers: Optional[Dict[str, str]] = None) -> Response:
    """A JSON body with the right content type."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    merged = {"Content-Type": "application/json"}
    if headers:
        merged.update(headers)
    return Response(status=status, headers=merged, body=body)


#: The dispatcher signature both network faces drive.
Dispatcher = Callable[[Request], "Awaitable[Response | StreamResponse]"]


# ---------------------------------------------------------------------------
# stdlib asyncio server
# ---------------------------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on immediate EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before a request
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {key: values[-1] for key, values
             in parse_qs(split.query, keep_blank_values=True).items()}
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body over {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    return Request(method=method.upper(), path=unquote(split.path),
                   query=query, headers=headers, body=body)


def _head_bytes(status: int, headers: Dict[str, str]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def serve_connection(dispatch: Dispatcher,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
    """Handle one connection: read a request, dispatch, respond, close."""
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            response = await dispatch(request)
        except HttpError as exc:
            response = json_response({"error": exc.message},
                                     status=exc.status)
        except Exception as exc:  # last-ditch; handlers map their own
            response = json_response({"error": f"internal error: {exc}"},
                                     status=500)
        if isinstance(response, StreamResponse):
            headers = {"Connection": "close", **response.headers}
            writer.write(_head_bytes(response.status, headers))
            await writer.drain()
            async for chunk in response.chunks:
                writer.write(chunk)
                await writer.drain()
        else:
            headers = {"Connection": "close",
                       "Content-Length": str(len(response.body)),
                       **response.headers}
            writer.write(_head_bytes(response.status, headers))
            writer.write(response.body)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        pass  # client went away mid-stream; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


# ---------------------------------------------------------------------------
# ASGI adapter (optional uvicorn front)
# ---------------------------------------------------------------------------


class AsgiAdapter:
    """The same dispatcher as an ASGI 3 application.

    ``lifespan`` startup/shutdown map onto the app's background
    scheduler (``start_background``/``stop_background`` when the
    wrapped object provides them), so ``uvicorn repro_app`` runs the
    job queue exactly like the stdlib server does.
    """

    def __init__(self, dispatch: Dispatcher,
                 app: Optional[Any] = None) -> None:
        self.dispatch = dispatch
        self.app = app

    async def __call__(self, scope: Dict[str, Any],
                       receive: Callable[[], Awaitable[Dict[str, Any]]],
                       send: Callable[[Dict[str, Any]], Awaitable[None]],
                       ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body"):
                break
        headers = {name.decode("latin-1").lower(): value.decode("latin-1")
                   for name, value in scope.get("headers", [])}
        query = {key: values[-1] for key, values in parse_qs(
            scope.get("query_string", b"").decode("latin-1"),
            keep_blank_values=True).items()}
        request = Request(method=scope["method"].upper(),
                          path=scope["path"], query=query,
                          headers=headers, body=body)
        try:
            response = await self.dispatch(request)
        except HttpError as exc:
            response = json_response({"error": exc.message},
                                     status=exc.status)
        if isinstance(response, StreamResponse):
            await send({"type": "http.response.start",
                        "status": response.status,
                        "headers": self._headers(response.headers)})
            async for chunk in response.chunks:
                await send({"type": "http.response.body", "body": chunk,
                            "more_body": True})
            await send({"type": "http.response.body", "body": b""})
        else:
            headers = {"content-length": str(len(response.body)),
                       **response.headers}
            await send({"type": "http.response.start",
                        "status": response.status,
                        "headers": self._headers(headers)})
            await send({"type": "http.response.body",
                        "body": response.body})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                if self.app is not None and \
                        hasattr(self.app, "start_background"):
                    await self.app.start_background()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                if self.app is not None and \
                        hasattr(self.app, "stop_background"):
                    await self.app.stop_background()
                await send({"type": "lifespan.shutdown.complete"})
                return

    @staticmethod
    def _headers(headers: Dict[str, str]):
        return [(name.lower().encode("latin-1"), value.encode("latin-1"))
                for name, value in headers.items()]
