"""Job model and priority queue of the simulation service.

A :class:`Job` is one admitted submission: a validated
:class:`~repro.engine.spec.SweepSpec` plus its queue metadata, its
:class:`~repro.obs.streaming.StreamingTracer` (the SSE feed), its
:class:`~repro.engine.jobs.CancelToken`, and — once finished — its
serialized results. Jobs live in memory for the server's lifetime and
are looked up by an unguessable hex id.

:class:`JobQueue` orders queued jobs by ``(priority desc, arrival)``:
higher ``priority`` runs sooner, ties run first-come-first-served. The
queue is only touched from the asyncio thread (submission handlers and
the scheduler loop); job *state* is additionally written by the worker
thread executing the job, which is safe because every cross-thread
field is a single atomic assignment read for display only.

Timekeeping follows the cache layer's rule: wall-clock timestamps
(``time.time()``) are reported to clients, but every *duration* (queue
wait, run time) is measured between ``time.monotonic()`` samples so a
wall-clock step cannot produce negative or inflated latencies.
"""

from __future__ import annotations

import heapq
import itertools
import secrets
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.jobs import CancelToken
from repro.obs.streaming import StreamingTracer
from repro.server.schemas import Submission

__all__ = ["Job", "JobQueue",
           "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED"]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can no longer leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


def _job_id() -> str:
    return secrets.token_hex(8)


@dataclass
class Job:
    """One admitted submission, across its whole lifecycle."""

    submission: Submission
    id: str = field(default_factory=_job_id)
    state: str = QUEUED
    #: Wall-clock timestamps for display.
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic marks for durations.
    _created_mono: float = field(default_factory=time.monotonic)
    _started_mono: Optional[float] = None
    _finished_mono: Optional[float] = None
    #: Progress + results, written by the worker thread.
    cells_total: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    cache_stats: Optional[Dict[str, int]] = None
    tracer: StreamingTracer = field(default=None)  # type: ignore[assignment]
    cancel: CancelToken = field(default_factory=CancelToken)

    def __post_init__(self) -> None:
        if self.tracer is None:
            self.tracer = StreamingTracer(cancel=self.cancel)
        self.cells_total = self.submission.cells

    # ------------------------------------------------------------------

    @property
    def client(self) -> str:
        return self.submission.client

    @property
    def priority(self) -> int:
        return self.submission.priority

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def mark_started(self) -> None:
        self.state = RUNNING
        self.started_at = time.time()
        self._started_mono = time.monotonic()

    def mark_finished(self, state: str, error: Optional[str] = None) -> None:
        self.state = state
        self.error = error
        self.finished_at = time.time()
        self._finished_mono = time.monotonic()

    # ------------------------------------------------------------------

    @property
    def queue_seconds(self) -> float:
        """Monotonic time spent queued (ongoing if not started)."""
        end = self._started_mono
        if end is None:
            end = (self._finished_mono if self._finished_mono is not None
                   else time.monotonic())
        return max(0.0, end - self._created_mono)

    @property
    def run_seconds(self) -> float:
        """Monotonic time spent running (ongoing if not finished)."""
        if self._started_mono is None:
            return 0.0
        end = (self._finished_mono if self._finished_mono is not None
               else time.monotonic())
        return max(0.0, end - self._started_mono)

    def status_payload(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "client": self.client,
            "priority": self.priority,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": round(self.queue_seconds, 3),
            "run_seconds": round(self.run_seconds, 3),
            "progress": {
                "cells_total": self.cells_total,
                "cells_done": self.tracer.cells_done,
                "runs_done": self.tracer.runs_done,
                "kernels_done": self.tracer.kernels_done,
                "events": len(self.tracer),
            },
            "spec": self.submission.spec.to_payload(),
            "links": {
                "self": f"/v1/jobs/{self.id}",
                "result": f"/v1/jobs/{self.id}/result",
                "events": f"/v1/jobs/{self.id}/events",
            },
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats
        return payload


class JobQueue:
    """Priority queue of queued jobs (higher priority first, then FIFO).

    Cancelled-while-queued jobs stay in the heap (removal from the
    middle of a heap is O(n)); :meth:`pop` simply skips them — they
    already left the admission accounting via ``on_cancel_queued``.
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._counter = itertools.count()

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, next(self._counter), job))

    def pop(self) -> Optional[Job]:
        """Highest-priority queued job, or ``None`` when drained."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == QUEUED and not job.cancel.cancelled:
                return job
        return None

    def __len__(self) -> int:
        return sum(1 for _, _, job in self._heap
                   if job.state == QUEUED and not job.cancel.cancelled)
