"""Simulation-as-a-service: an async job API over the sweep engine.

``repro.server`` exposes the whole reproduction pipeline over HTTP:
clients POST simulate/sweep specs, poll job status, stream per-kernel
progress as Server-Sent Events, and fetch results that are
byte-identical to a direct :func:`repro.api.sweep` run. Jobs flow
through admission control (queue-depth shedding, per-client quotas)
into a priority queue, then execute on worker threads against the
shared result cache — so any number of concurrent clients asking for
overlapping cells trigger exactly one computation per cell.

Pure stdlib: the built-in asyncio HTTP server needs nothing installed;
when uvicorn happens to be present the same app serves through its
ASGI adapter instead. Start it with ``python -m repro serve`` or
:func:`repro.api.serve`.
"""

from repro.server.admission import AdmissionController, AdmissionDecision
from repro.server.app import DEFAULT_HOST, DEFAULT_PORT, ReproServer, run
from repro.server.http import AsgiAdapter, Request, Response, StreamResponse
from repro.server.queue import Job, JobQueue
from repro.server.schemas import (
    MAX_CELLS_PER_JOB,
    Submission,
    parse_simulate,
    parse_sweep,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsgiAdapter",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobQueue",
    "MAX_CELLS_PER_JOB",
    "ReproServer",
    "Request",
    "Response",
    "StreamResponse",
    "Submission",
    "parse_simulate",
    "parse_sweep",
    "run",
]
