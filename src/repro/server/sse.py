"""Server-Sent Events: the ``GET /v1/jobs/{id}/events`` stream.

SSE (``text/event-stream``) over the stdlib server: one long-lived
response whose body is a sequence of ``event:``/``id:``/``data:``
frames, consumable with ``curl -N`` or a browser ``EventSource``. The
stream bridges a job's :class:`~repro.obs.streaming.StreamingTracer`
(appended to by the worker thread) into the asyncio response: the
generator drains whatever arrived since its cursor, sleeps briefly, and
repeats until the job reaches a terminal state *and* the backlog is
fully flushed, then emits one final ``done`` frame.

Event schema (``data:`` is one JSON object per frame)::

    event: kernel | run | sweep | memo | shard | done
    id:    <monotone sequence number within the job>
    data:  {"phase": "...", ...tracepoint args}

Kernel frames arrive in exactly the simulator's emission order — the
same order :class:`~repro.obs.EventTracer` records — so a streamed
timeline can be replayed against a recorded one
(``tests/test_server.py`` pins this).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict

from repro.obs.tracer import Event

__all__ = ["format_frame", "job_event_stream"]

#: Seconds between drain polls while the job is still producing.
DEFAULT_SSE_POLL_SECONDS = 0.05

#: Comment frame emitted while waiting, so proxies/clients see a live
#: connection even during long silent stretches (keep-alive).
HEARTBEAT_EVERY_POLLS = 100


def format_frame(event: Event) -> bytes:
    """One tracer event as an SSE frame."""
    data = dict(event.args)
    data["phase"] = event.phase
    return (f"event: {event.kind}\n"
            f"id: {event.seq}\n"
            f"data: {json.dumps(data, sort_keys=True)}\n\n").encode()


def done_frame(payload: Dict[str, Any]) -> bytes:
    """The terminal frame closing every job stream."""
    return (f"event: done\ndata: "
            f"{json.dumps(payload, sort_keys=True)}\n\n").encode()


async def job_event_stream(job: "Any",
                           poll_seconds: float = DEFAULT_SSE_POLL_SECONDS,
                           ) -> AsyncIterator[bytes]:
    """Async byte-chunk iterator over one job's live event feed.

    ``job`` is a :class:`~repro.server.queue.Job`; the stream works for
    queued, running, and already-finished jobs alike (a finished job
    replays its whole buffered feed, then closes — SSE consumers that
    connect late still see every frame).
    """
    cursor = 0
    idle_polls = 0
    while True:
        cursor, events = job.tracer.drain(cursor)
        for event in events:
            yield format_frame(event)
        if job.terminal:
            # Drain once more: the worker thread may have appended
            # between our drain and the state read.
            cursor, events = job.tracer.drain(cursor)
            for event in events:
                yield format_frame(event)
            payload: Dict[str, Any] = {
                "state": job.state,
                "cells_done": job.tracer.cells_done,
                "kernels_done": job.tracer.kernels_done,
                "events": cursor,
            }
            if job.tracer.dropped:
                payload["events_dropped"] = job.tracer.dropped
            if job.error is not None:
                payload["error"] = job.error
            yield done_frame(payload)
            return
        if events:
            idle_polls = 0
        else:
            idle_polls += 1
            if idle_polls % HEARTBEAT_EVERY_POLLS == 0:
                yield b": keep-alive\n\n"
        await asyncio.sleep(poll_seconds)
