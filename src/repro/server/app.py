"""The simulation service: routes, scheduler, and job execution.

:class:`ReproServer` wires the pieces together. The asyncio thread owns
the HTTP surface, the admission controller, and the job queue; a small
scheduler task moves queued jobs onto a thread pool whenever a worker
slot frees up. Each worker thread executes its job's cells *serially*
through :func:`~repro.engine.dist.run_job_shared` against the server's
:class:`~repro.engine.cache.SharedResultCache` — concurrency comes from
multiple jobs in flight at once, and overlapping jobs dedupe through
the cache's claim/lease protocol instead of computing the same cell
twice. Cells run in-process (not forked) so the job's
:class:`~repro.obs.streaming.StreamingTracer` sees kernel-level
progress for the SSE feed and its
:class:`~repro.engine.jobs.CancelToken` can unwind a running cell at
the next kernel boundary.

Endpoints (all JSON unless noted)::

    POST /v1/simulate          submit one cell            -> 202 job
    POST /v1/sweep             submit a grid              -> 202 job
    GET  /v1/jobs              list jobs + occupancy
    GET  /v1/jobs/{id}         job status + progress
    GET  /v1/jobs/{id}/result  results (409 until done)
    GET  /v1/jobs/{id}/events  live SSE stream (text/event-stream)
    POST /v1/jobs/{id}/cancel  cancel queued/running job
    GET  /healthz              liveness
    GET  /metrics              admission + cache + job metrics

Saturation answers ``429`` with a ``Retry-After`` header; malformed
bodies answer ``400``; unknown jobs ``404``.

A job's ``result`` body carries every cell's ``to_dict()`` payload in
spec order, reconstructed exactly the way :func:`repro.api.sweep`
serializes its outcomes — a served sweep is byte-identical JSON to a
direct in-process run of the same spec.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Union

from repro.engine.cache import CacheStats, SharedResultCache
from repro.engine.dist import HOW_RUN, run_job_shared
from repro.engine.runner import _reconstruct
from repro.errors import ConfigError, JobCancelled
from repro.obs.metrics import MetricRegistry
from repro.server.http import (
    AsgiAdapter,
    Request,
    Response,
    StreamResponse,
    json_response,
    serve_connection,
)
from repro.server.admission import AdmissionController
from repro.server.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
)
from repro.server.schemas import (
    DEFAULT_CLIENT,
    Submission,
    parse_simulate,
    parse_sweep,
)
from repro.server.sse import job_event_stream

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ReproServer", "run"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


def _stats_dict(stats: CacheStats) -> Dict[str, int]:
    """A cache-stats counter block as reported to clients."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "stores": stats.stores,
        "deduped": stats.deduped,
        "claims": stats.claims,
        "reclaims": stats.reclaims,
        "invalidations": stats.invalidations,
    }


class ReproServer:
    """The simulation-as-a-service app (framework-independent).

    ``cache`` accepts an existing :class:`SharedResultCache` or a cache
    root path (``None`` = the cache's default root), so several server
    processes — or a server and CLI sweeps — can share one result store
    and dedupe against each other exactly like distributed workers do.
    """

    def __init__(self, cache: Union[SharedResultCache, str, None] = None,
                 max_inflight: int = 2, max_queue_depth: int = 64,
                 client_quota: int = 8) -> None:
        if isinstance(cache, SharedResultCache):
            self.cache = cache
        else:
            self.cache = SharedResultCache(root=cache)
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue_depth=max_queue_depth,
            client_quota=client_quota)
        self.queue = JobQueue()
        self.jobs: Dict[str, Job] = {}
        self.metrics = MetricRegistry("server")
        self.asgi = AsgiAdapter(self.dispatch, app=self)
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission.max_inflight,
            thread_name_prefix="repro-job")
        self._stats_lock = threading.Lock()
        self._wakeup = asyncio.Event()
        self._scheduler_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ---- routing ---------------------------------------------------------

    _ROUTES = (
        ("POST", re.compile(r"^/v1/simulate$"), "_handle_simulate"),
        ("POST", re.compile(r"^/v1/sweep$"), "_handle_sweep"),
        ("GET", re.compile(r"^/v1/jobs$"), "_handle_jobs"),
        ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]+)$"),
         "_handle_status"),
        ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]+)/result$"),
         "_handle_result"),
        ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]+)/events$"),
         "_handle_events"),
        ("POST", re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]+)/cancel$"),
         "_handle_cancel"),
        ("GET", re.compile(r"^/v1/protocols$"), "_handle_protocols"),
        ("GET", re.compile(r"^/healthz$"), "_handle_health"),
        ("GET", re.compile(r"^/metrics$"), "_handle_metrics"),
    )

    async def dispatch(self, request: Request,
                       ) -> "Response | StreamResponse":
        """Route one request; shared by the stdlib and ASGI faces."""
        path_known = False
        for method, pattern, name in self._ROUTES:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_known = True
            if request.method != method:
                continue
            handler: Callable = getattr(self, name)
            return await handler(request, **match.groupdict())
        if path_known:
            return json_response(
                {"error": f"method {request.method} not allowed here"},
                status=405)
        return json_response(
            {"error": f"unknown path {request.path!r}"}, status=404)

    def _job_or_none(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    # ---- submission ------------------------------------------------------

    async def _submit(self, request: Request,
                      parser: Callable[[Any], Submission]) -> Response:
        try:
            body = request.json()
            submission = parser(body)
        except ConfigError as exc:
            return json_response({"error": str(exc)}, status=400)
        header_client = request.client_header
        if (header_client and isinstance(body, dict)
                and "client" not in body
                and submission.client == DEFAULT_CLIENT):
            submission = dataclasses.replace(submission,
                                             client=header_client[:120])
        decision = self.admission.admit(submission.client)
        if not decision.admitted:
            return json_response(
                {"error": decision.reason,
                 "retry_after": decision.retry_after},
                status=decision.status,
                headers={"Retry-After": str(int(decision.retry_after))})
        job = Job(submission=submission)
        self.jobs[job.id] = job
        self.admission.on_enqueue(job.client)
        self.queue.push(job)
        self._wakeup.set()
        return json_response(job.status_payload(), status=202)

    async def _handle_simulate(self, request: Request) -> Response:
        return await self._submit(request, parse_simulate)

    async def _handle_sweep(self, request: Request) -> Response:
        return await self._submit(request, parse_sweep)

    # ---- inspection ------------------------------------------------------

    async def _handle_protocols(self, request: Request) -> Response:
        """The protocol registry, as clients may submit it: every
        :class:`~repro.coherence.registry.ProtocolSpec` as name,
        description, table requirement, and config knobs (api 4.0)."""
        from repro.coherence.registry import protocols

        return json_response(
            {"protocols": [spec.to_dict() for spec in protocols()]})

    async def _handle_jobs(self, request: Request) -> Response:
        jobs: List[Dict[str, Any]] = [{
            "id": job.id,
            "state": job.state,
            "client": job.client,
            "priority": job.priority,
            "cells_total": job.cells_total,
            "cells_done": job.tracer.cells_done,
        } for job in self.jobs.values()]
        return json_response({"jobs": jobs,
                              "admission": self.admission.snapshot()})

    async def _handle_status(self, request: Request,
                             job_id: str) -> Response:
        job = self._job_or_none(job_id)
        if job is None:
            return json_response({"error": f"no job {job_id!r}"},
                                 status=404)
        return json_response(job.status_payload())

    async def _handle_result(self, request: Request,
                             job_id: str) -> Response:
        job = self._job_or_none(job_id)
        if job is None:
            return json_response({"error": f"no job {job_id!r}"},
                                 status=404)
        if not job.terminal:
            return json_response(
                {"error": f"job {job_id} is {job.state}; result not "
                          f"ready", "state": job.state},
                status=409)
        if job.state != DONE:
            return json_response(
                {"error": f"job {job_id} ended {job.state}: "
                          f"{job.error or 'no result'}",
                 "state": job.state},
                status=409)
        assert job.result is not None
        return json_response(job.result)

    async def _handle_events(self, request: Request,
                             job_id: str) -> "Response | StreamResponse":
        job = self._job_or_none(job_id)
        if job is None:
            return json_response({"error": f"no job {job_id!r}"},
                                 status=404)
        return StreamResponse(
            chunks=job_event_stream(job),
            headers={"Content-Type": "text/event-stream",
                     "Cache-Control": "no-cache"})

    # ---- cancellation ----------------------------------------------------

    async def _handle_cancel(self, request: Request,
                             job_id: str) -> Response:
        job = self._job_or_none(job_id)
        if job is None:
            return json_response({"error": f"no job {job_id!r}"},
                                 status=404)
        if job.terminal:
            return json_response(job.status_payload())  # idempotent
        if job.state == QUEUED:
            job.cancel.cancel("cancelled while queued")
            job.mark_finished(CANCELLED, error="cancelled before start")
            self.admission.on_cancel_queued(job.client)
            return json_response(job.status_payload())
        # Running: trip the token; the worker unwinds at the next kernel
        # boundary (or cell start) and abandons its shared-cache claim.
        job.cancel.cancel("cancelled by client")
        return json_response(job.status_payload(), status=202)

    # ---- health + metrics ------------------------------------------------

    async def _handle_health(self, request: Request) -> Response:
        return json_response({"status": "ok",
                              "jobs": len(self.jobs),
                              "running": self.admission.running})

    async def _handle_metrics(self, request: Request) -> Response:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        with self._stats_lock:
            cache = _stats_dict(self.cache.stats)
        return json_response({
            "admission": self.admission.snapshot(),
            "cache": cache,
            "jobs_by_state": states,
            "server": self.metrics.to_dict(include_children=False),
        })

    # ---- scheduling + execution ------------------------------------------

    async def start_background(self) -> None:
        """Start the scheduler task (idempotent)."""
        if self._scheduler_task is None or self._scheduler_task.done():
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self._scheduler())

    async def stop_background(self) -> None:
        """Stop the scheduler and the worker pool."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for job in self.jobs.values():
            if not job.terminal:
                job.cancel.cancel("server shutting down")
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _scheduler(self) -> None:
        """Move queued jobs onto worker threads as slots free up."""
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self.admission.has_slot():
                job = self.queue.pop()
                if job is None:
                    break
                job.mark_started()
                self.admission.on_start(job.client)
                future = loop.run_in_executor(self._executor,
                                              self._run_job, job)
                future.add_done_callback(
                    functools.partial(self._on_job_done, job))

    def _on_job_done(self, job: Job, _future: "asyncio.Future") -> None:
        """Runs on the event loop thread when a worker finishes."""
        self.admission.on_finish(job.client, job.run_seconds)
        self.metrics.count(f"jobs_{job.state}")
        self.metrics.observe("job_seconds", job.run_seconds)
        self._wakeup.set()

    def _run_job(self, job: Job) -> None:
        """Worker-thread body: execute every cell through the shared
        cache, then publish the result and the terminal state.

        Each job gets its own cache *instance* over the server's root +
        salt so its stats start at zero — the result reports exactly
        this job's hit/dedupe behavior — then folds them into the
        server-wide counters.
        """
        cache = SharedResultCache(root=self.cache.root,
                                  salt=self.cache.salt,
                                  lease_seconds=self.cache.lease_seconds,
                                  poll_seconds=self.cache.poll_seconds)
        spec = job.submission.spec
        tracer = job.tracer
        t0 = time.perf_counter()
        try:
            cells = spec.expand()
            tracer.sweep_begin(
                label=f"serve:{spec.kind}:{len(cells)} cells",
                cells=len(cells))
            payloads: List[Dict[str, Any]] = []
            executed = hits = deduped = 0
            for cell_spec in cells:
                tracer.sweep_cell(phase="begin", label=cell_spec.label)
                cell = run_job_shared(cache, cell_spec, tracer=tracer,
                                      cancel=job.cancel)
                tracer.sweep_cell(phase="end", label=cell_spec.label,
                                  cached=cell.how != HOW_RUN,
                                  seconds=cell.seconds)
                if cell.how == HOW_RUN:
                    executed += 1
                elif cell.how == "dedup":
                    deduped += 1
                else:
                    hits += 1
                # Reconstruct-then-serialize is exactly the transform
                # repro.api.sweep applies, keeping served results
                # byte-identical to a direct in-process run.
                payloads.append(
                    _reconstruct(cell_spec, cell.payload).to_dict())
            job.result = {
                "id": job.id,
                "state": DONE,
                "results": payloads,
                "report": {
                    "total_jobs": len(cells),
                    "executed": executed,
                    "cache_hits": hits,
                    "deduped": deduped,
                    "wall_seconds": round(time.perf_counter() - t0, 6),
                },
                "cache": _stats_dict(cache.stats),
            }
            job.cache_stats = _stats_dict(cache.stats)
            job.mark_finished(DONE)
        except JobCancelled as exc:
            job.cache_stats = _stats_dict(cache.stats)
            job.mark_finished(CANCELLED, error=str(exc))
        except Exception as exc:
            job.cache_stats = _stats_dict(cache.stats)
            job.mark_finished(
                FAILED, error=f"{type(exc).__name__}: {exc}")
        finally:
            with self._stats_lock:
                self.cache.stats.merge(cache.stats.snapshot())

    # ---- network faces ---------------------------------------------------

    async def start(self, host: str = DEFAULT_HOST,
                    port: int = DEFAULT_PORT) -> asyncio.AbstractServer:
        """Bind the stdlib server and start the scheduler; returns the
        bound :class:`asyncio.Server` (``port=0`` picks a free port —
        read it off ``server.sockets[0].getsockname()``)."""
        await self.start_background()
        self._server = await asyncio.start_server(
            functools.partial(serve_connection, self.dispatch),
            host, port)
        return self._server

    async def stop(self) -> None:
        """Close the listener and the background machinery."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.stop_background()

    async def serve(self, host: str = DEFAULT_HOST,
                    port: int = DEFAULT_PORT,
                    ready: Optional[Callable[[str], None]] = None) -> None:
        """Serve until cancelled (the blocking entry point)."""
        server = await self.start(host, port)
        if ready is not None:
            bound = server.sockets[0].getsockname()
            ready(f"http://{bound[0]}:{bound[1]}")
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.stop_background()


def run(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
        cache: Union[SharedResultCache, str, None] = None,
        max_inflight: int = 2, max_queue_depth: int = 64,
        client_quota: int = 8, use_uvicorn: Optional[bool] = None,
        ready: Optional[Callable[[str], None]] = None) -> None:
    """Build a :class:`ReproServer` and serve it until interrupted.

    ``use_uvicorn=None`` auto-detects: when uvicorn happens to be
    installed the app runs through its ASGI face, otherwise (the normal
    case — the package needs nothing beyond the stdlib) through the
    built-in asyncio server. ``True`` requires uvicorn; ``False`` forces
    the stdlib path.
    """
    server = ReproServer(cache=cache, max_inflight=max_inflight,
                         max_queue_depth=max_queue_depth,
                         client_quota=client_quota)
    uvicorn = None
    if use_uvicorn is not False:
        try:
            import uvicorn  # type: ignore[no-redef]
        except ImportError:
            uvicorn = None
            if use_uvicorn is True:
                raise ConfigError(
                    "use_uvicorn=True but uvicorn is not installed; "
                    "install it or pass use_uvicorn=False for the "
                    "stdlib server")
    if uvicorn is not None:
        uvicorn.run(server.asgi, host=host, port=port,
                    log_level="warning")
        return
    try:
        asyncio.run(server.serve(host, port, ready=ready))
    except KeyboardInterrupt:
        pass
