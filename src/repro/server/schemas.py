"""Request/response schemas of the simulation service.

Hand-rolled validation over plain dicts — the server has no hard
dependency on FastAPI/pydantic, so the checks a framework would derive
from type annotations live here explicitly. Every parser returns a
:class:`Submission` (a validated :class:`~repro.engine.spec.SweepSpec`
plus queue metadata) or raises :class:`~repro.errors.ConfigError` with
a message the app layer maps to a ``400`` body.

Two request shapes exist:

``POST /v1/simulate`` — one cell::

    {"workload": "square", "protocol": "cpelide", "chiplets": 4,
     "scale": 0.03125, "scheduler": "static", "trace_path": "run",
     "config": {"l2_assoc": 32}, "priority": 0, "client": "alice"}

``POST /v1/sweep`` — a grid::

    {"workloads": ["square", "bfs"], "protocols": ["baseline", "cpelide"],
     "chiplet_counts": [4], "scale": 0.03125, "scheduler": "static",
     "priority": 5, "client": "alice"}

Everything is optional except ``simulate``'s ``workload``; defaults
mirror :func:`repro.api.sweep`. ``config`` carries extra
:class:`~repro.gpu.config.GPUConfig` field overrides by name.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.engine.spec import DEFAULT_PROTOCOLS, DEFAULT_SCALE, SweepSpec
from repro.errors import ConfigError
from repro.gpu.config import GPUConfig

__all__ = ["Submission", "parse_simulate", "parse_sweep"]

#: Client id used when a request names none (no auth layer — the id
#: only partitions quota buckets and job listings).
DEFAULT_CLIENT = "anonymous"

#: Hard cap on cells per submitted job: a single request must not be
#: able to occupy a worker slot for an unbounded stretch. Bigger sweeps
#: split into several jobs and still dedupe through the shared cache.
MAX_CELLS_PER_JOB = 512


@dataclass(frozen=True)
class Submission:
    """A validated job submission: what to run, and how to queue it."""

    spec: SweepSpec
    client: str = DEFAULT_CLIENT
    priority: int = 0

    @property
    def cells(self) -> int:
        return self.spec.num_jobs


def _require_mapping(body: Any) -> Dict[str, Any]:
    if body is None:
        return {}
    if not isinstance(body, dict):
        raise ConfigError(
            f"request body must be a JSON object, got {type(body).__name__}")
    return body

def _reject_unknown(body: Dict[str, Any], allowed: Tuple[str, ...],
                    where: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ConfigError(
            f"{where}: unknown field(s) {unknown}; allowed: {sorted(allowed)}")


def _string(body: Dict[str, Any], name: str, default: Optional[str],
            choices: Optional[Sequence[str]] = None,
            required: bool = False) -> Optional[str]:
    value = body.get(name, default)
    if value is None:
        if required:
            raise ConfigError(f"missing required field {name!r}")
        return None
    if not isinstance(value, str):
        raise ConfigError(f"{name} must be a string, got {value!r}")
    if choices is not None and value not in choices:
        raise ConfigError(
            f"unknown {name} {value!r}; choose from {sorted(choices)}")
    return value


def _number(body: Dict[str, Any], name: str, default: float,
            minimum: float, maximum: float) -> float:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    if not (minimum <= value <= maximum):
        raise ConfigError(
            f"{name} must be in [{minimum:g}, {maximum:g}], got {value!r}")
    return float(value)


def _int(body: Dict[str, Any], name: str, default: int,
         minimum: int, maximum: int) -> int:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if not (minimum <= value <= maximum):
        raise ConfigError(
            f"{name} must be in [{minimum}, {maximum}], got {value!r}")
    return value


def _string_list(body: Dict[str, Any], name: str,
                 choices: Sequence[str]) -> Optional[Tuple[str, ...]]:
    value = body.get(name)
    if value is None:
        return None
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(v, str) for v in value)):
        raise ConfigError(f"{name} must be a non-empty list of strings, "
                          f"got {value!r}")
    bad = sorted(set(value) - set(choices))
    if bad:
        raise ConfigError(
            f"unknown {name} {bad}; choose from {sorted(choices)}")
    return tuple(value)


def _int_list(body: Dict[str, Any], name: str, default: Tuple[int, ...],
              minimum: int, maximum: int) -> Tuple[int, ...]:
    value = body.get(name)
    if value is None:
        return default
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(v, int) and not isinstance(v, bool)
                       for v in value)):
        raise ConfigError(f"{name} must be a non-empty list of integers, "
                          f"got {value!r}")
    for v in value:
        if not (minimum <= v <= maximum):
            raise ConfigError(f"{name} entries must be in "
                              f"[{minimum}, {maximum}], got {v}")
    return tuple(value)


def _config_overrides(body: Dict[str, Any]) -> Dict[str, Any]:
    overrides = body.get("config")
    if overrides is None:
        return {}
    if not isinstance(overrides, dict):
        raise ConfigError(f"config must be an object of GPUConfig field "
                          f"overrides, got {overrides!r}")
    fields = {f.name for f in dataclasses.fields(GPUConfig)}
    unknown = sorted(set(overrides) - fields)
    if unknown:
        raise ConfigError(
            f"config: unknown GPUConfig field(s) {unknown}")
    clashing = sorted(set(overrides) & {"num_chiplets", "scale"})
    if clashing:
        raise ConfigError(
            f"config: {clashing} are set by the top-level "
            f"chiplets/chiplet_counts and scale fields; do not repeat "
            f"them inside config")
    return dict(overrides)


def _queue_fields(body: Dict[str, Any]) -> Tuple[str, int]:
    client = _string(body, "client", DEFAULT_CLIENT) or DEFAULT_CLIENT
    if len(client) > 120:
        raise ConfigError("client id must be at most 120 characters")
    priority = _int(body, "priority", 0, -100, 100)
    return client, priority


def _trace_path(body: Dict[str, Any]) -> Optional[str]:
    from repro.gpu.trace_path import TracePath
    return _string(body, "trace_path", None,
                   choices=tuple(p.value for p in TracePath))


def _workload_choices() -> Tuple[str, ...]:
    from repro.workloads.suite import EXTRA_WORKLOADS, WORKLOAD_NAMES
    return tuple(WORKLOAD_NAMES) + tuple(EXTRA_WORKLOADS)


def _protocol_choices() -> Tuple[str, ...]:
    from repro.coherence.registry import protocol_names
    return tuple(protocol_names())


SIMULATE_FIELDS = ("workload", "protocol", "chiplets", "scale", "scheduler",
                   "trace_path", "config", "priority", "client")

SWEEP_FIELDS = ("workloads", "protocols", "chiplet_counts", "scale",
                "scheduler", "trace_path", "config", "priority", "client")


def parse_simulate(body: Any) -> Submission:
    """Validate a ``POST /v1/simulate`` body into a one-cell submission."""
    body = _require_mapping(body)
    _reject_unknown(body, SIMULATE_FIELDS, "simulate")
    workload = _string(body, "workload", None,
                       choices=_workload_choices(), required=True)
    protocol = _string(body, "protocol", "cpelide",
                       choices=_protocol_choices())
    scale = _number(body, "scale", DEFAULT_SCALE, 1e-4, 1.0)
    chiplets = _int(body, "chiplets", 4, 1, 64)
    scheduler = _string(body, "scheduler", "static",
                        choices=("static", "locality"))
    config = GPUConfig(num_chiplets=chiplets, scale=scale,
                       **_config_overrides(body))
    client, priority = _queue_fields(body)
    spec = SweepSpec(workloads=(workload,), protocols=(protocol,),
                     configs=(config,), scheduler=scheduler,
                     trace_path=_trace_path(body))
    return Submission(spec=spec, client=client, priority=priority)


def parse_sweep(body: Any) -> Submission:
    """Validate a ``POST /v1/sweep`` body into a grid submission."""
    body = _require_mapping(body)
    _reject_unknown(body, SWEEP_FIELDS, "sweep")
    workloads = _string_list(body, "workloads", _workload_choices())
    protocols = (_string_list(body, "protocols", _protocol_choices())
                 or DEFAULT_PROTOCOLS)
    chiplet_counts = _int_list(body, "chiplet_counts", (4,), 1, 64)
    scale = _number(body, "scale", DEFAULT_SCALE, 1e-4, 1.0)
    scheduler = _string(body, "scheduler", "static",
                        choices=("static", "locality"))
    overrides = _config_overrides(body)
    base = GPUConfig(scale=scale, **overrides) if overrides else None
    client, priority = _queue_fields(body)
    spec = SweepSpec.grid(workloads=workloads, protocols=protocols,
                          chiplet_counts=chiplet_counts, scale=scale,
                          scheduler=scheduler, base_config=base,
                          trace_path=_trace_path(body))
    if spec.num_jobs > MAX_CELLS_PER_JOB:
        raise ConfigError(
            f"sweep expands to {spec.num_jobs} cells, over the per-job "
            f"limit of {MAX_CELLS_PER_JOB}; split it into smaller "
            f"submissions (they still dedupe through the shared cache)")
    return Submission(spec=spec, client=client, priority=priority)
