"""Admission control for the simulation service.

Three independent gates run at submission time, before a job is ever
queued (the `robot-buddy` server shape: reject at the door, not after
buying a seat):

* **queue-depth shedding** — when the backlog already holds
  ``max_queue_depth`` jobs, new submissions are shed with ``429`` and a
  ``Retry-After`` estimated from the observed job service rate, so
  well-behaved clients back off for roughly one drain period instead of
  hammering a saturated server;
* **per-client quota** — one client may hold at most ``client_quota``
  *active* (queued + running) jobs, so a single aggressive client
  cannot starve the others out of the queue it shares;
* **cell budget** — enforced earlier by the schema layer
  (:data:`~repro.server.schemas.MAX_CELLS_PER_JOB`), bounding how long
  any single admitted job can occupy a worker slot.

The controller is pure bookkeeping on the asyncio thread: the app layer
calls :meth:`admit` + :meth:`on_enqueue` at submission,
:meth:`on_start` when the scheduler moves a job to a worker, and
:meth:`on_finish`/:meth:`on_cancel_queued` when the job leaves the
system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = ["AdmissionController", "AdmissionDecision"]

#: Fallback job-duration estimate (seconds) before any job finished.
INITIAL_JOB_SECONDS = 5.0

#: EMA weight of the newest observed job duration.
EMA_ALPHA = 0.3


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    status: int = 202
    reason: str = ""
    retry_after: float = 0.0


class AdmissionController:
    """Submission gatekeeping + occupancy accounting."""

    def __init__(self, max_inflight: int = 2, max_queue_depth: int = 64,
                 client_quota: int = 8) -> None:
        self.max_inflight = max(1, max_inflight)
        self.max_queue_depth = max(1, max_queue_depth)
        self.client_quota = max(1, client_quota)
        self.queued = 0
        self.running = 0
        self.rejected = 0
        self.finished = 0
        self._active_per_client: Dict[str, int] = {}
        self._ema_job_seconds = INITIAL_JOB_SECONDS

    # ------------------------------------------------------------------

    def retry_after(self) -> float:
        """Seconds a shed client should wait: roughly how long the
        current backlog takes to drain through the worker slots."""
        backlog = max(1, self.queued + self.running)
        return max(1.0, math.ceil(
            backlog * self._ema_job_seconds / self.max_inflight))

    def active_for(self, client: str) -> int:
        """Queued + running jobs held by one client."""
        return self._active_per_client.get(client, 0)

    def admit(self, client: str) -> AdmissionDecision:
        """Check the gates; does NOT book occupancy (see on_enqueue)."""
        if self.queued >= self.max_queue_depth:
            self.rejected += 1
            return AdmissionDecision(
                admitted=False, status=429,
                reason=(f"queue full ({self.queued} jobs deep, limit "
                        f"{self.max_queue_depth}); retry later"),
                retry_after=self.retry_after())
        if self.active_for(client) >= self.client_quota:
            self.rejected += 1
            return AdmissionDecision(
                admitted=False, status=429,
                reason=(f"client {client!r} already has "
                        f"{self.active_for(client)} active jobs (quota "
                        f"{self.client_quota}); wait for one to finish"),
                retry_after=self.retry_after())
        return AdmissionDecision(admitted=True)

    # ------------------------------------------------------------------

    def on_enqueue(self, client: str) -> None:
        self.queued += 1
        self._active_per_client[client] = self.active_for(client) + 1

    def on_start(self, client: str) -> None:
        self.queued -= 1
        self.running += 1

    def on_cancel_queued(self, client: str) -> None:
        """A job left the queue without ever starting."""
        self.queued -= 1
        self._drop_client(client)

    def on_finish(self, client: str, seconds: float) -> None:
        """A started job reached a terminal state."""
        self.running -= 1
        self.finished += 1
        self._drop_client(client)
        if seconds > 0:
            self._ema_job_seconds = (EMA_ALPHA * seconds + (1 - EMA_ALPHA)
                                     * self._ema_job_seconds)

    def _drop_client(self, client: str) -> None:
        remaining = self.active_for(client) - 1
        if remaining > 0:
            self._active_per_client[client] = remaining
        else:
            self._active_per_client.pop(client, None)

    # ------------------------------------------------------------------

    def has_slot(self) -> bool:
        """Whether a worker slot is free for the scheduler to fill."""
        return self.running < self.max_inflight

    def snapshot(self) -> Dict[str, float]:
        """Occupancy + knobs for the metrics endpoint."""
        return {
            "queued": self.queued,
            "running": self.running,
            "rejected": self.rejected,
            "finished": self.finished,
            "max_inflight": self.max_inflight,
            "max_queue_depth": self.max_queue_depth,
            "client_quota": self.client_quota,
            "clients_active": len(self._active_per_client),
            "ema_job_seconds": round(self._ema_job_seconds, 3),
        }
