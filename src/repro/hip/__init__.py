"""HIP-like runtime API (Listings 1 and 2 of the paper)."""

from repro.hip.runtime import HipRuntime, KernelHandle

__all__ = ["HipRuntime", "KernelHandle"]
