"""A HIP-flavoured runtime front end.

The paper extends AMD's ROCm/HIP stack with two API calls (Sec. III-B):

* ``hipSetAccessMode(kernel, buf, 'R'|'R/W')`` — Listing 1 — labels a
  data structure's access mode for one kernel;
* ``hipSetAccessModeRange(kernel, buf, mode, ranges)`` — Listing 2 —
  additionally provides per-logical-chiplet byte ranges;

plus ``hipSetDevice`` to bind a stream to chiplet(s). This module exposes
those calls over the simulator so the examples read like the paper's
listings:

    rt = HipRuntime(GPUConfig(scale=1/32), protocol="cpelide")
    a = rt.hip_malloc("A", 1 << 20)
    c = rt.hip_malloc("C", 1 << 20)
    square = rt.kernel("square", compute_intensity=4.0)
    rt.hip_set_access_mode(square, a, "R")
    rt.hip_set_access_mode(square, c, "R/W")
    rt.hip_launch_kernel(square)
    result = rt.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.dispatcher import KernelResources
from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult, Simulator
from repro.memory.address import AddressSpace, Buffer
from repro.workloads.base import (
    AccessKind,
    Kernel,
    KernelArg,
    PatternKind,
    Workload,
)


def _parse_mode(mode: str) -> AccessMode:
    normalized = mode.strip().upper().replace("W", "W")
    if normalized == "R":
        return AccessMode.R
    if normalized in ("R/W", "RW"):
        return AccessMode.RW
    raise ValueError(f"access mode must be 'R' or 'R/W', got {mode!r}")


@dataclass
class KernelHandle:
    """A kernel being assembled through the HIP-style calls."""

    name: str
    compute_intensity: float = 4.0
    lds_per_line: float = 0.0
    num_wgs: int = 960
    stream_id: int = 0
    resources: Optional["KernelResources"] = None
    _args: List[KernelArg] = field(default_factory=list)

    def to_kernel(self) -> Kernel:
        """Freeze into an immutable dispatch description."""
        if not self._args:
            raise ValueError(
                f"kernel {self.name!r} has no access-mode annotations; call "
                "hip_set_access_mode for every data structure it touches")
        return Kernel(name=self.name, args=tuple(self._args),
                      num_wgs=self.num_wgs,
                      compute_intensity=self.compute_intensity,
                      lds_per_line=self.lds_per_line,
                      stream_id=self.stream_id,
                      resources=self.resources)


class HipRuntime:
    """Listing 1/2-style front end over :class:`~repro.gpu.sim.Simulator`."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 protocol: str = "cpelide") -> None:
        self.config = config or GPUConfig()
        self.protocol = protocol
        self.space = AddressSpace()
        self._kernels: List[Kernel] = []
        self._stream_masks: Dict[int, Tuple[int, ...]] = {}

    # ---- memory ---------------------------------------------------------

    def hip_malloc(self, name: str, size: int) -> Buffer:
        """Allocate a page-aligned device buffer (UVM address space)."""
        return self.space.alloc(name, size)

    # ---- kernels ---------------------------------------------------------

    def kernel(self, name: str, compute_intensity: float = 4.0,
               lds_per_line: float = 0.0, num_wgs: int = 960,
               stream: int = 0,
               resources: Optional["KernelResources"] = None) -> KernelHandle:
        """Start assembling a kernel dispatch.

        ``resources`` optionally declares register/LDS usage for the
        CU-occupancy model (:mod:`repro.cp.dispatcher`).
        """
        return KernelHandle(name=name, compute_intensity=compute_intensity,
                            lds_per_line=lds_per_line, num_wgs=num_wgs,
                            stream_id=stream, resources=resources)

    def hip_set_access_mode(self, kernel: KernelHandle, buf: Buffer,
                            mode: str,
                            pattern: PatternKind = PatternKind.PARTITIONED,
                            kind: Optional[AccessKind] = None,
                            touches: float = 1.0) -> None:
        """Listing 1: label ``buf``'s access mode for ``kernel``."""
        kernel._args.append(KernelArg(buffer=buf, mode=_parse_mode(mode),
                                      pattern=pattern, kind=kind,
                                      touches=touches))

    def hip_set_access_mode_range(self, kernel: KernelHandle, buf: Buffer,
                                  mode: str,
                                  ranges: Sequence[Tuple[int, int, int]],
                                  kind: Optional[AccessKind] = None,
                                  touches: float = 1.0) -> None:
        """Listing 2: label access mode plus per-logical-chiplet ranges.

        ``ranges`` is a sequence of ``(start, end, logical_chiplet)``
        tuples, like the ``rangeChiplet`` vector of Listing 2. The current
        trace generator derives each chiplet's touched lines from the
        pattern, so the explicit ranges serve as the annotation CPElide
        consumes; they must cover the kernel's actual accesses.
        """
        parsed = _parse_mode(mode)
        for start, end, logical in ranges:
            if not buf.base <= start < end <= buf.end:
                raise ValueError(
                    f"range [{start:#x}, {end:#x}) for logical chiplet "
                    f"{logical} falls outside buffer {buf.name!r}")
        kernel._args.append(KernelArg(buffer=buf, mode=parsed,
                                      pattern=PatternKind.PARTITIONED,
                                      kind=kind, touches=touches))

    def hip_set_device(self, stream: int, chiplets: Sequence[int]) -> None:
        """Bind ``stream`` to a chiplet subset (multi-stream workloads)."""
        mask = tuple(sorted(set(chiplets)))
        if not mask:
            raise ValueError("a stream must be bound to at least one chiplet")
        self._stream_masks[stream] = mask

    def hip_launch_kernel(self, kernel: KernelHandle) -> None:
        """Enqueue the kernel for execution (hipLaunchKernelGGL)."""
        import dataclasses

        frozen = kernel.to_kernel()
        mask = self._stream_masks.get(frozen.stream_id)
        if mask is not None:
            frozen = dataclasses.replace(frozen, chiplet_mask=mask)
        self._kernels.append(frozen)

    # ---- execution --------------------------------------------------------

    def run(self, name: str = "hip-app") -> SimulationResult:
        """Simulate everything launched so far (hipDeviceSynchronize)."""
        workload = Workload(name=name, space=self.space,
                            kernels=list(self._kernels))
        return Simulator(self.config, self.protocol).run(workload)
