"""Figure 9 — 4-chiplet memory-subsystem energy, normalized to Baseline.

Component breakdown: L1I, L1D, LDS, L2, NOC, DRAM. The paper's headline:
CPElide reduces average energy 14% over Baseline and 11% over HMG; neither
scheme moves L1/LDS energy, L2 energy barely changes (the L2 is accessed
whether the access hits or misses), and the differences come from network
traffic and DRAM accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.energy.model import EnergyModel
from repro.experiments.runner import DEFAULT_SCALE, MatrixResult, run_matrix
from repro.metrics.report import format_table, geomean

PROTOCOLS = ("baseline", "cpelide", "hmg")
COMPONENTS = EnergyModel.COMPONENTS


@dataclass
class Fig9Result:
    """Per-(workload, protocol) component energies in joules."""

    matrix: MatrixResult
    breakdowns: Dict[str, Dict[str, Dict[str, float]]]

    def normalized_total(self, workload: str, protocol: str) -> float:
        """One bar height: total energy normalized to Baseline's."""
        base = self.breakdowns[workload]["baseline"]["total"]
        return self.breakdowns[workload][protocol]["total"] / base

    def geomean_normalized(self, protocol: str) -> float:
        """Average normalized energy over all workloads."""
        return geomean(self.normalized_total(name, protocol)
                       for name in self.breakdowns)


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None) -> Fig9Result:
    """Run the Fig. 9 sweep (4 chiplets)."""
    matrix = run_matrix(workloads=workloads, protocols=PROTOCOLS,
                        chiplet_counts=(num_chiplets,), scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    model = EnergyModel()
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in matrix.workloads():
        breakdowns[name] = {}
        for protocol in PROTOCOLS:
            res = matrix.get(name, protocol, num_chiplets)
            breakdowns[name][protocol] = res.metrics.energy(model)
    return Fig9Result(matrix=matrix, breakdowns=breakdowns)


def report(result: Fig9Result) -> str:
    """Render the Fig. 9 stacked bars (component shares + totals)."""
    rows: List[List[object]] = []
    for name, per_proto in result.breakdowns.items():
        base_total = per_proto["baseline"]["total"]
        for protocol in PROTOCOLS:
            bd = per_proto[protocol]
            rows.append([name, protocol[0].upper()]
                        + [bd[c] / base_total for c in COMPONENTS]
                        + [bd["total"] / base_total])
    rows.append(["GEOMEAN", "C"] + [""] * len(COMPONENTS)
                + [result.geomean_normalized("cpelide")])
    rows.append(["GEOMEAN", "H"] + [""] * len(COMPONENTS)
                + [result.geomean_normalized("hmg")])
    return format_table(
        ["workload", "cfg"] + list(COMPONENTS) + ["total"], rows,
        title=("Fig. 9: 4-chiplet memory-subsystem energy normalized to "
               "Baseline (B/C/H)"))
