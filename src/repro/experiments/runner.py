"""Shared experiment execution: (workload x protocol x chiplets) sweeps.

Since the engine landed, every sweep here is expanded, cached, and
(optionally) parallelized by :class:`repro.engine.SweepRunner`; the
figure/table harnesses keep their historical :class:`MatrixResult` shape
on top of it. ``jobs``/``cache`` thread through from the CLIs' ``--jobs``
and ``--no-cache`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.runner import ProgressFn, SweepReport, SweepRunner
from repro.engine.spec import DEFAULT_SCALE, SweepSpec
from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult

#: Chiplet counts evaluated in Fig. 8 (Sec. IV-E: ROCm memory-aperture
#: constraints cap the paper's sweep at 7 chiplets).
CHIPLET_COUNTS = (2, 4, 6, 7)


@dataclass
class MatrixResult:
    """Results of a (workload x protocol x chiplets) sweep."""

    scale: float
    #: (workload, protocol, num_chiplets) -> simulation result.
    cells: Dict[Tuple[str, str, int], SimulationResult] = field(
        default_factory=dict)
    #: Execution summary of the engine sweep that produced the cells.
    report: Optional[SweepReport] = None

    def get(self, workload: str, protocol: str,
            num_chiplets: int) -> SimulationResult:
        """Fetch one cell."""
        return self.cells[(workload, protocol, num_chiplets)]

    def speedup_over_baseline(self, workload: str, protocol: str,
                              num_chiplets: int) -> float:
        """Fig. 8 normalization: Baseline cycles / protocol cycles, at the
        same chiplet count."""
        base = self.get(workload, "baseline", num_chiplets).wall_cycles
        other = self.get(workload, protocol, num_chiplets).wall_cycles
        return base / other

    def workloads(self) -> List[str]:
        """Distinct workload names present, in insertion order."""
        seen: List[str] = []
        for name, _, _ in self.cells:
            if name not in seen:
                seen.append(name)
        return seen


def run_one(workload: str, protocol: str, num_chiplets: int = 4,
            scale: float = DEFAULT_SCALE, *,
            cache: bool = False) -> SimulationResult:
    """Run one (workload, protocol, chiplet-count) cell."""
    from repro.api import simulate
    config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    return simulate(workload, protocol, config=config, cache=cache)


def run_matrix(workloads: Optional[Sequence[str]] = None,
               protocols: Sequence[str] = ("baseline", "hmg", "cpelide"),
               chiplet_counts: Sequence[int] = (4,),
               scale: float = DEFAULT_SCALE,
               scheduler: str = "static",
               jobs: int = 1,
               cache: bool = False,
               progress: Optional[ProgressFn] = None) -> MatrixResult:
    """Run a full sweep through the engine.

    Defaults to all 24 workloads on 4 chiplets, serially and uncached
    (the benchmark suite must measure real simulations); the experiment
    CLIs pass ``jobs``/``cache`` from their flags.
    """
    spec = SweepSpec.grid(workloads=workloads, protocols=protocols,
                          chiplet_counts=chiplet_counts, scale=scale,
                          scheduler=scheduler)
    sweep = SweepRunner(jobs=jobs, cache=cache, progress=progress).run(spec)
    result = MatrixResult(scale=scale, report=sweep.report)
    for outcome in sweep.outcomes:
        key = (outcome.workload, outcome.job.protocol,
               outcome.job.config.num_chiplets)
        result.cells[key] = outcome.result
    return result
