"""Shared experiment execution: (workload x protocol x chiplets) sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult, Simulator
from repro.workloads.suite import WORKLOAD_NAMES, build_workload

#: Default simulation scale for experiments (1/32 of Table I capacities;
#: workload footprints shrink by the same factor).
DEFAULT_SCALE = 1 / 32

#: Chiplet counts evaluated in Fig. 8 (Sec. IV-E: ROCm memory-aperture
#: constraints cap the paper's sweep at 7 chiplets).
CHIPLET_COUNTS = (2, 4, 6, 7)


@dataclass
class MatrixResult:
    """Results of a (workload x protocol x chiplets) sweep."""

    scale: float
    #: (workload, protocol, num_chiplets) -> simulation result.
    cells: Dict[Tuple[str, str, int], SimulationResult] = field(
        default_factory=dict)

    def get(self, workload: str, protocol: str,
            num_chiplets: int) -> SimulationResult:
        """Fetch one cell."""
        return self.cells[(workload, protocol, num_chiplets)]

    def speedup_over_baseline(self, workload: str, protocol: str,
                              num_chiplets: int) -> float:
        """Fig. 8 normalization: Baseline cycles / protocol cycles, at the
        same chiplet count."""
        base = self.get(workload, "baseline", num_chiplets).wall_cycles
        other = self.get(workload, protocol, num_chiplets).wall_cycles
        return base / other

    def workloads(self) -> List[str]:
        """Distinct workload names present, in insertion order."""
        seen: List[str] = []
        for name, _, _ in self.cells:
            if name not in seen:
                seen.append(name)
        return seen


def run_one(workload: str, protocol: str, num_chiplets: int = 4,
            scale: float = DEFAULT_SCALE) -> SimulationResult:
    """Run one (workload, protocol, chiplet-count) cell."""
    config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    return Simulator(config, protocol).run(build_workload(workload, config))


def run_matrix(workloads: Optional[Sequence[str]] = None,
               protocols: Sequence[str] = ("baseline", "hmg", "cpelide"),
               chiplet_counts: Sequence[int] = (4,),
               scale: float = DEFAULT_SCALE) -> MatrixResult:
    """Run a full sweep. Defaults to all 24 workloads on 4 chiplets."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    result = MatrixResult(scale=scale)
    for num_chiplets in chiplet_counts:
        config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
        for name in names:
            for protocol in protocols:
                workload = build_workload(name, config)
                sim = Simulator(config, protocol)
                result.cells[(name, protocol, num_chiplets)] = sim.run(workload)
    return result
