"""Table III — qualitative comparison of CPElide to prior work.

The table is a statement about mechanisms, not a measurement; this module
encodes it and, where our implementations exist (Baseline/HMG/CPElide),
cross-checks the claims against observable simulator behaviour (the
benchmark asserts those checks).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.report import format_table

#: Feature -> scheme -> supported. Schemes follow the paper's columns.
FEATURES: Dict[str, Dict[str, bool]] = {
    "No coherence protocol changes": {
        "HMG": False, "Spandex": False, "hLRC": False, "Halcone": False,
        "SW DSM": False, "HW DSM": False, "CPElide": True,
    },
    "No L2 cache structure changes": {
        "HMG": False, "Spandex": False, "hLRC": False, "Halcone": False,
        "SW DSM": True, "HW DSM": False, "CPElide": True,
    },
    "Reduces kernel boundary synchronization overhead": {
        "HMG": True, "Spandex": True, "hLRC": True, "Halcone": True,
        "SW DSM": True, "HW DSM": True, "CPElide": True,
    },
    "Avoids remote coherence traffic": {
        "HMG": False, "Spandex": False, "hLRC": False, "Halcone": True,
        "SW DSM": False, "HW DSM": False, "CPElide": True,
    },
    "Designed for chiplet-based systems": {
        "HMG": True, "Spandex": False, "hLRC": False, "Halcone": False,
        "SW DSM": False, "HW DSM": False, "CPElide": True,
    },
    "Access to scheduling information to reduce overhead": {
        "HMG": False, "Spandex": False, "hLRC": False, "Halcone": False,
        "SW DSM": False, "HW DSM": False, "CPElide": True,
    },
}

SCHEMES: Tuple[str, ...] = ("HMG", "Spandex", "hLRC", "Halcone",
                            "SW DSM", "HW DSM", "CPElide")


def run() -> Dict[str, Dict[str, bool]]:
    """Return the feature matrix."""
    return FEATURES


def report(features: Dict[str, Dict[str, bool]]) -> str:
    """Render Table III."""
    rows: List[List[object]] = []
    for feature, per_scheme in features.items():
        rows.append([feature] + ["yes" if per_scheme[s] else "no"
                                 for s in SCHEMES])
    return format_table(["Feature"] + list(SCHEMES), rows,
                        title="Table III: CPElide versus prior work")
