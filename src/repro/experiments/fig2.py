"""Figure 2 — performance lost to missing inter-kernel L2 reuse.

The paper compares its workloads on a 4-chiplet GPU against an equivalent
(but infeasible to build) monolithic GPU with the same total CUs and
aggregate L2: the chiplet GPU loses 54% on average, in line with prior
work's 29-45% [116, 142].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.sim import Simulator
from repro.metrics.report import format_table, geomean
from repro.workloads.suite import WORKLOAD_NAMES, build_workload


@dataclass
class Fig2Result:
    """Per-app slowdown of the 4-chiplet Baseline vs monolithic."""

    slowdowns: Dict[str, float]

    @property
    def average_loss_percent(self) -> float:
        """Geomean performance loss (the paper's headline 54%)."""
        return (geomean(self.slowdowns.values()) - 1.0) * 100.0


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4) -> Fig2Result:
    """Measure Baseline-vs-monolithic slowdown per workload."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    chiplet_cfg = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    mono_cfg = monolithic_equivalent(chiplet_cfg)
    slowdowns: Dict[str, float] = {}
    for name in names:
        chiplet_cycles = Simulator(chiplet_cfg, "baseline").run(
            build_workload(name, chiplet_cfg)).wall_cycles
        mono_cycles = Simulator(mono_cfg, "monolithic").run(
            build_workload(name, mono_cfg)).wall_cycles
        slowdowns[name] = chiplet_cycles / mono_cycles
    return Fig2Result(slowdowns=slowdowns)


def report(result: Fig2Result) -> str:
    """Render the Fig. 2 series."""
    rows: List[List[object]] = [
        [name, s, (s - 1.0) * 100.0]
        for name, s in sorted(result.slowdowns.items())
    ]
    rows.append(["AVERAGE (geomean)",
                 geomean(result.slowdowns.values()),
                 result.average_loss_percent])
    return format_table(
        ["workload", "slowdown vs monolithic", "perf loss %"], rows,
        title=("Fig. 2: 4-chiplet Baseline vs equivalent monolithic GPU "
               "(paper: 54% avg loss)"))
