"""Sec. IV-D claim — Chiplet Coherence Table occupancy across the suite.

Table II's caption data: the workloads have up to 510 dynamic kernels and
at most 11 Chiplet Coherence Table entries, and *never overflow* the
64-entry table. This experiment replays every workload's kernel stream
through the elision engine and records peak occupancy and overflow
evictions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.occupancy import TableOccupancyProfile
from repro.engine.runner import SweepRunner
from repro.engine.spec import SweepSpec
from repro.experiments.runner import DEFAULT_SCALE
from repro.metrics.report import format_table


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None,
        tracer=None) -> Dict[str, TableOccupancyProfile]:
    """Profile table occupancy for every (or the given) workload.

    Runs ``kind="occupancy"`` jobs through the sweep engine (the protocol
    axis is collapsed to CPElide — occupancy is a property of the elision
    engine replay, not of the comparator protocols). ``tracer`` attaches
    an observability sink to the sweep (see :mod:`repro.obs`).
    """
    spec = SweepSpec.grid(workloads=workloads, protocols=("cpelide",),
                          chiplet_counts=(num_chiplets,), scale=scale,
                          kind="occupancy")
    sweep = SweepRunner(jobs=jobs, cache=cache, progress=progress,
                        tracer=tracer).run(spec)
    return {outcome.workload: outcome.result for outcome in sweep.outcomes}


def report(profiles: Dict[str, TableOccupancyProfile]) -> str:
    """Render the occupancy summary."""
    rows: List[List[object]] = []
    for name, profile in profiles.items():
        rows.append([
            name, profile.num_kernels, profile.peak_entries,
            profile.capacity, profile.overflow_evictions,
            f"{profile.elision_rate:.0%}",
        ])
    peak = max(p.peak_entries for p in profiles.values())
    overflows = sum(p.overflow_evictions for p in profiles.values())
    rows.append(["MAX / TOTAL", "", peak, "", overflows, ""])
    return format_table(
        ["workload", "dyn. kernels", "peak entries", "capacity",
         "overflows", "ops elided"],
        rows,
        title=("Table occupancy (paper: <= 11 entries, never overflows "
               "the 64-entry table)"))
