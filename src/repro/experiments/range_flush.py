"""Sec. VI ablation — fine-grained hardware range-based flush.

Plain CPElide must flush/invalidate a *whole* L2 even when only some
addresses need it (the software hints are virtual, the L2 is physical).
The paper sketches a hardware extension translating page-wise ranges so
targeted L2 flushes become possible. The ``cpelide-range`` protocol
implements that extension; this ablation measures what it buys on
workloads whose sync ops fire while unrelated data is resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE, run_matrix
from repro.metrics.report import format_table, geomean

#: Defaults: workloads whose sync ops fire while *unrelated* data is
#: resident — graph apps invalidating a frontier/color array while the
#: read-only CSR structure sits in the same L2, plus irregular HPC codes.
DEFAULT_WORKLOADS = ("color", "sssp", "bfs", "fw", "lulesh", "srad")


@dataclass
class RangeFlushResult:
    """Whole-cache vs range-based CPElide."""

    cycles: Dict[str, Dict[str, float]]
    lines_moved: Dict[str, Dict[str, int]]

    def range_speedup(self, workload: str) -> float:
        """Whole-cache cycles / range-op cycles (>1 = extension helps)."""
        per = self.cycles[workload]
        return per["cpelide"] / per["cpelide-range"]

    def geomean_speedup(self) -> float:
        """Average benefit of the hardware extension."""
        return geomean(self.range_speedup(name) for name in self.cycles)


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None) -> RangeFlushResult:
    """Compare whole-cache CPElide against the range extension."""
    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    matrix = run_matrix(workloads=names,
                        protocols=("cpelide", "cpelide-range"),
                        chiplet_counts=(num_chiplets,), scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    cycles: Dict[str, Dict[str, float]] = {}
    lines: Dict[str, Dict[str, int]] = {}
    for name in names:
        cycles[name] = {}
        lines[name] = {}
        for protocol in ("cpelide", "cpelide-range"):
            res = matrix.get(name, protocol, num_chiplets)
            cycles[name][protocol] = res.wall_cycles
            sync = res.metrics.total_sync()
            lines[name][protocol] = (sync.lines_flushed
                                     + sync.lines_invalidated)
    return RangeFlushResult(cycles=cycles, lines_moved=lines)


def report(result: RangeFlushResult) -> str:
    """Render the ablation."""
    rows: List[List[object]] = []
    for name in result.cycles:
        rows.append([
            name,
            result.range_speedup(name),
            result.lines_moved[name]["cpelide"],
            result.lines_moved[name]["cpelide-range"],
        ])
    rows.append(["GEOMEAN", result.geomean_speedup(), "", ""])
    return format_table(
        ["workload", "range-op speedup", "lines (whole-cache)",
         "lines (range)"], rows,
        title="Sec. VI ablation: hardware range-based flush extension")
