"""Sec. VI validation — automated (record-and-replay) annotations.

Runs CPElide twice per workload: once with the hand-written Listing 1/2
annotations, once with annotations *inferred* by recording each kernel's
actual accesses (:mod:`repro.analysis.inference`). If the paper's
automation claim holds, the two runs should be equivalent — same elision
decisions, same performance — meaning most programmers would never write
an annotation by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.inference import (
    compare_annotations,
    replay_with_inferred_annotations,
)
from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.metrics.report import format_table, geomean
from repro.workloads.suite import build_workload

DEFAULT_WORKLOADS = ("square", "hotspot3d", "color", "lud",
                     "rnn-gru-large", "srad")


@dataclass
class InferenceResult:
    """Hand-annotated vs recorder-annotated CPElide."""

    #: workload -> (hand cycles, inferred cycles, hand ops, inferred ops,
    #: mode accuracy).
    rows: Dict[str, "tuple[float, float, int, int, float]"]

    def cycle_ratio(self, workload: str) -> float:
        """Inferred cycles / hand cycles (1.0 = identical performance)."""
        hand, inferred, *_ = self.rows[workload]
        return inferred / hand

    def geomean_ratio(self) -> float:
        """Average equivalence across workloads."""
        return geomean(self.cycle_ratio(name) for name in self.rows)


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4) -> InferenceResult:
    """Compare hand vs inferred annotations under CPElide."""
    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    rows: Dict[str, "tuple[float, float, int, int, float]"] = {}
    for name in names:
        hand_workload = build_workload(name, config)
        stats = compare_annotations(hand_workload, config)
        hand = Simulator(config, "cpelide").run(hand_workload)
        inferred_workload = replay_with_inferred_annotations(
            build_workload(name, config), config)
        inferred = Simulator(config, "cpelide").run(inferred_workload)

        def issued(result):
            sync = result.metrics.total_sync()
            return sync.acquires_issued + sync.releases_issued

        rows[name] = (hand.wall_cycles, inferred.wall_cycles,
                      issued(hand), issued(inferred), stats.mode_accuracy)
    return InferenceResult(rows=rows)


def report(result: InferenceResult) -> str:
    """Render the equivalence table."""
    table: List[List[object]] = []
    for name, (hand, inferred, hand_ops, inf_ops, acc) in result.rows.items():
        table.append([name, inferred / hand, hand_ops, inf_ops,
                      f"{acc:.0%}"])
    table.append(["GEOMEAN", result.geomean_ratio(), "", "", ""])
    return format_table(
        ["workload", "inferred/hand cycles", "sync ops (hand)",
         "sync ops (inferred)", "mode accuracy"],
        table,
        title=("Sec. VI automation: CPElide with record-and-replay "
               "inferred annotations"))
