"""Pareto design-space exploration: ``python -m repro explore``.

The paper evaluates one hardware point (Table I). This driver searches
the *design space around it* — chiplet count x Chiplet Coherence Table
capacity x per-chiplet L2 size — for the Pareto frontier of performance
versus hardware cost, with workload scale as the fidelity axis of a
successive-halving schedule:

* every candidate is first evaluated cheaply (small workload scale);
* after each rung, Pareto-dominated candidates are pruned — dominated
  regions stop consuming workers — and only the frontier plus the best
  half survive to the next, more expensive rung;
* the final rung's frontier is the answer.

Each rung is one :class:`~repro.engine.spec.SweepSpec` (the rung's
surviving configs x the seed workloads x {baseline, cpelide}) executed
through the distributed engine, so rung evaluation fans out over worker
processes, every cell lands in the shared
:class:`~repro.engine.cache.SharedResultCache`, and concurrent explorers
dedupe against each other in flight. The seed workloads mirror the
occupancy/capacity experiments: representatives of the reuse families
whose working-set-to-aggregate-L2 ratio drives the paper's results.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.engine.cache import SharedResultCache
from repro.engine.dist import DistSweepRunner
from repro.engine.runner import SweepReport, SweepResult
from repro.engine.spec import SweepSpec
from repro.errors import ConfigError
from repro.gpu.config import MB, GPUConfig
from repro.metrics.report import format_table
from repro.obs.tracer import Tracer

#: Design-space axes (defaults). The paper's point is (4, 8, 8).
DEFAULT_CHIPLET_COUNTS = (2, 4, 6, 8)
DEFAULT_TABLE_WINDOWS = (4, 8, 16)
DEFAULT_L2_MB = (4, 8, 16)

#: Successive-halving fidelity rungs (workload scale, cheap -> faithful).
DEFAULT_RUNGS = (1 / 64, 1 / 32, 1 / 16)
QUICK_RUNGS = (1 / 64, 1 / 32)

#: Seed workloads, one per access/reuse family of the occupancy and
#: capacity experiments: iterative stencil (hotspot), multi-kernel
#: pipeline (backprop), irregular frontier (bfs), streaming (square).
DEFAULT_SEED_WORKLOADS = ("hotspot", "backprop", "bfs", "square")

#: Default protocols evaluated per design point: the paper's mechanism
#: and the implicit-sync baseline it is measured against. ``explore()``
#: accepts any registry protocol via ``protocol=`` (``--protocol`` on
#: the CLI) and measures it against the same baseline.
EXPLORE_PROTOCOLS = ("baseline", "cpelide")

#: Lease lengths searched when the lease axis is enabled (timestamp
#: protocols read ``GPUConfig.lease_kernels``; ``--lease-kernels``).
DEFAULT_LEASES = (2, 4, 8)

#: Hardware-cost proxy constants, in CU-equivalent area units: one CU is
#: the unit; 1 MB of L2 SRAM costs ~4 CU-equivalents; one Chiplet
#: Coherence Table entry is ~32 B of CP SRAM — four orders of magnitude
#: below a CU, but priced non-zero so that of two equal-performance
#: points the smaller table wins the frontier.
L2_AREA_PER_MB = 4.0
TABLE_AREA_PER_ENTRY = 0.005

#: Survivor fraction per successive-halving rung (the Pareto frontier
#: always survives regardless).
KEEP_FRACTION = 0.5


@dataclass(frozen=True)
class DesignPoint:
    """One candidate hardware configuration.

    ``lease`` joins the search space when the swept protocol reads
    ``GPUConfig.lease_kernels`` (the timestamp protocols); ``None``
    leaves the config's lease untouched and the label unchanged. A lease
    is a protocol time constant, not silicon, so it never contributes to
    the area-cost proxy — points differing only in lease compete purely
    on cycles.
    """

    num_chiplets: int
    table_window: int
    l2_mb: int
    lease: Optional[int] = None

    @property
    def label(self) -> str:
        label = f"c{self.num_chiplets}-w{self.table_window}-l2x{self.l2_mb}"
        if self.lease is not None:
            label += f"-ls{self.lease}"
        return label

    @property
    def table_entries(self) -> int:
        """Chiplet Coherence Table capacity (structs/kernel x window)."""
        return 8 * self.table_window

    @property
    def cost(self) -> float:
        """Hardware cost proxy in CU-equivalent area units."""
        per_chiplet = (60 + L2_AREA_PER_MB * self.l2_mb)
        return (self.num_chiplets * per_chiplet
                + TABLE_AREA_PER_ENTRY * self.table_entries)

    def to_config(self, scale: float,
                  base: Optional[GPUConfig] = None) -> GPUConfig:
        base = base or GPUConfig()
        config = dataclasses.replace(
            base, num_chiplets=self.num_chiplets,
            table_kernel_window=self.table_window,
            l2_size=self.l2_mb * MB, scale=scale)
        if self.lease is not None:
            config = dataclasses.replace(config, lease_kernels=self.lease)
        return config

    def to_dict(self) -> Dict[str, Any]:
        return {"num_chiplets": self.num_chiplets,
                "table_window": self.table_window,
                "l2_mb": self.l2_mb,
                "lease": self.lease,
                "table_entries": self.table_entries,
                "cost": round(self.cost, 3),
                "label": self.label}


@dataclass
class PointScore:
    """One design point's evaluation at one rung."""

    point: DesignPoint
    cycles: float        # measured-protocol cycles over the seed workloads
    speedup: float       # baseline cycles / measured-protocol cycles
    elided: int          # sync ops elided across the seed workloads

    def dominates(self, other: "PointScore") -> bool:
        """Pareto dominance on (cycles, cost): at least as good on both
        objectives and strictly better on one."""
        return (self.cycles <= other.cycles
                and self.point.cost <= other.point.cost
                and (self.cycles < other.cycles
                     or self.point.cost < other.point.cost))

    def to_dict(self) -> Dict[str, Any]:
        return {"point": self.point.to_dict(),
                "cycles": self.cycles,
                "speedup": round(self.speedup, 4),
                "elided": self.elided}


@dataclass
class RungReport:
    """One successive-halving rung: who was evaluated, who survived."""

    rung: int
    scale: float
    scores: List[PointScore]
    frontier: List[str]     # labels, cheapest-first
    pruned: List[str]       # labels dropped before the next rung
    report: SweepReport

    def to_dict(self) -> Dict[str, Any]:
        return {"rung": self.rung, "scale": self.scale,
                "scores": [s.to_dict() for s in self.scores],
                "frontier": self.frontier, "pruned": self.pruned,
                "sweep": self.report.summary()}


@dataclass
class ExploreResult:
    """The full exploration: per-rung history plus the final frontier."""

    rungs: List[RungReport]
    frontier: List[PointScore]
    #: Registry name of the measured protocol (scored against baseline).
    protocol: str = "cpelide"

    def to_dict(self) -> Dict[str, Any]:
        return {"rungs": [r.to_dict() for r in self.rungs],
                "frontier": [s.to_dict() for s in self.frontier],
                "protocol": self.protocol}

    def render(self) -> str:
        rows: List[List[object]] = []
        frontier_labels = {s.point.label for s in self.frontier}
        final = self.rungs[-1]
        for score in sorted(final.scores, key=lambda s: s.point.cost):
            rows.append([
                score.point.label,
                score.point.num_chiplets,
                score.point.table_entries,
                score.point.l2_mb,
                f"{score.point.cost:.0f}",
                f"{score.cycles:.3g}",
                f"{score.speedup:.2f}x",
                "*" if score.point.label in frontier_labels else "",
            ])
        evaluated = sum(len(r.scores) for r in self.rungs)
        pruned = sum(len(r.pruned) for r in self.rungs)
        table = format_table(
            ["point", "chiplets", "table", "L2 MB/chiplet", "cost",
             f"{self.protocol} cycles", "vs baseline", "frontier"],
            rows,
            title=(f"Pareto exploration: {len(self.rungs)} rungs, "
                   f"{evaluated} evaluations, {pruned} pruned, "
                   f"{len(self.frontier)} frontier points (*)"))
        return table


def design_points(
        chiplet_counts: Sequence[int] = DEFAULT_CHIPLET_COUNTS,
        table_windows: Sequence[int] = DEFAULT_TABLE_WINDOWS,
        l2_mb: Sequence[int] = DEFAULT_L2_MB,
        leases: Optional[Sequence[int]] = None) -> List[DesignPoint]:
    """The full cartesian candidate grid, in deterministic order.

    ``leases=None`` (the default) omits the lease axis entirely;
    otherwise every point is crossed with each lease length.
    """
    if leases is None:
        return [DesignPoint(num_chiplets=c, table_window=w, l2_mb=m)
                for c in chiplet_counts for w in table_windows for m in l2_mb]
    return [DesignPoint(num_chiplets=c, table_window=w, l2_mb=m, lease=ls)
            for c in chiplet_counts for w in table_windows
            for m in l2_mb for ls in leases]


def seed_spec(points: Sequence[DesignPoint], scale: float,
              workloads: Sequence[str] = DEFAULT_SEED_WORKLOADS,
              base: Optional[GPUConfig] = None,
              protocols: Sequence[str] = EXPLORE_PROTOCOLS) -> SweepSpec:
    """One rung's sweep: every candidate config x seed workloads x
    the measured protocols. Also the ``bench --sweep dist`` seed sweep."""
    configs = tuple(p.to_config(scale, base) for p in points)
    return SweepSpec(workloads=tuple(workloads),
                     protocols=tuple(protocols), configs=configs)


def _score_rung(points: Sequence[DesignPoint], scale: float,
                workloads: Sequence[str], sweep: SweepResult,
                base: Optional[GPUConfig],
                protocol: str = "cpelide") -> List[PointScore]:
    scores: List[PointScore] = []
    for point in points:
        config = point.to_config(scale, base)
        base_cycles = proto_cycles = 0.0
        elided = 0
        for workload in workloads:
            # Match by full config, not just chiplet count: two points
            # can share a chiplet count but differ in L2/table/lease.
            for outcome in sweep.outcomes:
                if (outcome.workload == workload
                        and outcome.job.config == config):
                    if outcome.job.protocol == protocol:
                        result = outcome.result
                        proto_cycles += result.wall_cycles
                        sync = result.metrics.total_sync()
                        elided += (sync.acquires_elided
                                   + sync.releases_elided)
                    elif outcome.job.protocol == "baseline":
                        base_cycles += outcome.result.wall_cycles
        if protocol == "baseline":
            base_cycles = proto_cycles
        scores.append(PointScore(
            point=point, cycles=proto_cycles,
            speedup=(base_cycles / proto_cycles if proto_cycles else 0.0),
            elided=elided))
    return scores


def pareto_frontier(scores: Sequence[PointScore]) -> List[PointScore]:
    """Non-dominated subset on (cycles, cost), cheapest first."""
    frontier = [s for s in scores
                if not any(o.dominates(s) for o in scores if o is not s)]
    return sorted(frontier, key=lambda s: s.point.cost)


def _survivors(scores: List[PointScore]) -> List[PointScore]:
    """Frontier plus the best :data:`KEEP_FRACTION` by scalarized
    cycles x cost (the successive-halving keep rule; at least two)."""
    frontier = pareto_frontier(scores)
    keep = max(2, math.ceil(len(scores) * KEEP_FRACTION))
    by_product = sorted(scores, key=lambda s: s.cycles * s.point.cost)
    kept = {s.point for s in frontier}
    for score in by_product:
        if len(kept) >= keep:
            break
        kept.add(score.point)
    return [s for s in scores if s.point in kept]


def explore(chiplet_counts: Sequence[int] = DEFAULT_CHIPLET_COUNTS,
            table_windows: Sequence[int] = DEFAULT_TABLE_WINDOWS,
            l2_mb: Sequence[int] = DEFAULT_L2_MB,
            workloads: Sequence[str] = DEFAULT_SEED_WORKLOADS,
            rungs: Sequence[float] = DEFAULT_RUNGS,
            workers: int = 1,
            cache: Union[bool, SharedResultCache, None] = True,
            base_config: Optional[GPUConfig] = None,
            progress=None,
            tracer: Optional[Tracer] = None,
            protocol: str = "cpelide",
            leases: Optional[Sequence[int]] = None) -> ExploreResult:
    """Run the successive-halving Pareto search.

    ``workers`` sizes the distributed runner's pool per rung; ``cache``
    is the shared result cache (``True`` = the default cache root), so
    repeated or concurrent explorations share cells. ``protocol`` is the
    measured mechanism — any registry name (api 4.0); it is swept next
    to ``baseline`` and scored against it. ``leases`` adds the
    ``GPUConfig.lease_kernels`` axis to the design space (meaningful for
    the timestamp protocols). Returns the :class:`ExploreResult` with
    the frontier of the final rung.
    """
    from repro.coherence.registry import get_protocol
    get_protocol(protocol)  # ConfigError on unknown names, up front
    if not rungs:
        raise ConfigError("explore() needs at least one fidelity rung")
    if isinstance(cache, SharedResultCache):
        shared = cache
    elif cache:
        shared = SharedResultCache()
    else:
        import tempfile
        shared = SharedResultCache(root=tempfile.mkdtemp(
            prefix="repro-explore-"))
    points = design_points(chiplet_counts, table_windows, l2_mb, leases)
    if not points:
        raise ConfigError("explore() needs a non-empty design space")
    protocols = (("baseline", protocol) if protocol != "baseline"
                 else ("baseline",))
    rung_reports: List[RungReport] = []
    scores: List[PointScore] = []
    for rung_index, scale in enumerate(rungs):
        if progress is not None:
            progress(f"rung {rung_index}: {len(points)} points at scale "
                     f"{scale:g} "
                     f"({len(points) * len(workloads) * len(protocols)} "
                     f"cells)")
        spec = seed_spec(points, scale, workloads, base_config, protocols)
        runner = DistSweepRunner(workers=workers, cache=shared,
                                 progress=progress, tracer=tracer)
        sweep = runner.run(spec)
        scores = _score_rung(points, scale, workloads, sweep, base_config,
                             protocol)
        frontier = pareto_frontier(scores)
        last = rung_index == len(rungs) - 1
        survivors = scores if last else _survivors(scores)
        pruned = sorted(s.point.label for s in scores
                        if s.point not in {t.point for t in survivors})
        rung_reports.append(RungReport(
            rung=rung_index, scale=scale, scores=scores,
            frontier=[s.point.label for s in frontier], pruned=pruned,
            report=sweep.report))
        if progress is not None:
            progress(f"rung {rung_index}: frontier "
                     f"{[s.point.label for s in frontier]}, "
                     f"pruned {len(pruned)}")
        points = [s.point for s in survivors]
    return ExploreResult(rungs=rung_reports,
                         frontier=pareto_frontier(scores),
                         protocol=protocol)
