"""CLI for regenerating any figure/table: ``python -m repro.experiments``.

Examples:

    python -m repro.experiments fig2
    python -m repro.experiments fig8 --chiplets 4 --scale 0.03125
    python -m repro.experiments fig8 --jobs 4   # parallel; cached on re-run
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    capacity,
    inference,
    driver_sync,
    fig2,
    fig8,
    fig9,
    fig10,
    hmg_writeback,
    multistream,
    occupancy,
    range_flush,
    reuse,
    scaling,
    scheduler_ablation,
    table1,
    table3,
)

def _engine_kwargs(args) -> dict:
    """``--jobs``/``--no-cache`` threaded to the engine-backed sweeps.

    Progress (including each sweep's jobs-run / cache-hit / wall-seconds
    summary line) prints as the sweep executes.
    """
    return {"jobs": args.jobs, "cache": not args.no_cache,
            "progress": print}


EXPERIMENTS = {
    "table1": lambda args: table1.report(table1.run()),
    "table2": lambda args: reuse.report(reuse.run(scale=args.scale)),
    "table3": lambda args: table3.report(table3.run()),
    "fig2": lambda args: fig2.report(fig2.run(scale=args.scale)),
    "fig8": lambda args: fig8.report(
        fig8.run(chiplet_counts=args.chiplets, scale=args.scale,
                 **_engine_kwargs(args))),
    "fig9": lambda args: fig9.report(
        fig9.run(scale=args.scale, **_engine_kwargs(args))),
    "fig10": lambda args: fig10.report(
        fig10.run(scale=args.scale, **_engine_kwargs(args))),
    "scaling": lambda args: scaling.report(
        scaling.run(scale=args.scale, **_engine_kwargs(args))),
    "multistream": lambda args: multistream.report(
        multistream.run(scale=args.scale, **_engine_kwargs(args))),
    "hmg-wb": lambda args: hmg_writeback.report(
        hmg_writeback.run(scale=args.scale, **_engine_kwargs(args))),
    "range-flush": lambda args: range_flush.report(
        range_flush.run(scale=args.scale, **_engine_kwargs(args))),
    "occupancy": lambda args: occupancy.report(
        occupancy.run(scale=args.scale, **_engine_kwargs(args))),
    "driver-sync": lambda args: driver_sync.report(
        driver_sync.run(scale=args.scale, **_engine_kwargs(args))),
    "scheduler": lambda args: scheduler_ablation.report(
        scheduler_ablation.run(scale=args.scale)),
    "capacity": lambda args: capacity.report(
        capacity.run(scale=args.scale)),
    "inference": lambda args: inference.report(
        inference.run(scale=args.scale)),
}


def main(argv=None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a CPElide paper figure or table.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which figure/table to regenerate")
    parser.add_argument("--scale", type=float, default=1 / 32,
                        help="simulation scale factor (default 1/32)")
    parser.add_argument("--chiplets", type=int, nargs="+",
                        default=[2, 4, 6, 7],
                        help="chiplet counts for fig8 (default 2 4 6 7)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep "
                             "(1 = serial, 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    args = parser.parse_args(argv)

    selected = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in selected:
        start = time.time()
        print(EXPERIMENTS[name](args))
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
