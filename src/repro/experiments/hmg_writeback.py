"""Sec. IV-C ablation — HMG's write-back L2 variant.

HMG's paper evaluated write-through L2s and discussed a write-back
variant; this paper's authors implemented both and measured the write-back
variant 13% worse geomean, because it reduces HMG's precise tracking
benefits — hence the evaluation uses write-through HMG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE, run_matrix
from repro.metrics.report import format_table, geomean
#: Default subset: the irregular / low-reuse workloads where the WB
#: variant's precise-tracking losses (directory pressure, RFO fetches,
#: owner flushes) dominate. See EXPERIMENTS.md for the streaming-store
#: caveat where our first-order WT cost model overestimates WT's penalty.
DEFAULT_WORKLOADS = ("btree", "srad", "lulesh", "pennant", "fw", "bfs")


@dataclass
class HMGWritebackResult:
    """Write-back-vs-write-through HMG cycles."""

    cycles: Dict[str, Dict[str, float]]

    def wb_slowdown(self, workload: str) -> float:
        """Write-back cycles / write-through cycles (>1 = WB worse)."""
        per = self.cycles[workload]
        return per["hmg-wb"] / per["hmg"]

    def geomean_slowdown_percent(self) -> float:
        """Geomean WB degradation (paper: 13%)."""
        return (geomean(self.wb_slowdown(name) for name in self.cycles)
                - 1.0) * 100.0


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None) -> HMGWritebackResult:
    """Compare HMG write-through against HMG write-back."""
    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    matrix = run_matrix(workloads=names, protocols=("hmg", "hmg-wb"),
                        chiplet_counts=(num_chiplets,), scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    cycles: Dict[str, Dict[str, float]] = {}
    for name in names:
        cycles[name] = {
            "hmg": matrix.get(name, "hmg", num_chiplets).wall_cycles,
            "hmg-wb": matrix.get(name, "hmg-wb", num_chiplets).wall_cycles,
        }
    return HMGWritebackResult(cycles=cycles)


def report(result: HMGWritebackResult) -> str:
    """Render the ablation."""
    rows: List[List[object]] = [[name, result.wb_slowdown(name)]
                                for name in result.cycles]
    rows.append(["GEOMEAN SLOWDOWN %", result.geomean_slowdown_percent()])
    return format_table(
        ["workload", "HMG-WB / HMG-WT"], rows,
        title="HMG write-back L2 ablation (paper: WB 13% worse geomean)")
