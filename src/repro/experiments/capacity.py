"""Capacity-crossover study — why the Sec. V-C exceptions happen.

The paper explains its per-app results through the working-set-to-
aggregate-L2 ratio: CPElide's gains need the aggregate L2 to hold the
reused data (e.g., Backprop/Hotspot3D/SSSP lose their benefit at 2
chiplets "since its aggregate L2 cache capacity is insufficient for their
larger memory footprint"). This study sweeps that ratio directly by
scaling a workload's footprint against fixed caches and locates the
crossover where elision stops paying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.metrics.report import format_table
from repro.workloads.suite import build_workload

DEFAULT_FACTORS = (0.5, 1.0, 2.0, 4.0)
DEFAULT_WORKLOAD = "hotspot3d"


@dataclass
class CapacityResult:
    """CPElide speedup vs working-set pressure."""

    workload: str
    #: footprint factor -> (fits ratio, CPElide speedup, L2 miss rate).
    points: Dict[float, "tuple[float, float, float]"]

    def speedup_at(self, factor: float) -> float:
        """CPElide speedup at one footprint factor."""
        return self.points[factor][1]

    def peak_factor(self) -> float:
        """Footprint factor with the largest CPElide gain — the sweet
        spot where the working set exceeds the L3 (so Baseline's
        refetches are expensive) but still fits the aggregate L2 (so
        elision retains it)."""
        return max(self.points, key=lambda f: self.points[f][1])

    def benefit_shrinks_with_pressure(self) -> bool:
        """Whether the gain at the largest footprint is below the peak
        (the Sec. V-C crossover: reuse impossible past the aggregate L2)."""
        factors = sorted(self.points)
        return self.speedup_at(factors[-1]) \
            < self.speedup_at(self.peak_factor())


def run(workload: str = DEFAULT_WORKLOAD,
        factors: Sequence[float] = DEFAULT_FACTORS,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4) -> CapacityResult:
    """Sweep the workload's footprint against fixed caches."""
    points: Dict[float, "tuple[float, float, float]"] = {}
    for factor in factors:
        config = GPUConfig(num_chiplets=num_chiplets,
                           scale=scale).with_footprint_factor(factor)
        cycles = {}
        miss_rate = 0.0
        for protocol in ("baseline", "cpelide"):
            result = Simulator(config, protocol).run(
                build_workload(workload, config))
            cycles[protocol] = result.wall_cycles
            if protocol == "cpelide":
                miss_rate = result.metrics.total_accesses().l2_miss_rate
        footprint = build_workload(workload, config).footprint_bytes()
        fits = config.aggregate_l2_size / footprint
        points[factor] = (fits, cycles["baseline"] / cycles["cpelide"],
                          miss_rate)
    return CapacityResult(workload=workload, points=points)


def report(result: CapacityResult) -> str:
    """Render the sweep."""
    rows: List[List[object]] = []
    for factor in sorted(result.points):
        fits, speedup, miss = result.points[factor]
        rows.append([factor, fits, speedup, miss])
    return format_table(
        ["footprint x", "aggregate L2 / working set", "CPElide speedup",
         "CPElide L2 miss rate"],
        rows,
        title=(f"Capacity crossover ({result.workload}): the gain peaks "
               "when the working set exceeds the L3 but fits the "
               "aggregate L2, and decays once the L2s cannot hold it"))
