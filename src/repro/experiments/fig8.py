"""Figure 8 — performance of CPElide and HMG on 2/4/6/7-chiplet GPUs.

Normalized to Baseline *for each chiplet count* (the figure's caption).
The paper's headline: on 4 chiplets CPElide improves performance 13% over
Baseline and 19% over HMG (17%/20% restricted to the moderate-or-higher
inter-kernel-reuse group), and the trends persist at 2, 6, and 7 chiplets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.runner import CHIPLET_COUNTS, DEFAULT_SCALE, MatrixResult, run_matrix
from repro.metrics.report import format_table, geomean
from repro.workloads.suite import HIGH_REUSE, LOW_REUSE


@dataclass
class Fig8Result:
    """Normalized speedups per (workload, protocol, chiplet count)."""

    matrix: MatrixResult
    chiplet_counts: Tuple[int, ...]

    def speedup(self, workload: str, protocol: str, chiplets: int) -> float:
        """Baseline-normalized speedup of one bar of the figure."""
        return self.matrix.speedup_over_baseline(workload, protocol, chiplets)

    def geomean_speedup(self, protocol: str, chiplets: int,
                        group: Optional[Sequence[str]] = None) -> float:
        """Average bar over a workload group."""
        names = group if group is not None else self.matrix.workloads()
        return geomean(self.speedup(name, protocol, chiplets)
                       for name in names)


def run(workloads: Optional[Sequence[str]] = None,
        chiplet_counts: Sequence[int] = CHIPLET_COUNTS,
        scale: float = DEFAULT_SCALE, jobs: int = 1,
        cache: bool = False, progress=None) -> Fig8Result:
    """Run the full Fig. 8 sweep (through the engine; ``jobs``/``cache``
    come from the CLI's ``--jobs``/``--no-cache``)."""
    matrix = run_matrix(workloads=workloads,
                        protocols=("baseline", "hmg", "cpelide"),
                        chiplet_counts=chiplet_counts, scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    return Fig8Result(matrix=matrix, chiplet_counts=tuple(chiplet_counts))


def report(result: Fig8Result) -> str:
    """Render the Fig. 8 bars as one table per chiplet count, plus a
    terminal bar chart of the 4-chiplet (or first) block."""
    from repro.analysis.charts import grouped_bar_chart

    blocks: List[str] = []
    names = result.matrix.workloads()
    chart_count = 4 if 4 in result.chiplet_counts else result.chiplet_counts[0]
    groups = {
        name: {
            "CPElide": result.speedup(name, "cpelide", chart_count),
            "HMG": result.speedup(name, "hmg", chart_count),
        }
        for name in names
    }
    blocks.append(grouped_bar_chart(
        groups,
        title=(f"Fig. 8 ({chart_count} chiplets): speedup over Baseline "
               "(| = 1.0)")))
    for chiplets in result.chiplet_counts:
        rows: List[List[object]] = []
        for name in names:
            rows.append([
                name,
                result.speedup(name, "cpelide", chiplets),
                result.speedup(name, "hmg", chiplets),
            ])
        rows.append(["GEOMEAN (all)",
                     result.geomean_speedup("cpelide", chiplets),
                     result.geomean_speedup("hmg", chiplets)])
        hi = [n for n in names if n in HIGH_REUSE]
        lo = [n for n in names if n in LOW_REUSE]
        if hi:
            rows.append(["GEOMEAN (mod-high reuse)",
                         result.geomean_speedup("cpelide", chiplets, hi),
                         result.geomean_speedup("hmg", chiplets, hi)])
        if lo:
            rows.append(["GEOMEAN (low reuse)",
                         result.geomean_speedup("cpelide", chiplets, lo),
                         result.geomean_speedup("hmg", chiplets, lo)])
        blocks.append(format_table(
            ["workload", "CPElide", "HMG"], rows,
            title=(f"Fig. 8 ({chiplets} chiplets): speedup normalized to "
                   f"Baseline@{chiplets}")))
    return "\n\n".join(blocks)
