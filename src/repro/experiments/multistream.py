"""Sec. VI multi-stream study.

The paper extends a subset of the benchmarks to run multiple parallel
streams mimicking concurrent jobs [62] (plus gem5-resources' ``streams``):
on 4-chiplet systems CPElide outperforms HMG by 12% on average for these,
with trends mirroring the single-stream workloads.

We build two-job variants: each stream is a full copy of the workload
(separate allocations) bound to half the chiplets via the
``hipSetDevice``-style stream binding of Sec. III-B.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig
from repro.memory.address import AddressSpace
from repro.metrics.report import format_table, geomean
from repro.workloads.base import Kernel, Workload
from repro.workloads.suite import build_workload

DEFAULT_WORKLOADS = ("babelstream", "square", "color", "rnn-gru-large",
                     "hotspot3d", "backprop")
PROTOCOLS = ("baseline", "hmg", "cpelide")


def make_multistream(name: str, config: GPUConfig,
                     num_streams: int = 2) -> Workload:
    """Build an ``num_streams``-job variant of one workload.

    Each stream gets its own copy of the buffers (independent concurrent
    jobs) and a disjoint chiplet mask.
    """
    if num_streams < 1 or num_streams > config.num_chiplets:
        raise ValueError(
            f"num_streams must be in [1, {config.num_chiplets}], "
            f"got {num_streams}")
    space = AddressSpace()
    kernels: List[Kernel] = []
    per_stream = config.num_chiplets // num_streams
    for stream in range(num_streams):
        source = build_workload(name, config)
        mask = tuple(range(stream * per_stream, (stream + 1) * per_stream))
        remap = {}
        for buf in source.space.buffers:
            remap[buf.base] = space.alloc(f"s{stream}:{buf.name}", buf.size)
        for kernel in source.kernels:
            args = tuple(dataclasses.replace(arg, buffer=remap[arg.buffer.base])
                         for arg in kernel.args)
            kernels.append(dataclasses.replace(
                kernel, args=args, stream_id=stream, chiplet_mask=mask))
    return Workload(name=f"{name}-ms{num_streams}", space=space,
                    kernels=kernels, reuse_class=source.reuse_class,
                    description=f"{num_streams} concurrent {name} jobs")


@dataclass
class MultiStreamResult:
    """Per-workload cycles per protocol for the multi-stream variants."""

    cycles: Dict[str, Dict[str, float]]

    def speedup(self, workload: str, protocol: str) -> float:
        """Baseline-normalized speedup."""
        return self.cycles[workload]["baseline"] / self.cycles[workload][protocol]

    def cpelide_vs_hmg_percent(self) -> float:
        """Geomean CPElide improvement over HMG (paper: 12%)."""
        ratios = [per["hmg"] / per["cpelide"] for per in self.cycles.values()]
        return (geomean(ratios) - 1.0) * 100.0


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE, num_streams: int = 2,
        num_chiplets: int = 4,
        include_streams_bench: bool = True, jobs: int = 1,
        cache: bool = False, progress=None) -> MultiStreamResult:
    """Run the multi-stream comparison.

    Includes gem5-resources' natively multi-stream ``streams`` benchmark
    (the one existing multi-stream GPU benchmark, Sec. VI) alongside the
    two-job variants of the Table II subset. The multi-stream variants
    enter the sweep engine as ``("multistream", name, num_streams)``
    workload specs, so they parallelize and cache like any other cell.
    """
    from repro.api import sweep
    from repro.engine.spec import WorkloadSpec

    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    specs: List[WorkloadSpec] = []
    if include_streams_bench:
        specs.append("streams")
    specs.extend(("multistream", name, num_streams) for name in names)
    result = sweep(workloads=specs, protocols=PROTOCOLS,
                   chiplet_counts=(num_chiplets,), scale=scale,
                   jobs=jobs, cache=cache, progress=progress)
    cycles: Dict[str, Dict[str, float]] = {}
    for outcome in result.outcomes:
        label = ("streams" if outcome.workload == "streams"
                 else outcome.workload[:-len(f"-ms{num_streams}")])
        cycles.setdefault(label, {})[outcome.job.protocol] = \
            outcome.result.wall_cycles
    return MultiStreamResult(cycles=cycles)


def report(result: MultiStreamResult) -> str:
    """Render the multi-stream comparison."""
    rows: List[List[object]] = []
    for name in result.cycles:
        rows.append([name, result.speedup(name, "cpelide"),
                     result.speedup(name, "hmg")])
    rows.append(["CPElide vs HMG (avg %)",
                 result.cpelide_vs_hmg_percent(), ""])
    return format_table(
        ["workload (2 streams)", "CPElide", "HMG"], rows,
        title=("Sec. VI multi-stream study: speedup vs Baseline "
               "(paper: CPElide beats HMG by 12%)"))
