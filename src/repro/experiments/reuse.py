"""Table II — reuse classification of the workload suite.

The paper groups applications into moderate-to-high versus low-to-no
inter-kernel reuse by computing "the miss rate reduction from inter-kernel
reuse with no flush/invalidation overhead" (Sec. IV-D). We reproduce the
measurement with the ``nosync`` protocol (Baseline's data path with all
implicit synchronization disabled) and compare each app's measured
reduction against the paper's grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.metrics.report import format_table
from repro.workloads.suite import HIGH_REUSE, WORKLOAD_NAMES, build_workload

#: Miss-rate-reduction threshold between the two groups. The paper calls
#: ">15%" larger reuse (Sec. V-A).
THRESHOLD = 0.15


@dataclass
class ReuseResult:
    """Measured inter-kernel reuse potential per workload."""

    #: workload -> (baseline L2 miss rate, nosync L2 miss rate).
    miss_rates: Dict[str, "tuple[float, float]"]

    def reduction(self, workload: str) -> float:
        """Fractional miss-rate reduction from perfect elision."""
        base, nosync = self.miss_rates[workload]
        if base == 0:
            return 0.0
        return (base - nosync) / base

    def measured_class(self, workload: str) -> str:
        """'high' or 'low' by the measured reduction."""
        return "high" if self.reduction(workload) >= THRESHOLD else "low"

    def paper_class(self, workload: str) -> str:
        """Table II's grouping."""
        return "high" if workload in HIGH_REUSE else "low"

    def agreement(self) -> float:
        """Fraction of workloads whose measured class matches Table II."""
        names = list(self.miss_rates)
        hits = sum(1 for n in names
                   if self.measured_class(n) == self.paper_class(n))
        return hits / len(names)


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4) -> ReuseResult:
    """Measure miss-rate reduction for each workload."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    miss_rates: Dict[str, "tuple[float, float]"] = {}
    for name in names:
        base = Simulator(config, "baseline").run(build_workload(name, config))
        nosync = Simulator(config, "nosync").run(build_workload(name, config))
        miss_rates[name] = (
            base.metrics.total_accesses().l2_miss_rate,
            nosync.metrics.total_accesses().l2_miss_rate,
        )
    return ReuseResult(miss_rates=miss_rates)


def report(result: ReuseResult) -> str:
    """Render the Table II classification."""
    rows: List[List[object]] = []
    for name in result.miss_rates:
        base, nosync = result.miss_rates[name]
        rows.append([name, base, nosync, result.reduction(name) * 100.0,
                     result.measured_class(name), result.paper_class(name)])
    rows.append(["AGREEMENT", "", "", "", "", f"{result.agreement():.0%}"])
    return format_table(
        ["workload", "baseline miss", "no-sync miss", "reduction %",
         "measured", "Table II"], rows,
        title="Table II grouping: inter-kernel reuse potential")
