"""Ablation — locality-aware WG scheduling in conjunction with CPElide.

Sec. VII: intelligent schedulers "could be used in conjunction with
CPElide, which has detailed information about where data is being
accessed and tight coupling with the WG scheduler". This ablation builds
the scenario where scheduling matters: a producer phase restricted to a
chiplet subset, followed by narrow (single-chiplet) consumer kernels.
The default static scheduler always puts narrow kernels on chiplet 0 —
all remote reads; the locality-aware scheduler steers them to the
producer's chiplets, turning the reads local and letting CPElide's
elision pay off on the reused data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cp.packets import AccessMode
from repro.experiments.runner import DEFAULT_SCALE
from repro.gpu.config import GPUConfig
from repro.gpu.sim import Simulator
from repro.memory.address import AddressSpace
from repro.metrics.report import format_table
from repro.workloads.base import Kernel, KernelArg, Workload


def build_producer_consumer(config: GPUConfig,
                            consumer_kernels: int = 12) -> Workload:
    """Producer on chiplets {2,3}; narrow consumers, scheduler's choice."""
    space = AddressSpace()
    data = space.alloc("produced", max(4096, int(4 * 2 ** 20 * config.scale)))
    kernels: List[Kernel] = [
        Kernel("produce", args=(KernelArg(data, AccessMode.RW),),
               chiplet_mask=(2, 3), compute_intensity=2.0),
    ]
    for i in range(consumer_kernels):
        kernels.append(Kernel(
            f"consume{i}", args=(KernelArg(data, AccessMode.R),),
            num_wgs=1,                    # narrow: one chiplet
            compute_intensity=2.0))
    return Workload(name="producer-consumer", space=space, kernels=kernels)


@dataclass
class SchedulerAblationResult:
    """Static vs locality-aware scheduling, per protocol."""

    cycles: Dict[str, Dict[str, float]]
    remote_flits: Dict[str, Dict[str, int]]

    def locality_speedup(self, protocol: str) -> float:
        """Static cycles / locality cycles (>1 = steering helps)."""
        per = self.cycles[protocol]
        return per["static"] / per["locality"]


def run(scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4) -> SchedulerAblationResult:
    """Run the producer-consumer scenario under both schedulers."""
    config = GPUConfig(num_chiplets=num_chiplets, scale=scale)
    cycles: Dict[str, Dict[str, float]] = {}
    remote: Dict[str, Dict[str, int]] = {}
    for protocol in ("baseline", "cpelide"):
        cycles[protocol] = {}
        remote[protocol] = {}
        for scheduler in ("static", "locality"):
            workload = build_producer_consumer(config)
            res = Simulator(config, protocol, scheduler=scheduler).run(workload)
            cycles[protocol][scheduler] = res.wall_cycles
            remote[protocol][scheduler] = res.metrics.total_traffic().remote
    return SchedulerAblationResult(cycles=cycles, remote_flits=remote)


def report(result: SchedulerAblationResult) -> str:
    """Render the ablation."""
    rows: List[List[object]] = []
    for protocol in result.cycles:
        rows.append([
            protocol,
            result.locality_speedup(protocol),
            result.remote_flits[protocol]["static"],
            result.remote_flits[protocol]["locality"],
        ])
    return format_table(
        ["protocol", "locality-sched speedup", "remote flits (static)",
         "remote flits (locality)"],
        rows,
        title=("Scheduler ablation: steering narrow consumers to the "
               "producer's chiplets"))
