"""Table I — simulated baseline GPU parameters."""

from __future__ import annotations

from repro.gpu.config import GPUConfig
from repro.metrics.report import format_table


def run(num_chiplets: int = 4) -> GPUConfig:
    """Build the Table I configuration."""
    return GPUConfig(num_chiplets=num_chiplets)


def report(config: GPUConfig) -> str:
    """Render Table I."""
    return format_table(["GPU Feature", "Configuration"],
                        config.table_rows(),
                        title="Table I: simulated baseline GPU parameters")
