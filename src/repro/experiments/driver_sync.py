"""Sec. VI what-if — managing implicit synchronization at the driver.

Like the CP, the GPU driver knows which data structures each kernel
accesses, so the elision algorithm *could* live there. But the driver
does not know which chiplets a kernel's WGs land on, so the CP would have
to ship its scheduling decisions to the host and wait — prior work shows
such round trips add significant latency [28, 79, 140]. The paper argues
this is why CPElide belongs in the global CP, tightly integrated with the
WG scheduler.

This experiment quantifies the argument: ``cpelide-driver`` makes the
identical elision decisions but pays one host round trip per kernel
launch on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE, run_matrix
from repro.metrics.report import format_table, geomean

DEFAULT_WORKLOADS = ("square", "gaussian", "bfs", "lud", "rnn-gru-large",
                     "pathfinder")


@dataclass
class DriverSyncResult:
    """CP-resident vs driver-resident CPElide."""

    cycles: Dict[str, Dict[str, float]]

    def driver_slowdown(self, workload: str) -> float:
        """Driver-managed cycles / CP-managed cycles (>1 = driver worse)."""
        per = self.cycles[workload]
        return per["cpelide-driver"] / per["cpelide"]

    def geomean_slowdown_percent(self) -> float:
        """Average penalty of moving the mechanism to the driver."""
        return (geomean(self.driver_slowdown(name) for name in self.cycles)
                - 1.0) * 100.0


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None) -> DriverSyncResult:
    """Compare CP-resident CPElide against the driver-resident variant."""
    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    matrix = run_matrix(workloads=names,
                        protocols=("cpelide", "cpelide-driver"),
                        chiplet_counts=(num_chiplets,), scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    cycles: Dict[str, Dict[str, float]] = {}
    for name in names:
        cycles[name] = {
            p: matrix.get(name, p, num_chiplets).wall_cycles
            for p in ("cpelide", "cpelide-driver")
        }
    return DriverSyncResult(cycles=cycles)


def report(result: DriverSyncResult) -> str:
    """Render the comparison."""
    rows: List[List[object]] = [[name, result.driver_slowdown(name)]
                                for name in result.cycles]
    rows.append(["GEOMEAN SLOWDOWN %", result.geomean_slowdown_percent()])
    return format_table(
        ["workload", "driver-managed / CP-managed"], rows,
        title=("Sec. VI what-if: elision at the driver pays a host round "
               "trip per launch"))
