"""Sec. VI scaling study — mimicked 8- and 16-chiplet overhead.

The paper's ROCm version caps real simulation at 7 chiplets, so to study
larger systems it adds extra *sets* of acquires/releases at kernel
boundaries to a 4-chiplet run: 2 sets mimic 8 chiplets, 4 sets mimic 16.
The study is conservative (the extra operations are serialized although a
real larger system would parallelize some), and measures 1% / 2% average
slowdown — CPElide keeps scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.coherence.cpelide import CPElideProtocol
from repro.cp.local_cp import SyncOp
from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement
from repro.experiments.runner import DEFAULT_SCALE
from repro.metrics.report import format_table, geomean

#: Extra acquire/release sets -> chiplet count they mimic.
MIMICKED = {1: 8, 3: 16}

#: Representative subset (full-suite runs are the benches' fig8 job).
DEFAULT_WORKLOADS = ("babelstream", "hotspot3d", "color", "lud",
                     "rnn-gru-large", "srad")


class ScaledCPElideProtocol(CPElideProtocol):
    """CPElide plus ``extra_sets`` duplicated boundary operations.

    Each op the elision engine issues is replayed ``extra_sets`` more
    times, serialized, to mimic the synchronization work of a
    proportionally larger chiplet count (Sec. VI).
    """

    def __init__(self, config, device, extra_sets: int) -> None:
        super().__init__(config, device)
        if extra_sets < 0:
            raise ValueError(f"extra_sets must be >= 0, got {extra_sets}")
        self.extra_sets = extra_sets
        self.name = f"cpelide-x{extra_sets + 1}"

    def on_kernel_launch(self, packet: KernelPacket,
                         placement: Placement) -> List[SyncOp]:
        ops = super().on_kernel_launch(packet, placement)
        mimicked: List[SyncOp] = list(ops)
        for repeat in range(self.extra_sets):
            mimicked.extend(
                SyncOp(op.kind, op.chiplet,
                       reason=f"scaling-mimic-{repeat}:{op.reason}",
                       ranges=op.ranges)
                for op in ops)
        return mimicked


@dataclass
class ScalingResult:
    """Slowdowns of mimicked larger systems vs plain 4-chiplet CPElide."""

    #: workload -> {mimicked chiplet count -> slowdown factor}.
    slowdowns: Dict[str, Dict[int, float]]

    def average_slowdown_percent(self, mimicked_chiplets: int) -> float:
        """Geomean slowdown for one mimicked size (paper: 1% / 2%)."""
        return (geomean(per[mimicked_chiplets]
                        for per in self.slowdowns.values()) - 1.0) * 100.0


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE, jobs: int = 1,
        cache: bool = False, progress=None) -> ScalingResult:
    """Run the mimicked 8/16-chiplet study on a 4-chiplet base.

    The paper's mimic *serializes* the additional chiplets' sets of
    acquires/releases onto the 4-chiplet run's kernel boundaries, so a
    mimicked system with ``k`` extra sets pays the measured boundary
    synchronization time ``k`` more times. (Replaying the duplicated ops
    through the caches is free — flushes are idempotent — so the overhead
    is accounted on the measured sync service time, which is also how the
    study is conservative: a real larger system would overlap the sets.)

    The measured 4-chiplet CPElide runs go through the sweep engine
    (parallel/cached); the mimicked overheads are analytic on top.
    """
    from repro.api import sweep

    names = list(workloads) if workloads is not None else list(DEFAULT_WORKLOADS)
    measured = sweep(workloads=names, protocols=("cpelide",),
                     chiplet_counts=(4,), scale=scale,
                     jobs=jobs, cache=cache, progress=progress)
    slowdowns: Dict[str, Dict[int, float]] = {}
    for name in names:
        result = measured.get(name, "cpelide")
        base = result.wall_cycles
        sync = result.metrics.total_sync_service_cycles
        slowdowns[name] = {}
        for extra_sets, mimicked in MIMICKED.items():
            mimic = base + extra_sets * sync
            slowdowns[name][mimicked] = mimic / base
    return ScalingResult(slowdowns=slowdowns)


def report(result: ScalingResult) -> str:
    """Render the scaling-overhead rows."""
    rows: List[List[object]] = []
    for name, per in result.slowdowns.items():
        rows.append([name] + [per[m] for m in sorted(per)])
    rows.append(["AVG SLOWDOWN %"]
                + [result.average_slowdown_percent(m)
                   for m in sorted(MIMICKED.values())])
    return format_table(
        ["workload", "mimicked 8-chiplet", "mimicked 16-chiplet"], rows,
        title=("Sec. VI scaling study: extra serialized acquire/release "
               "sets (paper: +1% / +2%)"))
