"""Figure 10 — 4-chiplet interconnect traffic in flits, normalized.

Components: L1-to-L2, L2-to-L3, remote. Headlines: CPElide reduces network
traffic 14% over Baseline and 17% over HMG; CPElide cuts L2-L3 traffic 37%
versus HMG (which writes everything through and caches remote data), and
HMG carries 23% more remote traffic than CPElide because of the
invalidations from tying four cache lines to one directory entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import DEFAULT_SCALE, MatrixResult, run_matrix
from repro.metrics.report import format_table, geomean

PROTOCOLS = ("baseline", "cpelide", "hmg")
COMPONENTS = ("l1_l2", "l2_l3", "remote")


@dataclass
class Fig10Result:
    """Per-(workload, protocol) flit counts."""

    matrix: MatrixResult
    traffic: Dict[str, Dict[str, Dict[str, int]]]

    def normalized_total(self, workload: str, protocol: str) -> float:
        """One bar: total flits normalized to Baseline's."""
        base = self.traffic[workload]["baseline"]["total"]
        return self.traffic[workload][protocol]["total"] / base

    def geomean_normalized(self, protocol: str) -> float:
        """Average normalized traffic over all workloads."""
        return geomean(self.normalized_total(name, protocol)
                       for name in self.traffic)

    def component_ratio(self, component: str, protocol_a: str,
                        protocol_b: str) -> float:
        """Aggregate component-flit ratio A/B (e.g. CPElide vs HMG L2-L3)."""
        a = sum(per[protocol_a][component] for per in self.traffic.values())
        b = sum(per[protocol_b][component] for per in self.traffic.values())
        return a / b if b else float("inf")

    def geomean_component_ratio(self, component: str, protocol_a: str,
                                protocol_b: str) -> float:
        """Geomean of per-workload component ratios A/B (the paper's
        per-app average, e.g. "CPElide reduces L2-L3 traffic by 37%
        versus HMG")."""
        return geomean(
            (per[protocol_a][component] + 1) / (per[protocol_b][component] + 1)
            for per in self.traffic.values())


def run(workloads: Optional[Sequence[str]] = None,
        scale: float = DEFAULT_SCALE,
        num_chiplets: int = 4, jobs: int = 1,
        cache: bool = False, progress=None) -> Fig10Result:
    """Run the Fig. 10 sweep (4 chiplets)."""
    matrix = run_matrix(workloads=workloads, protocols=PROTOCOLS,
                        chiplet_counts=(num_chiplets,), scale=scale,
                        jobs=jobs, cache=cache, progress=progress)
    traffic: Dict[str, Dict[str, Dict[str, int]]] = {}
    for name in matrix.workloads():
        traffic[name] = {}
        for protocol in PROTOCOLS:
            res = matrix.get(name, protocol, num_chiplets)
            traffic[name][protocol] = res.metrics.total_traffic().as_dict()
    return Fig10Result(matrix=matrix, traffic=traffic)


def report(result: Fig10Result) -> str:
    """Render the Fig. 10 stacked bars."""
    rows: List[List[object]] = []
    for name, per_proto in result.traffic.items():
        base_total = per_proto["baseline"]["total"]
        for protocol in PROTOCOLS:
            tr = per_proto[protocol]
            rows.append([name, protocol[0].upper()]
                        + [tr[c] / base_total for c in COMPONENTS]
                        + [tr["total"] / base_total])
    rows.append(["GEOMEAN", "C"] + [""] * len(COMPONENTS)
                + [result.geomean_normalized("cpelide")])
    rows.append(["GEOMEAN", "H"] + [""] * len(COMPONENTS)
                + [result.geomean_normalized("hmg")])
    return format_table(
        ["workload", "cfg"] + list(COMPONENTS) + ["total"], rows,
        title="Fig. 10: interconnect flits normalized to Baseline (B/C/H)")
