"""Per-access energy model (Fig. 9)."""

from repro.energy.model import EnergyModel, EnergyParams

__all__ = ["EnergyModel", "EnergyParams"]
