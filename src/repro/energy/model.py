"""Memory-subsystem energy model.

Fig. 9 reports the 4-chiplet memory-subsystem energy divided into L1
instruction and data caches, LDS, L2 cache, NOC, and DRAM, normalized to
Baseline. Like the paper (Sec. IV-B) we use per-access energy models in
the spirit of [30], [31], [45], [104], scaled to the multi-chiplet
hierarchy. Absolute picojoule values are order-of-magnitude estimates —
Fig. 9 only depends on the *relative* costs (DRAM >> NOC/L3 >> L2 > L1 >
LDS) and on the access/traffic counts, which the simulator measures
exactly. The L3 array energy is folded into the NOC component's per-flit
cost on the L2-L3 links, since Fig. 9 has no separate L3 category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.interconnect.noc import TrafficMeter
from repro.metrics.stats import AccessCounts

PJ = 1e-12


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in joules."""

    l1d_access: float = 45.0 * PJ
    l1i_access: float = 30.0 * PJ
    #: Instruction-fetch events per L1D access (proxy; identical across
    #: configurations, so it cancels in the normalized figure).
    l1i_per_l1d: float = 0.5
    lds_access: float = 25.0 * PJ
    l2_access: float = 100.0 * PJ
    #: L1<->L2 on-chiplet link, per flit.
    noc_l1_l2_flit: float = 8.0 * PJ
    #: L2<->L3 network per flit, including amortized L3 array energy.
    noc_l2_l3_flit: float = 30.0 * PJ
    #: Inter-chiplet link, per flit (off-die signaling is costly).
    noc_remote_flit: float = 45.0 * PJ
    #: HBM, per 64B line access.
    dram_access: float = 600.0 * PJ


class EnergyModel:
    """Turns counters into the Fig. 9 component breakdown."""

    COMPONENTS = ("l1i", "l1d", "lds", "l2", "noc", "dram")

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    def breakdown(self, counts: AccessCounts,
                  traffic: TrafficMeter) -> Dict[str, float]:
        """Joules per Fig. 9 component, plus a ``total`` key."""
        p = self.params
        out = {
            "l1i": counts.l1_accesses * p.l1i_per_l1d * p.l1i_access,
            "l1d": counts.l1_accesses * p.l1d_access,
            "lds": counts.lds_accesses * p.lds_access,
            "l2": (counts.l2_accesses + counts.l2_writethroughs) * p.l2_access,
            "noc": (traffic.l1_l2 * p.noc_l1_l2_flit
                    + traffic.l2_l3 * p.noc_l2_l3_flit
                    + traffic.remote * p.noc_remote_flit),
            "dram": counts.dram_accesses * p.dram_access,
        }
        out["total"] = sum(out.values())
        return out
