"""CNN [35] — DNNMark Conv+Pool+FC inference (128x128x3, BS 4).

Feed-forward layers stream activations: each layer's output is consumed
exactly once by the next layer, and the per-layer weights are small. Low
inter-kernel reuse (Table II), and the convolutions are compute-bound —
CPElide and HMG perform similarly to each other and to Baseline for the
compute-bound CNNs (Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import KB, MB, WorkloadBuilder

INPUT_BYTES = 4 * 128 * 128 * 3 * 4      # BS 4, fp32
CONV1_OUT_BYTES = 4 * 128 * 128 * 16 * 4
POOL1_OUT_BYTES = CONV1_OUT_BYTES // 4
CONV2_OUT_BYTES = POOL1_OUT_BYTES * 2
POOL2_OUT_BYTES = CONV2_OUT_BYTES // 4
FC_OUT_BYTES = 64 * KB
CONV1_W = 256 * KB
CONV2_W = 512 * KB
FC_W = 4 * MB


def build(config: GPUConfig) -> Workload:
    """Build the CNN model."""
    b = WorkloadBuilder("cnn", config, reuse_class="low",
                        description="Conv-Pool-Conv-Pool-FC inference, BS 4")
    x = b.buffer("input", INPUT_BYTES)
    c1 = b.buffer("conv1_out", CONV1_OUT_BYTES)
    p1 = b.buffer("pool1_out", POOL1_OUT_BYTES)
    c2 = b.buffer("conv2_out", CONV2_OUT_BYTES)
    p2 = b.buffer("pool2_out", POOL2_OUT_BYTES)
    fc = b.buffer("fc_out", FC_OUT_BYTES)
    w1 = b.buffer("conv1_w", CONV1_W)
    w2 = b.buffer("conv2_w", CONV2_W)
    wf = b.buffer("fc_w", FC_W)

    for image in range(3):
        b.kernel("conv1", [
            KernelArg(x, AccessMode.R, touches=4.0),
            KernelArg(w1, AccessMode.R, pattern=PatternKind.SHARED, touches=3.0),
            KernelArg(c1, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=70.0, lds_per_line=6.0)
        b.kernel("pool1", [
            KernelArg(c1, AccessMode.R),
            KernelArg(p1, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=4.0)
        b.kernel("conv2", [
            KernelArg(p1, AccessMode.R, touches=4.0),
            KernelArg(w2, AccessMode.R, pattern=PatternKind.SHARED, touches=3.0),
            KernelArg(c2, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=80.0, lds_per_line=6.0)
        b.kernel("pool2", [
            KernelArg(c2, AccessMode.R),
            KernelArg(p2, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=4.0)
        b.kernel("fc", [
            KernelArg(p2, AccessMode.R, pattern=PatternKind.SHARED),
            KernelArg(wf, AccessMode.R, pattern=PatternKind.SHARED),
            KernelArg(fc, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=20.0)

    return b.build()
