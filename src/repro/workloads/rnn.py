"""RNN-GRU / RNN-LSTM [94, 95] — DeepBench recurrent inference.

Two input configurations each (Table II): BS 4 / TS 2 / hidden 256 and
BS 16 / TS 4 / hidden 512. Per timestep, each gate's GEMM kernel reads the
*shared* weight matrices (every chiplet reads all weights — good remote
read locality) and the previous hidden state, producing the next hidden
state (producer-consumer inter-kernel reuse). CPElide preserves the reuse
for ~11% over Baseline; HMG slightly outperforms CPElide (~3%) because it
caches remote reads locally while CPElide re-fetches shared weights over
the inter-chiplet links every kernel (Sec. V-A/V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, PatternKind, Workload
from repro.workloads.common import WorkloadBuilder


@dataclass(frozen=True)
class RNNShape:
    """One Table II RNN configuration."""

    cell: str          # "gru" or "lstm"
    batch: int
    timesteps: int
    hidden: int

    @property
    def gates(self) -> int:
        """GEMM kernels per cell step (GRU: 3 gates, LSTM: 4)."""
        return 3 if self.cell == "gru" else 4

    @property
    def weight_bytes(self) -> int:
        """Per-gate recurrent + input weight matrices (fp32)."""
        return 2 * self.hidden * self.hidden * 4

    @property
    def state_bytes(self) -> int:
        """Hidden-state activation buffer."""
        return max(4096, self.batch * self.hidden * 4)


SHAPES = {
    "rnn-gru-small": RNNShape("gru", batch=4, timesteps=2, hidden=256),
    "rnn-gru-large": RNNShape("gru", batch=16, timesteps=4, hidden=512),
    "rnn-lstm-small": RNNShape("lstm", batch=4, timesteps=2, hidden=256),
    "rnn-lstm-large": RNNShape("lstm", batch=16, timesteps=4, hidden=512),
}

#: Timestep loop repetitions so the small configs produce enough dynamic
#: kernels to exercise inter-kernel reuse (DeepBench loops inference).
SEQUENCE_REPEATS = 3


def build_rnn(name: str, config: GPUConfig) -> Workload:
    """Build one of the four Table II RNN configurations."""
    shape = SHAPES[name]
    b = WorkloadBuilder(
        name, config, reuse_class="high",
        description=(f"{shape.cell.upper()} BS:{shape.batch} "
                     f"TS:{shape.timesteps} H:{shape.hidden}"))
    weights = [b.buffer(f"W_{g}", shape.weight_bytes)
               for g in range(shape.gates)]
    h_prev = b.buffer("h_prev", shape.state_bytes)
    h_next = b.buffer("h_next", shape.state_bytes)
    x_in = b.buffer("x", shape.state_bytes)

    def one_sequence(_rep: int) -> None:
        for step in range(shape.timesteps):
            src, dst = (h_prev, h_next) if step % 2 == 0 else (h_next, h_prev)
            for gate, w in enumerate(weights):
                b.kernel(f"{shape.cell}_gate{gate}", [
                    # The GEMM is partitioned by output neurons, so each
                    # chiplet streams its own slice of the weight matrix —
                    # identical across timesteps (the inter-kernel reuse
                    # CPElide preserves by eliding the invalidations).
                    KernelArg(w, AccessMode.R, touches=2.0),
                    # The small input/hidden activations are read by every
                    # chiplet: the remote-read locality HMG exploits by
                    # caching locally and CPElide does not (Sec. V-B).
                    KernelArg(x_in, AccessMode.R, pattern=PatternKind.SHARED),
                    KernelArg(src, AccessMode.R, pattern=PatternKind.SHARED),
                    KernelArg(dst, AccessMode.RW),
                ], compute_intensity=40.0)
            b.kernel(f"{shape.cell}_pointwise", [
                KernelArg(dst, AccessMode.RW, touches=2.0),
            ], compute_intensity=3.0)

    b.repeat(SEQUENCE_REPEATS, one_sequence)
    return b.build()
