"""Backprop [25] — Rodinia neural-network training.

Input (Table II): 65536 input units. Alternates a forward layer kernel
and a weight-adjustment kernel over a large input-to-hidden weight matrix.
Memory-bound with few ALU operations and a load-compute-store phase
structure, so inter-kernel L2 locality on the weight matrix gives CPElide
~10% over Baseline (Sec. V-A). At 2 chiplets the aggregate L2 no longer
holds the footprint and the benefit disappears (Sec. V-C).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

#: 65536 input units x 16 hidden units x 4 B weights.
WEIGHTS_BYTES = 65536 * 16 * 4
INPUT_BYTES = 65536 * 4
HIDDEN_BYTES = 16 * 4 * 1024  # hidden partial sums, padded per WG
EPOCHS = 5


def build(config: GPUConfig) -> Workload:
    """Build the Backprop model."""
    b = WorkloadBuilder("backprop", config, reuse_class="high",
                        description="forward + weight-adjust over 4 MB weights")
    weights = b.buffer("input_weights", WEIGHTS_BYTES)
    inputs = b.buffer("input_units", INPUT_BYTES)
    hidden = b.buffer("hidden_partial", HIDDEN_BYTES)
    delta = b.buffer("hidden_delta", HIDDEN_BYTES)

    def one_epoch(_i: int) -> None:
        b.kernel("layerforward", [
            KernelArg(inputs, AccessMode.R, touches=2.0),
            KernelArg(weights, AccessMode.R),
            KernelArg(hidden, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=9.0, lds_per_line=2.0)
        b.kernel("adjust_weights", [
            KernelArg(delta, AccessMode.R, touches=2.0),
            KernelArg(inputs, AccessMode.R),
            KernelArg(weights, AccessMode.RW),
        ], compute_intensity=8.0)

    b.repeat(EPOCHS, one_epoch)
    return b.build()
