"""Gaussian [25] — Rodinia Gaussian elimination (256x256 input).

Two kernels per elimination step over a small matrix. The footprint is
tiny and there is sufficient memory-level parallelism to hide the L2
misses caused by implicit kernel-boundary synchronization, so although
CPElide improves L2 inter-kernel reuse the end-to-end speedup is small
(Sec. V-A).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

MATRIX_BYTES = 256 * 256 * 4
MULT_BYTES = 256 * 256 * 4
VEC_BYTES = 256 * 4 * 64  # padded
STEPS = 40


def build(config: GPUConfig) -> Workload:
    """Build the Gaussian model."""
    b = WorkloadBuilder("gaussian", config, reuse_class="high",
                        description="elimination steps over a 256x256 matrix")
    matrix = b.buffer("a", MATRIX_BYTES)
    mult = b.buffer("m", MULT_BYTES)
    vec = b.buffer("b", VEC_BYTES)

    def one_step(i: int) -> None:
        remaining = max(0.05, 1.0 - i / STEPS)
        b.kernel("fan1", [
            KernelArg(matrix, AccessMode.R, fraction=remaining),
            KernelArg(mult, AccessMode.RW, fraction=remaining),
        ], compute_intensity=250.0)
        b.kernel("fan2", [
            KernelArg(mult, AccessMode.R, fraction=remaining),
            KernelArg(matrix, AccessMode.RW, fraction=remaining, touches=2.0),
            KernelArg(vec, AccessMode.RW),
        ], compute_intensity=280.0)

    b.repeat(STEPS, one_step)
    return b.build()
