"""BTree [25] — Rodinia B+tree bulk queries (mil.txt: one million keys).

Each query batch traverses pointer-linked tree nodes, touching a fresh
input-dependent subset of a large read-mostly structure — virtually no
inter-kernel reuse (Table II groups it low). CPElide therefore matches
Baseline, while HMG's directory — four lines per entry — suffers many
evictions whose remote invalidations cost it ~15% versus Baseline
(Sec. V-B, Low-to-No Inter-Kernel Reuse).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

TREE_BYTES = 16 * MB
KEYS_BYTES = 4 * MB
RESULTS_BYTES = 4 * MB
BATCHES = 6


def build(config: GPUConfig) -> Workload:
    """Build the BTree model."""
    b = WorkloadBuilder("btree", config, reuse_class="low",
                        description="B+tree range queries, 6 batches")
    tree = b.buffer("knodes", TREE_BYTES)
    keys = b.buffer("keys", KEYS_BYTES)
    results = b.buffer("ans", RESULTS_BYTES)

    def one_batch(i: int) -> None:
        b.kernel("findK", [
            KernelArg(keys, AccessMode.R, fraction=0.25,
                      offset=min(0.75, 0.25 * (i % 4))),
            # Fresh random traversal paths each batch: resample=True.
            KernelArg(tree, AccessMode.R, pattern=PatternKind.RANDOM,
                      fraction=0.15, seed=61),
            KernelArg(results, AccessMode.RW, kind=AccessKind.STORE,
                      fraction=0.25, offset=min(0.75, 0.25 * (i % 4))),
        ], compute_intensity=4.0)
        b.kernel("findRangeK", [
            KernelArg(tree, AccessMode.R, pattern=PatternKind.RANDOM,
                      fraction=0.1, seed=67),
            KernelArg(results, AccessMode.RW, fraction=0.25,
                      offset=min(0.75, 0.25 * (i % 4))),
        ], compute_intensity=4.0)

    b.repeat(BATCHES, one_batch)
    return b.build()
