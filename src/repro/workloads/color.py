"""Color-max [26] — Pannotia greedy graph coloring (AK.gr input).

CSR locality model: each chiplet owns a contiguous node slice, so its
``row_ptr`` and ``col_idx`` (the owned nodes' edge lists) reads are
contiguous and local after first touch, while the neighbour ``colors``
lookups are input-dependent and roam the whole array — the low-locality
remote accesses of Sec. V-B. The many read-only accesses mean avoiding
unnecessary acquires preserves substantial inter-kernel reuse: CPElide
gains ~16% over Baseline (Sec. V-A). HMG caches the roaming neighbour
lookups locally and at their home nodes, but every round's color updates
invalidate those copies (write-through stores invalidate all sharers) and
the cached remote data evicts local reuse — CPElide is ~26% faster than
HMG on the graph workloads (Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

ROW_PTR_BYTES = 2 * MB
COL_IDX_BYTES = 16 * MB
COLORS_BYTES = 2 * MB
MAX_MIN_BYTES = 2 * MB
ROUNDS = 16


def build(config: GPUConfig) -> Workload:
    """Build the Color-max model."""
    b = WorkloadBuilder("color", config, reuse_class="high",
                        description="greedy coloring, 16 rounds over AK.gr")
    row_ptr = b.buffer("row_ptr", ROW_PTR_BYTES)
    col_idx = b.buffer("col_idx", COL_IDX_BYTES)
    colors = b.buffer("colors", COLORS_BYTES)
    max_min = b.buffer("node_value", MAX_MIN_BYTES)

    def one_round(_i: int) -> None:
        # Owned-node edge lists are contiguous (CSR) and reread every
        # round -> real, local inter-kernel reuse.
        b.kernel("color1", [
            KernelArg(row_ptr, AccessMode.R),
            # Frontier-ordered edge-list reads roam the CSR arrays with
            # input-dependent reach; about half the lines recur across
            # rounds (the reuse CPElide preserves at the home L2s).
            KernelArg(col_idx, AccessMode.R, fraction=0.35),
            KernelArg(col_idx, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.2, seed=3, stable_fraction=0.5),
            # Neighbour colors roam the whole array, partly revisited.
            KernelArg(colors, AccessMode.R, pattern=PatternKind.RANDOM,
                      fraction=0.5, seed=5, stable_fraction=0.5),
            KernelArg(max_min, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=3.0)
        b.kernel("color2", [
            KernelArg(max_min, AccessMode.R),
            KernelArg(colors, AccessMode.RW),
        ], compute_intensity=2.0)

    b.repeat(ROUNDS, one_round)
    return b.build()
