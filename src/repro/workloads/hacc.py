"""HACC [78] — CORAL-2 cosmology (Hardware Accelerated Cosmology Code).

N-body short-range force steps over large particle arrays. The footprint
exceeds the aggregate L2, and there is sufficient memory-level parallelism
to hide the L2 misses from implicit synchronization, so CPElide's extra L2
hits do not significantly improve end-to-end time (Sec. V-A); the paper
also groups HACC with the limited-inter-kernel-reuse comparisons against
HMG (Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

POS_BYTES = 12 * MB      # particle positions (x, y, z interleaved)
VEL_BYTES = 12 * MB      # particle velocities
FORCE_BYTES = 12 * MB
NEIGHBOR_BYTES = 8 * MB  # interaction/neighbour lists
TIMESTEPS = 8


def build(config: GPUConfig) -> Workload:
    """Build the HACC model."""
    b = WorkloadBuilder("hacc", config, reuse_class="high",
                        description="n-body force + update steps, 44 MB footprint")
    pos = b.buffer("positions", POS_BYTES)
    vel = b.buffer("velocities", VEL_BYTES)
    force = b.buffer("forces", FORCE_BYTES)
    neighbors = b.buffer("neighbors", NEIGHBOR_BYTES)

    def one_step(_i: int) -> None:
        b.kernel("short_range_force", [
            KernelArg(pos, AccessMode.R, touches=4.0),
            KernelArg(neighbors, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.5, seed=31),
            KernelArg(force, AccessMode.RW),
        ], compute_intensity=60.0)
        b.kernel("update_particles", [
            KernelArg(force, AccessMode.R),
            KernelArg(vel, AccessMode.RW),
            KernelArg(pos, AccessMode.RW),
        ], compute_intensity=6.0)

    b.repeat(TIMESTEPS, one_step)
    return b.build()
