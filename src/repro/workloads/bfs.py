"""BFS [25] — Rodinia breadth-first search (graph128k input).

Frontier-based level-synchronous BFS: two kernels per level over a CSR
graph. Many read-only accesses with input-dependent (irregular) reach;
avoiding unnecessary acquires improves inter-kernel reuse for the graph
structure, but BFS has less potential inter-kernel reuse than Color/SSSP
because each level's frontier touches different neighbourhoods — CPElide
gains ~6% (Sec. V-A). HMG's write-through L2s generate much more L2-L3
traffic here, increasing NOC energy (Sec. V-B Energy).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import WorkloadBuilder

#: graph128k: 128K nodes, ~1M edges in CSR.
NODES_BYTES = 128 * 1024 * 8      # (start, degree) per node
EDGES_BYTES = 1024 * 1024 * 8     # edge list
COST_BYTES = 128 * 1024 * 4
MASK_BYTES = 128 * 1024
LEVELS = 12


def build(config: GPUConfig) -> Workload:
    """Build the BFS model."""
    b = WorkloadBuilder("bfs", config, reuse_class="high",
                        description="level-synchronous BFS, 12 levels")
    nodes = b.buffer("graph_nodes", NODES_BYTES)
    edges = b.buffer("graph_edges", EDGES_BYTES)
    cost = b.buffer("cost", COST_BYTES)
    mask = b.buffer("frontier_mask", MASK_BYTES)
    updating = b.buffer("updating_mask", MASK_BYTES)
    visited = b.buffer("visited", MASK_BYTES)

    def one_level(i: int) -> None:
        # Frontier size ramps up then down across levels.
        frontier = max(0.05, min(0.6, 0.1 * (1 + min(i, LEVELS - 1 - i))))
        b.kernel("bfs_kernel1", [
            KernelArg(mask, AccessMode.R),
            KernelArg(nodes, AccessMode.R, fraction=frontier),
            KernelArg(edges, AccessMode.R, fraction=max(0.02, frontier * 0.4)),
            KernelArg(edges, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=max(0.04, frontier * 0.3), seed=13,
                      stable_fraction=0.4),
            KernelArg(cost, AccessMode.RW, pattern=PatternKind.RANDOM,
                      fraction=frontier * 0.4, seed=17),
            KernelArg(updating, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=3.0)
        b.kernel("bfs_kernel2", [
            KernelArg(updating, AccessMode.RW),
            KernelArg(mask, AccessMode.RW, kind=AccessKind.STORE),
            KernelArg(visited, AccessMode.RW),
        ], compute_intensity=2.0)

    b.repeat(LEVELS, one_level)
    return b.build()
