"""Shared machinery for building workload models.

Every workload module exposes ``build(config) -> Workload``. The builder
scales buffer footprints by ``config.scale`` — the same knob that scales
the cache capacities — so working-set-to-cache ratios match the paper's
at any simulation scale.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.gpu.config import GPUConfig
from repro.memory.address import PAGE_SIZE, AddressSpace, Buffer
from repro.workloads.base import Kernel, KernelArg, Workload

KB = 1024
MB = 1024 * KB


class WorkloadBuilder:
    """Accumulates buffers and kernels into a :class:`Workload`."""

    def __init__(self, name: str, config: GPUConfig, reuse_class: str,
                 description: str = "") -> None:
        self.name = name
        self.config = config
        self.reuse_class = reuse_class
        self.description = description
        self.space = AddressSpace()
        self._kernels: List[Kernel] = []

    def buffer(self, name: str, paper_bytes: int) -> Buffer:
        """Allocate a buffer sized ``paper_bytes`` at paper scale.

        The size is multiplied by ``config.scale`` (never below one page)
        so the structure keeps its relationship to the scaled caches, and
        by ``config.footprint_factor`` for capacity-sensitivity sweeps.
        """
        scaled = max(PAGE_SIZE, int(paper_bytes * self.config.scale
                                    * self.config.footprint_factor))
        return self.space.alloc(name, scaled)

    def kernel(self, name: str, args: List[KernelArg],
               compute_intensity: float = 4.0, lds_per_line: float = 0.0,
               num_wgs: Optional[int] = None, stream: int = 0,
               chiplet_mask: Optional[Tuple[int, ...]] = None) -> None:
        """Append one kernel dispatch."""
        self._kernels.append(Kernel(
            name=name,
            args=tuple(args),
            num_wgs=num_wgs if num_wgs is not None else 16 * self.config.total_cus,
            compute_intensity=compute_intensity,
            lds_per_line=lds_per_line,
            stream_id=stream,
            chiplet_mask=chiplet_mask,
        ))

    def repeat(self, times: int, make_kernels) -> None:
        """Call ``make_kernels(iteration)`` for each of ``times`` iterations."""
        for iteration in range(times):
            make_kernels(iteration)

    def build(self) -> Workload:
        """Freeze into a :class:`Workload`."""
        return Workload(name=self.name, space=self.space,
                        kernels=self._kernels,
                        reuse_class=self.reuse_class,
                        description=self.description)
