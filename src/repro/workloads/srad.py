"""SRAD_v2 [25] — Rodinia speckle-reducing anisotropic diffusion (2048x2048).

Two kernels per iteration over large image and coefficient arrays whose
combined footprint exceeds the aggregate L2 — little exploitable
inter-kernel reuse (Table II). CPElide matches Baseline, while HMG's
4-lines-per-directory-entry evictions generate remote invalidations that
cost it ~15% versus Baseline; with only 2 chiplets HMG fares considerably
better because there are fewer remote nodes (Sec. V-B/V-C).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import WorkloadBuilder

IMAGE_BYTES = 2048 * 2048 * 4
COEFF_BYTES = 2048 * 2048 * 4
DIRECTION_BYTES = 4 * 2048 * 2048 * 4  # dN, dS, dE, dW
ITERATIONS = 10


def build(config: GPUConfig) -> Workload:
    """Build the SRAD_v2 model."""
    b = WorkloadBuilder("srad", config, reuse_class="low",
                        description="diffusion iterations over 48 MB of grids")
    image = b.buffer("J", IMAGE_BYTES)
    coeff = b.buffer("C", COEFF_BYTES)
    direction = b.buffer("dirs", DIRECTION_BYTES)

    def one_iteration(_i: int) -> None:
        b.kernel("srad_cuda_1", [
            KernelArg(image, AccessMode.R, pattern=PatternKind.STENCIL,
                      halo_lines=4, touches=2.0),
            KernelArg(direction, AccessMode.RW, kind=AccessKind.STORE),
            KernelArg(coeff, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=5.0)
        b.kernel("srad_cuda_2", [
            KernelArg(coeff, AccessMode.R, pattern=PatternKind.STENCIL,
                      halo_lines=4),
            KernelArg(direction, AccessMode.R),
            KernelArg(image, AccessMode.RW),
        ], compute_intensity=5.0)

    b.repeat(ITERATIONS, one_iteration)
    return b.build()
