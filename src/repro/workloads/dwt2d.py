"""DWT2D [25] — Rodinia 2D discrete wavelet transform (rgb.bmp 4096x4096).

Each transform level reads a region of the image and writes coefficient
sub-bands, then the next level operates on a quarter of the data — each
kernel touches data the previous one mostly did not, and the full image
exceeds the aggregate L2, so inter-kernel reuse is low (Table II). CPElide
matches Baseline; HMG fares better at 2 chiplets where fewer remote nodes
mean less invalidation traffic (Sec. V-C).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

IMAGE_BYTES = 4096 * 4096 * 3
COEFF_BYTES = 4096 * 4096 * 3
LEVELS = 4


def build(config: GPUConfig) -> Workload:
    """Build the DWT2D model."""
    b = WorkloadBuilder("dwt2d", config, reuse_class="low",
                        description="4-level 2D wavelet over a 48 MB image")
    image = b.buffer("src", IMAGE_BYTES)
    coeffs = b.buffer("coeffs", COEFF_BYTES)

    for level in range(LEVELS):
        frac = max(0.02, 0.25 ** level)
        b.kernel(f"fdwt_h_l{level}", [
            KernelArg(image if level == 0 else coeffs, AccessMode.R,
                      fraction=frac),
            KernelArg(coeffs, AccessMode.RW, kind=AccessKind.STORE,
                      fraction=frac),
        ], compute_intensity=6.0, lds_per_line=3.0)
        b.kernel(f"fdwt_v_l{level}", [
            KernelArg(coeffs, AccessMode.RW, fraction=frac, touches=2.0),
        ], compute_intensity=6.0, lds_per_line=3.0)

    return b.build()
