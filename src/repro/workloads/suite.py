"""Workload registry: the 24 evaluated applications (Table II).

The paper evaluates 24 workloads: 18 with moderate-to-high inter-kernel
reuse (counting each RNN's two input configurations separately) and 6 with
low-to-no reuse. ``build_workload(name, config)`` constructs any of them
scaled to ``config.scale``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.gpu.config import GPUConfig
from repro.workloads import (
    babelstream,
    backprop,
    bfs,
    btree,
    cnn,
    color,
    dwt2d,
    fw,
    gaussian,
    hacc,
    hotspot,
    hotspot3d,
    lud,
    lulesh,
    nw,
    pathfinder,
    pennant,
    rnn,
    square,
    srad,
    sssp,
    streams_bench,
)
from repro.workloads.base import Workload

_BUILDERS: Dict[str, Callable[[GPUConfig], Workload]] = {
    "babelstream": babelstream.build,
    "backprop": backprop.build,
    "bfs": bfs.build,
    "color": color.build,
    "fw": fw.build,
    "gaussian": gaussian.build,
    "hacc": hacc.build,
    "hotspot": hotspot.build,
    "hotspot3d": hotspot3d.build,
    "lud": lud.build,
    "lulesh": lulesh.build,
    "pennant": pennant.build,
    "rnn-gru-small": lambda cfg: rnn.build_rnn("rnn-gru-small", cfg),
    "rnn-gru-large": lambda cfg: rnn.build_rnn("rnn-gru-large", cfg),
    "rnn-lstm-small": lambda cfg: rnn.build_rnn("rnn-lstm-small", cfg),
    "rnn-lstm-large": lambda cfg: rnn.build_rnn("rnn-lstm-large", cfg),
    "square": square.build,
    "sssp": sssp.build,
    "btree": btree.build,
    "cnn": cnn.build,
    "dwt2d": dwt2d.build,
    "nw": nw.build,
    "pathfinder": pathfinder.build,
    "srad": srad.build,
    "streams": streams_bench.build,
}

#: Table II's moderate-to-high inter-kernel reuse group.
HIGH_REUSE: List[str] = [
    "babelstream", "backprop", "bfs", "color", "fw", "gaussian", "hacc",
    "hotspot3d", "hotspot", "lud", "lulesh", "pennant",
    "rnn-gru-small", "rnn-gru-large", "rnn-lstm-small", "rnn-lstm-large",
    "square", "sssp",
]

#: Table II's low inter-kernel reuse group.
LOW_REUSE: List[str] = ["btree", "cnn", "dwt2d", "nw", "pathfinder", "srad"]

#: All 24 evaluated workloads.
WORKLOAD_NAMES: List[str] = HIGH_REUSE + LOW_REUSE

#: Additional buildable workloads outside Table II's 24 (Sec. VI's
#: multi-stream ``streams`` benchmark from gem5-resources).
EXTRA_WORKLOADS: List[str] = ["streams"]


def build_workload(name: str, config: GPUConfig) -> Workload:
    """Build one registered workload scaled to ``config.scale``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{WORKLOAD_NAMES + EXTRA_WORKLOADS}"
        ) from None
    workload = builder(config)
    if name in WORKLOAD_NAMES:
        expected = "high" if name in HIGH_REUSE else "low"
        assert workload.reuse_class == expected, (
            f"{name}: registry grouping ({expected}) disagrees with the "
            f"workload's own reuse_class ({workload.reuse_class})")
    return workload


def prewarm_traces(names: Sequence[str], config: GPUConfig) -> int:
    """Build each named workload and intern its RANDOM/INDIRECT
    run-traces (:func:`repro.workloads.base.prewarm_workload_traces`).

    Convenience for harnesses that are about to simulate the same
    workloads many times (bench repeats, sweep cells): generating the
    seeded samples once up front keeps RNG time out of the measured
    region and, before a ``fork``, shares the traces with every worker.
    Returns the intern cache's entry count.
    """
    from repro.workloads.base import prewarm_workload_traces

    count = 0
    for name in names:
        workload = build_workload(name, config)
        count = prewarm_workload_traces(workload, config.num_chiplets)
    return count
