"""streams [21] — gem5-resources' multi-stream benchmark (Sec. VI).

The only GPU benchmark in gem5-resources that uses multiple streams: two
HIP streams run independent triad-style kernel chains concurrently. The
paper evaluates it (plus multi-stream extensions of Table II apps) to
show CPElide also helps multi-stream workloads, whose concurrent kernels
contend for shared caching resources and suffer higher synchronization
costs (Sec. VI, Multi-Stream Workloads).

Each stream is bound to half the chiplets via the ``hipSetDevice``-style
stream binding (Sec. III-B).
"""

from __future__ import annotations

from typing import Tuple

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

ARRAY_BYTES = 262144 * 4
ITERATIONS = 10
NUM_STREAMS = 2


def build(config: GPUConfig) -> Workload:
    """Build the two-stream triad model."""
    if config.num_chiplets < NUM_STREAMS:
        raise ValueError(
            f"streams needs >= {NUM_STREAMS} chiplets, "
            f"got {config.num_chiplets}")
    b = WorkloadBuilder("streams", config, reuse_class="high",
                        description="two concurrent triad streams")
    per_stream = config.num_chiplets // NUM_STREAMS
    for stream in range(NUM_STREAMS):
        mask: Tuple[int, ...] = tuple(
            range(stream * per_stream, (stream + 1) * per_stream))
        a = b.buffer(f"s{stream}_a", ARRAY_BYTES)
        bb = b.buffer(f"s{stream}_b", ARRAY_BYTES)
        c = b.buffer(f"s{stream}_c", ARRAY_BYTES)

        def one_iteration(_i: int, a=a, bb=bb, c=c, stream=stream,
                          mask=mask) -> None:
            b.kernel("triad", [
                KernelArg(bb, AccessMode.R),
                KernelArg(c, AccessMode.R),
                KernelArg(a, AccessMode.RW, kind=AccessKind.STORE),
            ], compute_intensity=2.0, stream=stream, chiplet_mask=mask)
            b.kernel("scale", [
                KernelArg(a, AccessMode.R),
                KernelArg(bb, AccessMode.RW, kind=AccessKind.STORE),
            ], compute_intensity=1.0, stream=stream, chiplet_mask=mask)

        b.repeat(ITERATIONS, one_iteration)
    return b.build()
