"""Workload models: the 24 evaluated applications (Table II).

Each application is modeled at the granularity CPElide operates on —
kernels, the data structures they touch, access modes, per-chiplet address
ranges, sharing pattern, intra-kernel locality, and compute-vs-memory
balance — extracted from the paper's per-application descriptions
(Sec. IV-D, V-A, V-B). See :mod:`repro.workloads.base` for the modeling
vocabulary and :mod:`repro.workloads.suite` for the registry.
"""

from repro.workloads.base import (
    AccessKind,
    Kernel,
    KernelArg,
    LineRun,
    PatternKind,
    Workload,
    lines_for_arg,
    runs_for_arg,
)
from repro.workloads.suite import (
    EXTRA_WORKLOADS,
    HIGH_REUSE,
    LOW_REUSE,
    WORKLOAD_NAMES,
    build_workload,
)

__all__ = [
    "AccessKind",
    "Kernel",
    "KernelArg",
    "LineRun",
    "PatternKind",
    "Workload",
    "lines_for_arg",
    "runs_for_arg",
    "EXTRA_WORKLOADS",
    "HIGH_REUSE",
    "LOW_REUSE",
    "WORKLOAD_NAMES",
    "build_workload",
]
