"""SSSP [26] — Pannotia single-source shortest paths (AK.gr input).

Bellman-Ford-style relaxation rounds over a CSR graph. Like Color, the
owned nodes' edge lists (``col_idx``/``weights``) are contiguous and
reread every round (the read-only inter-kernel reuse CPElide preserves,
~14% over Baseline, Sec. V-A), while the neighbour distance lookups roam
the array with low locality — caching them remotely costs HMG invalidation
traffic and local-L2 pollution. At 2 chiplets the aggregate L2 cannot hold
the footprint and CPElide's gain disappears (Sec. V-C).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

ROW_PTR_BYTES = 2 * MB
COL_IDX_BYTES = 16 * MB
WEIGHTS_BYTES = 16 * MB
DIST_BYTES = 2 * MB
ROUNDS = 12


def build(config: GPUConfig) -> Workload:
    """Build the SSSP model."""
    b = WorkloadBuilder("sssp", config, reuse_class="high",
                        description="Bellman-Ford relaxations over AK.gr")
    row_ptr = b.buffer("row_ptr", ROW_PTR_BYTES)
    col_idx = b.buffer("col_idx", COL_IDX_BYTES)
    weights = b.buffer("edge_weights", WEIGHTS_BYTES)
    dist = b.buffer("dist", DIST_BYTES)
    dist_next = b.buffer("dist_next", DIST_BYTES)

    def one_round(i: int) -> None:
        src, dst = (dist, dist_next) if i % 2 == 0 else (dist_next, dist)
        b.kernel("sssp_relax", [
            KernelArg(row_ptr, AccessMode.R),
            # Relaxation-ordered edge reads roam the CSR arrays.
            KernelArg(col_idx, AccessMode.R, fraction=0.2),
            KernelArg(col_idx, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.15, seed=7, stable_fraction=0.5),
            KernelArg(weights, AccessMode.R, fraction=0.2),
            KernelArg(weights, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.15, seed=7, stable_fraction=0.5),
            # Neighbour distances roam the whole array.
            KernelArg(src, AccessMode.R, pattern=PatternKind.RANDOM,
                      fraction=0.35, seed=9, stable_fraction=0.5),
            KernelArg(dst, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=3.0)
        b.kernel("sssp_settle", [
            KernelArg(dst, AccessMode.R),
            KernelArg(src, AccessMode.RW),
        ], compute_intensity=2.0)

    b.repeat(ROUNDS, one_round)
    return b.build()
