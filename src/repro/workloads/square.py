"""Square [12, 21] — the HIP-Examples elementwise kernel of Listing 1.

Input (Table II): 524288 elements, launched repeatedly. Like BabelStream
it has iterative GPU kernels with uniform access patterns whose WG chunks
map to independent chiplets with limited remote accesses, and the working
set fits the aggregate L2: CPElide elides all flushes/invalidations except
the final ones, while HMG writes every store through to memory (−40% vs
CPElide, Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

#: 524288 floats per array.
ARRAY_BYTES = 524288 * 4
LAUNCHES = 40


def build(config: GPUConfig) -> Workload:
    """Build the Square model."""
    b = WorkloadBuilder("square", config, reuse_class="high",
                        description="C[i] = A[i]^2, relaunched")
    a = b.buffer("A", ARRAY_BYTES)
    c = b.buffer("C", ARRAY_BYTES)

    def one_launch(_i: int) -> None:
        # Listing 1: hipSetAccessMode(square, A_d, 'R');
        #            hipSetAccessMode(square, C_d, 'R/W').
        b.kernel("square", [
            KernelArg(a, AccessMode.R),
            KernelArg(c, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=1.0)

    b.repeat(LAUNCHES, one_launch)
    return b.build()
