"""NW [25] — Rodinia Needleman-Wunsch sequence alignment (8192, penalty 10).

Wavefront processing over a large similarity matrix: each kernel pair
processes one anti-diagonal band and never revisits earlier bands, so
inter-kernel reuse is low (Table II) and CPElide tracks Baseline.
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

#: 8192 x 8192 x 4 B similarity matrix (truncated band sweep below).
MATRIX_BYTES = 8192 * 8192 * 4
REFERENCE_BYTES = 8192 * 8192 * 4
BANDS = 10


def build(config: GPUConfig) -> Workload:
    """Build the NW model."""
    b = WorkloadBuilder("nw", config, reuse_class="low",
                        description="anti-diagonal band sweep, 10 bands")
    matrix = b.buffer("input_itemsets", MATRIX_BYTES)
    reference = b.buffer("reference", REFERENCE_BYTES)

    for band in range(BANDS):
        offset = band / BANDS
        b.kernel(f"needle_1_b{band}", [
            KernelArg(reference, AccessMode.R, fraction=1.0 / BANDS,
                      offset=offset),
            KernelArg(matrix, AccessMode.RW, fraction=1.0 / BANDS,
                      offset=offset, touches=2.0),
        ], compute_intensity=8.0, lds_per_line=4.0)
        b.kernel(f"needle_2_b{band}", [
            KernelArg(reference, AccessMode.R, fraction=1.0 / BANDS,
                      offset=offset),
            KernelArg(matrix, AccessMode.RW, fraction=1.0 / BANDS,
                      offset=offset, touches=2.0),
        ], compute_intensity=8.0, lds_per_line=4.0)

    return b.build()
