"""Pathfinder [25] — Rodinia dynamic programming (200000 cols, 100 rows).

Row-by-row sweep over a wide grid: each kernel reads one row and writes
the next, never revisiting earlier rows — essentially zero inter-kernel
reuse (Table II), so eliding acquires/releases cannot help and CPElide
matches Baseline (Sec. V-A).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

#: 200000 cols x 100 rows x 4 B.
WALL_BYTES = 200000 * 100 * 4
#: One carried result row.
RESULT_BYTES = 200000 * 4
STEPS = 20
ROWS_PER_STEP = 5  # pyramid height 20 covers 100 rows in 20 steps


def build(config: GPUConfig) -> Workload:
    """Build the Pathfinder model."""
    b = WorkloadBuilder("pathfinder", config, reuse_class="low",
                        description="row sweep over an 80 MB grid, 20 steps")
    wall = b.buffer("wall", WALL_BYTES)
    result = b.buffer("result", RESULT_BYTES)

    for step in range(STEPS):
        offset = step / STEPS
        b.kernel(f"dynproc_s{step}", [
            KernelArg(wall, AccessMode.R, fraction=ROWS_PER_STEP / 100,
                      offset=offset, touches=2.0),
            KernelArg(result, AccessMode.RW),
        ], compute_intensity=5.0, lds_per_line=3.0)

    return b.build()
