"""Hotspot3D [25] — Rodinia 3D thermal simulation.

Input (Table II): 512x512x8 grid, 20 steps. A *memory-bound* 3D stencil
whose read-only power array and ping-ponged temperature grids are reused
every step; inter-kernel L2 reuse for the read-only arrays lets CPElide
outperform Baseline by ~37% (Sec. V-A). At 2 chiplets the aggregate L2 is
too small for the footprint and the benefit disappears; at 6-7 chiplets
hit rates improve further while HMG's remote traffic grows (Sec. V-C).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import WorkloadBuilder

#: 512 x 512 x 8 x 4 B grids (8 MB each; 24 MB total working set sits
#: between the 16 MB L3 and the 32 MB aggregate L2 of a 4-chiplet GPU).
GRID_BYTES = 512 * 512 * 8 * 4
STEPS = 20


def build(config: GPUConfig) -> Workload:
    """Build the Hotspot3D model."""
    b = WorkloadBuilder("hotspot3d", config, reuse_class="high",
                        description="memory-bound 3D stencil, 20 steps")
    temp_in = b.buffer("temp_in", GRID_BYTES)
    temp_out = b.buffer("temp_out", GRID_BYTES)
    power = b.buffer("power", GRID_BYTES)

    def one_step(i: int) -> None:
        src, dst = (temp_in, temp_out) if i % 2 == 0 else (temp_out, temp_in)
        b.kernel("hotspotOpt1", [
            KernelArg(src, AccessMode.R, pattern=PatternKind.STENCIL,
                      halo_lines=8, touches=2.0),
            KernelArg(power, AccessMode.R),
            KernelArg(dst, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=3.0)

    b.repeat(STEPS, one_step)
    return b.build()
