"""FW [26] — Pannotia Floyd-Warshall all-pairs shortest paths.

Input (Table II): 512_65536.gr (512 nodes, 64K edges — a 1 MB dense
distance matrix). Blocked FW relaunches kernels per pivot block; the
matrix accesses are input-dependent enough that first-touch placement is
subpar, causing many remote accesses. There is abundant memory-level
parallelism to hide the L2 misses from implicit synchronization, so
CPElide's reuse gains translate into only a small speedup (Sec. V-A),
while HMG suffers from caching the low-locality remote accesses
(Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

DIST_BYTES = 1 * MB
PIVOT_ROUNDS = 32


def build(config: GPUConfig) -> Workload:
    """Build the FW model."""
    b = WorkloadBuilder("fw", config, reuse_class="high",
                        description="blocked Floyd-Warshall, 32 pivot rounds")
    dist = b.buffer("dist", DIST_BYTES)
    pivot_row = b.buffer("pivot_row", DIST_BYTES // 16)

    def one_round(i: int) -> None:
        b.kernel("fw_pivot", [
            KernelArg(dist, AccessMode.R, pattern=PatternKind.RANDOM,
                      fraction=0.1, seed=21 + i % 4),
            KernelArg(pivot_row, AccessMode.RW),
        ], compute_intensity=20.0)
        b.kernel("fw_update", [
            KernelArg(pivot_row, AccessMode.R, touches=3.0),
            KernelArg(dist, AccessMode.RW, pattern=PatternKind.RANDOM,
                      fraction=0.5, seed=23, stable_fraction=0.6, touches=2.0),
        ], compute_intensity=24.0)

    b.repeat(PIVOT_ROUNDS, one_round)
    return b.build()
