"""Lulesh [78] — CORAL-2 Lagrangian shock hydrodynamics.

Unstructured-mesh kernels using indirect addressing over node/element
connectivity. The irregular accesses are limited to a subset of addresses
that fits the aggregate L2 capacity, so CPElide preserves their
inter-kernel reuse for ~16% over Baseline (Sec. V-A); the same irregular
patterns cause considerable HMG invalidation traffic, letting CPElide
outperform HMG by ~33% (Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

NODES_BYTES = 8 * MB
ELEMS_BYTES = 10 * MB
CONNECT_BYTES = 6 * MB
TIMESTEPS = 10


def build(config: GPUConfig) -> Workload:
    """Build the Lulesh model."""
    b = WorkloadBuilder("lulesh", config, reuse_class="high",
                        description="unstructured hydro, 10 Lagrange steps")
    nodes = b.buffer("nodal_fields", NODES_BYTES)
    elems = b.buffer("element_fields", ELEMS_BYTES)
    connect = b.buffer("connectivity", CONNECT_BYTES)

    def one_step(_i: int) -> None:
        b.kernel("CalcForceForNodes", [
            KernelArg(connect, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.6, seed=41, stable_fraction=0.8),
            KernelArg(elems, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.5, seed=43, stable_fraction=0.8, touches=2.0),
            KernelArg(nodes, AccessMode.RW),
        ], compute_intensity=10.0)
        b.kernel("CalcVelocityPosition", [
            KernelArg(nodes, AccessMode.RW, touches=2.0),
        ], compute_intensity=5.0)
        b.kernel("CalcElementQuantities", [
            KernelArg(connect, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.6, seed=41, stable_fraction=0.8),
            KernelArg(nodes, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.5, seed=47, stable_fraction=0.8),
            KernelArg(elems, AccessMode.RW),
        ], compute_intensity=12.0)

    b.repeat(TIMESTEPS, one_step)
    return b.build()
