"""BabelStream [32, 33] — memory-bandwidth microbenchmark.

Input (Table II): 524288 elements, i.e. three 4 MB double arrays swept by
the classic Copy / Mul / Add / Triad / Dot kernels, repeated for many
iterations. Iterative, uniform access patterns: WGs divide into chunks
scheduled on independent chiplets with almost no remote accesses, and the
working set fits the chiplets' aggregate L2 (Sec. V-A) — so CPElide elides
everything except the final flush and beats Baseline by ~31% on this class,
while HMG's write-through L2s generate far more L2-L3 traffic (−37% vs
CPElide, Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

#: 524288 doubles per array.
ARRAY_BYTES = 524288 * 8
ITERATIONS = 10


def build(config: GPUConfig) -> Workload:
    """Build the BabelStream model."""
    b = WorkloadBuilder("babelstream", config, reuse_class="high",
                        description="STREAM triad suite, 3 x 4 MB arrays")
    a = b.buffer("a", ARRAY_BYTES)
    bb = b.buffer("b", ARRAY_BYTES)
    c = b.buffer("c", ARRAY_BYTES)

    def one_iteration(_i: int) -> None:
        b.kernel("copy", [
            KernelArg(a, AccessMode.R),
            KernelArg(c, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=1.0)
        b.kernel("mul", [
            KernelArg(c, AccessMode.R),
            KernelArg(bb, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=1.0)
        b.kernel("add", [
            KernelArg(a, AccessMode.R),
            KernelArg(bb, AccessMode.R),
            KernelArg(c, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=1.5)
        b.kernel("triad", [
            KernelArg(bb, AccessMode.R),
            KernelArg(c, AccessMode.R),
            KernelArg(a, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=2.0)
        b.kernel("dot", [
            KernelArg(a, AccessMode.R),
            KernelArg(bb, AccessMode.R),
        ], compute_intensity=2.0)

    b.repeat(ITERATIONS, one_iteration)
    return b.build()
