"""Pennant [78] — CORAL-2 unstructured-mesh staggered-grid hydro (noh.pnt).

Indirect addressing over zones/points/sides with irregular access
patterns; the touched addresses fit the aggregate L2, so preserving their
inter-kernel locality gives CPElide ~38% over Baseline (Sec. V-A) — and
since HMG also captures this reuse with low invalidation traffic, CPElide
and HMG perform similarly here (Sec. V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, PatternKind, Workload
from repro.workloads.common import MB, WorkloadBuilder

POINTS_BYTES = 4 * MB
ZONES_BYTES = 6 * MB
SIDES_BYTES = 8 * MB
CYCLES = 12


def build(config: GPUConfig) -> Workload:
    """Build the Pennant model."""
    b = WorkloadBuilder("pennant", config, reuse_class="high",
                        description="staggered-grid hydro, 12 cycles")
    points = b.buffer("points", POINTS_BYTES)
    zones = b.buffer("zones", ZONES_BYTES)
    sides = b.buffer("sides", SIDES_BYTES)

    def one_cycle(_i: int) -> None:
        b.kernel("calcForces", [
            KernelArg(sides, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.6, seed=53, resample=False),
            KernelArg(zones, AccessMode.R, pattern=PatternKind.INDIRECT,
                      fraction=0.6, seed=59, resample=False, touches=2.0),
            KernelArg(points, AccessMode.RW),
        ], compute_intensity=4.0)
        b.kernel("advancePoints", [
            KernelArg(points, AccessMode.RW, touches=2.0),
        ], compute_intensity=3.0)

    b.repeat(CYCLES, one_cycle)
    return b.build()
