"""Hotspot [25] — Rodinia 2D thermal simulation.

Input (Table II): 512x512 grid, 20 time steps. A 2D stencil that stages
tiles through the LDS and is *compute-bound* with sufficient on-chip
bandwidth to keep the CUs busy (Sec. V-A): loading the LDS faster via more
L2 hits does little, so CPElide's speedup is small even though the arrays
are reused every step.
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import AccessKind, KernelArg, PatternKind, Workload
from repro.workloads.common import WorkloadBuilder

#: 512 x 512 x 4 B grids.
GRID_BYTES = 512 * 512 * 4
STEPS = 20


def build(config: GPUConfig) -> Workload:
    """Build the Hotspot model."""
    b = WorkloadBuilder("hotspot", config, reuse_class="high",
                        description="compute-bound 2D stencil, 20 steps")
    temp = b.buffer("temp", GRID_BYTES)
    power = b.buffer("power", GRID_BYTES)
    temp_out = b.buffer("temp_out", GRID_BYTES)

    def one_step(i: int) -> None:
        src, dst = (temp, temp_out) if i % 2 == 0 else (temp_out, temp)
        b.kernel("calculate_temp", [
            KernelArg(src, AccessMode.R, pattern=PatternKind.STENCIL,
                      halo_lines=4, touches=3.0),
            KernelArg(power, AccessMode.R, touches=2.0),
            KernelArg(dst, AccessMode.RW, kind=AccessKind.STORE),
        ], compute_intensity=60.0, lds_per_line=4.0)

    b.repeat(STEPS, one_step)
    return b.build()
