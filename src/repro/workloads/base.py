"""Workload modeling vocabulary.

A :class:`Workload` is a sequence of :class:`Kernel` dispatches over
page-aligned buffers. Each :class:`KernelArg` describes how one kernel
uses one data structure:

* the **access mode** (``R`` / ``R/W``) — the Listing 1 annotation;
* the **pattern** — how the structure's lines are distributed over the
  chiplets the kernel runs on (partitioned, shared, stencil-with-halo,
  random/irregular);
* the **kind** — pure load, pure store, or read-modify-write;
* **touches** — average intra-kernel touches per line (L1 locality);
* **fraction** — the portion of the structure the kernel actually sweeps.

The trace generator (:func:`lines_for_arg`) turns an argument plus the WG
scheduler's placement into each chiplet's distinct-line access list; the
same argument also produces the packet's :class:`~repro.cp.packets.ArgAccess`
annotation, so the information CPElide sees is exactly what the software
hints of Sec. III-B would carry.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.dispatcher import KernelResources
from repro.cp.packets import AccessMode, ArgAccess, KernelPacket, RangeAnnotation
from repro.memory.address import LINE_SIZE, AddressSpace, Buffer


class PatternKind(enum.Enum):
    """How a data structure's lines map onto scheduled chiplets."""

    #: Contiguous per-chiplet slices (static kernel-wide partitioning
    #: over a linearly indexed array) — the common regular GPGPU case.
    PARTITIONED = "partitioned"
    #: Every chiplet reads the whole structure (e.g. RNN weight matrices).
    SHARED = "shared"
    #: Partitioned plus a halo reaching into neighbour slices (stencils).
    STENCIL = "stencil"
    #: Input-dependent lines sampled over the whole structure (graph
    #: analytics, indirect addressing) — poor first-touch locality.
    RANDOM = "random"
    #: Indirect addressing through an index structure; trace-equivalent
    #: to RANDOM but annotated conservatively as whole-structure.
    INDIRECT = "indirect"


class AccessKind(enum.Enum):
    """Load/store composition of the sweep over the touched lines."""

    LOAD = "load"
    STORE = "store"
    LOAD_STORE = "load_store"


@dataclass(frozen=True)
class KernelArg:
    """One kernel's use of one data structure."""

    buffer: Buffer
    mode: AccessMode
    pattern: PatternKind = PatternKind.PARTITIONED
    kind: Optional[AccessKind] = None
    touches: float = 1.0
    fraction: float = 1.0
    #: Fractional start offset of the touched window within each slice
    #: (row-sweep apps like Pathfinder move the window every kernel,
    #: destroying inter-kernel reuse).
    offset: float = 0.0
    halo_lines: int = 0
    seed: int = 0
    #: RANDOM/INDIRECT: resample a different line set every kernel
    #: (True, e.g. BTree query batches) or touch a stable input-dependent
    #: set across kernels (False, e.g. a graph's adjacency lists reread
    #: every iteration).
    resample: bool = True
    #: RANDOM/INDIRECT refinement: fraction of the sample drawn from a
    #: kernel-independent (stable) set, the rest resampled per kernel.
    #: Graph frontiers re-visit part of the structure each iteration but
    #: also roam — this is what gives their remote accesses the low
    #: locality that hurts HMG (Sec. V-B). ``None`` defers to ``resample``.
    stable_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if not 0.0 <= self.offset < 1.0:
            raise ValueError(f"offset must be in [0, 1), got {self.offset}")
        if self.touches < 1.0:
            raise ValueError(f"touches must be >= 1, got {self.touches}")
        if self.halo_lines < 0:
            raise ValueError(f"halo_lines must be >= 0, got {self.halo_lines}")
        if self.mode is AccessMode.R and self.kind is AccessKind.STORE:
            raise ValueError("a read-only argument cannot be a pure store")

    @property
    def effective_kind(self) -> AccessKind:
        """Kind, defaulting from the access mode."""
        if self.kind is not None:
            return self.kind
        return AccessKind.LOAD if self.mode is AccessMode.R else AccessKind.LOAD_STORE

    def annotation(self, num_logical: int) -> ArgAccess:
        """The packet-level annotation software would provide (Sec. III-B).

        Partitioned args use the even-split default; stencils widen each
        slice by the halo; shared/random/indirect args conservatively
        declare the whole structure for every scheduled chiplet.
        """
        if self.pattern is PatternKind.PARTITIONED and self.fraction == 1.0:
            return ArgAccess(self.buffer, self.mode, ranges=None)
        ranges: List[RangeAnnotation] = []
        for logical in range(num_logical):
            if self.pattern in (PatternKind.PARTITIONED, PatternKind.STENCIL):
                lo, hi = self.buffer.byte_range_of_slice(logical, num_logical)
                halo = self.halo_lines * LINE_SIZE
                lo = max(self.buffer.base, lo - halo)
                hi = min(self.buffer.end, hi + halo)
            else:
                lo, hi = self.buffer.base, self.buffer.end
            ranges.append(RangeAnnotation(lo, hi, logical))
        return ArgAccess(self.buffer, self.mode, ranges=tuple(ranges))


@dataclass(frozen=True)
class Kernel:
    """One kernel dispatch."""

    name: str
    args: Tuple[KernelArg, ...]
    num_wgs: int = 960
    #: CU-cycles of arithmetic per touched line: <10 memory-bound,
    #: ~15 balanced, >40 compute-bound.
    compute_intensity: float = 4.0
    #: LDS accesses per touched line (LDS-staged kernels like LUD).
    lds_per_line: float = 0.0
    stream_id: int = 0
    chiplet_mask: Optional[Tuple[int, ...]] = None
    #: Register/LDS usage for the occupancy model
    #: (:mod:`repro.cp.dispatcher`); ``None`` = full occupancy.
    resources: Optional["KernelResources"] = None
    #: Pre-built packet annotations overriding the ones derived from the
    #: args' patterns — used by record-and-replay annotation inference
    #: (:mod:`repro.analysis.inference`, the Sec. VI automation story).
    explicit_annotations: Optional[Tuple[ArgAccess, ...]] = None

    def packet(self, kernel_id: int, num_logical: int) -> KernelPacket:
        """Build this dispatch's kernel packet with its annotations."""
        if self.explicit_annotations is not None:
            annotations = self.explicit_annotations
        else:
            annotations = tuple(arg.annotation(num_logical)
                                for arg in self.args)
        return KernelPacket(
            kernel_id=kernel_id,
            name=self.name,
            stream_id=self.stream_id,
            num_wgs=self.num_wgs,
            args=annotations,
            chiplet_mask=self.chiplet_mask,
        )


@dataclass
class Workload:
    """A complete application: buffers plus its dynamic kernel sequence."""

    name: str
    space: AddressSpace
    kernels: List[Kernel]
    #: Paper's grouping: "high" = moderate-to-high inter-kernel reuse,
    #: "low" = low-to-no reuse (Table II).
    reuse_class: str = "high"
    description: str = ""

    def __post_init__(self) -> None:
        if self.reuse_class not in ("high", "low"):
            raise ValueError(f"reuse_class must be 'high' or 'low', "
                             f"got {self.reuse_class!r}")
        if not self.kernels:
            raise ValueError(f"workload {self.name!r} has no kernels")

    @property
    def num_kernels(self) -> int:
        """Dynamic kernel count."""
        return len(self.kernels)

    def buffers(self) -> List[Buffer]:
        """All allocations."""
        return self.space.buffers

    def footprint_bytes(self) -> int:
        """Total allocated bytes."""
        return self.space.footprint_bytes()


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LineRun:
    """A maximal interval of consecutive line indices in a trace.

    The run-based trace is the interval form of :func:`lines_for_arg`:
    flattening an argument's runs in order reproduces the per-line trace
    exactly (same lines, same order, same duplicates). Contiguous
    patterns (PARTITIONED / SHARED / STENCIL) compress to 1-3 runs;
    RANDOM / INDIRECT samples coalesce only where the RNG happened to
    draw adjacent lines, so they stay mostly per-line.
    """

    start: int
    count: int

    @property
    def end(self) -> int:
        """One past the last line of the run."""
        return self.start + self.count

    def lines(self) -> range:
        """The run's line indices, in trace order."""
        return range(self.start, self.start + self.count)


def _coalesce_lines(lines: Sequence[int]) -> List[LineRun]:
    """Greedily merge consecutive (+1) indices, preserving trace order."""
    runs: List[LineRun] = []
    it = iter(lines)
    try:
        start = next(it)
    except StopIteration:
        return runs
    count = 1
    for line in it:
        if line == start + count:
            count += 1
        else:
            runs.append(LineRun(start, count))
            start = line
            count = 1
    runs.append(LineRun(start, count))
    return runs


def runs_for_arg(arg: KernelArg, logical: int, num_logical: int,
                 kernel_id: int) -> List[LineRun]:
    """Interval form of :func:`lines_for_arg` (same arguments).

    Invariant (enforced by the differential tests): concatenating
    ``run.lines()`` over the returned runs yields exactly
    ``lines_for_arg(arg, logical, num_logical, kernel_id)``. Contiguous
    patterns are produced by direct arithmetic without materializing the
    line list; random patterns draw the identical seeded sample and
    coalesce it.
    """
    buf = arg.buffer
    if arg.pattern in (PatternKind.PARTITIONED, PatternKind.STENCIL):
        lo, hi = buf.slice_lines(logical, num_logical)
        span = hi - lo
        if span == 0:
            return []
        count = max(1, int(round(span * arg.fraction)))
        start = lo + int(span * arg.offset)
        end = min(hi, start + count)
        runs: List[LineRun] = []
        if end > start:
            runs.append(LineRun(start, end - start))
        if arg.pattern is PatternKind.STENCIL and arg.halo_lines:
            first, last = buf.line_range()
            below_lo = max(first, lo - arg.halo_lines)
            if below_lo < lo:
                runs.append(LineRun(below_lo, lo - below_lo))
            above_hi = min(last, hi + arg.halo_lines)
            if above_hi > hi:
                runs.append(LineRun(hi, above_hi - hi))
        return runs
    if arg.pattern is PatternKind.SHARED:
        first, last = buf.line_range()
        span = last - first
        count = max(1, int(round(span * arg.fraction)))
        start = first + int(span * arg.offset)
        end = min(last, start + count)
        if end <= start:
            return []
        return [LineRun(start, end - start)]
    # RANDOM / INDIRECT: identical seeded sample, coalesced. The sample
    # order (and any stable/roam duplicate) must survive, so no sorting.
    return _coalesce_lines(lines_for_arg(arg, logical, num_logical,
                                         kernel_id))


# ----------------------------------------------------------------------
# Run-trace interning
# ----------------------------------------------------------------------
#
# RANDOM / INDIRECT traces are the expensive ones to generate (a seeded
# RNG sample plus coalescing), and the simulator regenerates them
# constantly: every kernel repetition with a stable sample, every
# protocol cell of a sweep, and every bench repeat draws the *same*
# lines. Workload builders are deterministic (the bump allocator hands
# out identical buffers on every rebuild), so a value-based key — the
# frozen KernelArg itself plus the slice coordinates — makes generated
# traces shareable across kernels, Simulator instances, engine cells,
# and fork()ed sweep workers (which inherit a prewarmed parent cache
# copy-on-write). Contiguous patterns are O(1) arithmetic and skip the
# cache.

#: (arg, logical, num_logical, salt) -> interned run tuple. The salt is
#: the kernel id when the trace depends on it (a nonzero roam share) and
#: 0 otherwise, so id-independent traces collapse to one entry.
_RUN_CACHE: Dict[Tuple[KernelArg, int, int, int], Tuple[LineRun, ...]] = {}

#: Entry cap; the cache is pure memoization, so eviction is a full clear.
_RUN_CACHE_MAX = 4096


def _trace_salt(arg: KernelArg, num_logical: int, kernel_id: int) -> int:
    """The part of ``kernel_id`` that actually reaches the trace.

    Mirrors :func:`lines_for_arg`'s RANDOM/INDIRECT sample split exactly:
    only the *roam* portion seeds its RNG with the kernel id, so when the
    roam count rounds to zero the trace is launch-invariant and salts
    to 0.
    """
    first, last = arg.buffer.line_range()
    span = last - first
    count = max(1, int(round(span * arg.fraction / num_logical)))
    count = min(count, span)
    if arg.stable_fraction is not None:
        stable_share = arg.stable_fraction
    else:
        stable_share = 0.0 if arg.resample else 1.0
    roam_count = count - int(round(count * stable_share))
    return kernel_id if roam_count else 0


def interned_runs_for_arg(arg: KernelArg, logical: int, num_logical: int,
                          kernel_id: int) -> Tuple[LineRun, ...]:
    """Interned (shared, immutable) form of :func:`runs_for_arg`.

    Returns the identical runs as ``tuple(runs_for_arg(...))`` — the
    drift test in tests/test_memoization.py holds the two together — but
    serves repeated RANDOM/INDIRECT generations from a process-wide
    cache instead of re-sampling.
    """
    if arg.pattern not in (PatternKind.RANDOM, PatternKind.INDIRECT):
        return tuple(runs_for_arg(arg, logical, num_logical, kernel_id))
    key = (arg, logical, num_logical,
           _trace_salt(arg, num_logical, kernel_id))
    runs = _RUN_CACHE.get(key)
    if runs is None:
        if len(_RUN_CACHE) >= _RUN_CACHE_MAX:
            _RUN_CACHE.clear()
        runs = tuple(runs_for_arg(arg, logical, num_logical, kernel_id))
        _RUN_CACHE[key] = runs
    return runs


def prewarm_workload_traces(workload: Workload, num_logical: int) -> int:
    """Generate ``workload``'s RANDOM/INDIRECT run-traces into the intern
    cache (full-width placements; narrow kernels fill in lazily).

    The parallel sweep runner calls this in the parent before forking so
    every worker inherits the generated traces copy-on-write instead of
    re-sampling them per process. Returns the cache's entry count.
    """
    for kernel_id, kernel in enumerate(workload.kernels):
        for arg in kernel.args:
            if arg.pattern in (PatternKind.RANDOM, PatternKind.INDIRECT):
                for logical in range(num_logical):
                    interned_runs_for_arg(arg, logical, num_logical,
                                          kernel_id)
    return len(_RUN_CACHE)


def clear_trace_cache() -> None:
    """Drop every interned run-trace (tests and memory pressure)."""
    _RUN_CACHE.clear()


def lines_for_arg(arg: KernelArg, logical: int, num_logical: int,
                  kernel_id: int) -> List[int]:
    """Distinct global line indices logical chiplet ``logical`` touches.

    Deterministic: random patterns are seeded from (arg seed, kernel id,
    logical chiplet), so a run is reproducible and all protocols see the
    identical trace.
    """
    buf = arg.buffer
    if arg.pattern in (PatternKind.PARTITIONED, PatternKind.STENCIL):
        lo, hi = buf.slice_lines(logical, num_logical)
        span = hi - lo
        if span == 0:
            return []
        count = max(1, int(round(span * arg.fraction)))
        start = lo + int(span * arg.offset)
        end = min(hi, start + count)
        lines = list(range(start, end))
        if arg.pattern is PatternKind.STENCIL and arg.halo_lines:
            first, last = buf.line_range()
            below = range(max(first, lo - arg.halo_lines), lo)
            above = range(hi, min(last, hi + arg.halo_lines))
            lines.extend(below)
            lines.extend(above)
        return lines
    if arg.pattern is PatternKind.SHARED:
        first, last = buf.line_range()
        span = last - first
        count = max(1, int(round(span * arg.fraction)))
        start = first + int(span * arg.offset)
        return list(range(start, min(last, start + count)))
    # RANDOM / INDIRECT: seeded sample over the whole structure.
    first, last = buf.line_range()
    span = last - first
    count = max(1, int(round(span * arg.fraction / num_logical)))
    count = min(count, span)
    if arg.stable_fraction is not None:
        stable_share = arg.stable_fraction
    else:
        stable_share = 0.0 if arg.resample else 1.0
    stable_count = int(round(count * stable_share))
    lines: List[int] = []
    if stable_count:
        rng = random.Random(f"{arg.seed}:{logical}")
        lines.extend(first + idx for idx in rng.sample(range(span), stable_count))
    roam_count = count - stable_count
    if roam_count:
        rng = random.Random(f"{arg.seed}:{kernel_id}:{logical}")
        lines.extend(first + idx for idx in rng.sample(range(span), roam_count))
    return lines


def kernel_touched_lines(kernel: Kernel, num_logical: int,
                         kernel_id: int) -> int:
    """Total distinct lines the kernel touches (drives the compute term)."""
    total = 0
    for arg in kernel.args:
        for logical in range(num_logical):
            total += len(lines_for_arg(arg, logical, num_logical, kernel_id))
    return total
