"""LUD [25] — Rodinia blocked LU decomposition (512.dat input).

Three kernels per block step (diagonal, perimeter, internal) staging tiles
through the LDS. Memory-bound in its load-into-LDS and write-back phases
with many LDS accesses in between; the working set fits the shared LLC and
the 4 chiplets perfectly partition the work, so Baseline/HMG/CPElide all
see ~0% remote traffic, and preserving the inter-kernel L2 locality of the
matrix gives CPElide ~48% over Baseline — with HMG performing similarly
since its invalidation traffic is low here (Sec. V-A/V-B).
"""

from __future__ import annotations

from repro.cp.packets import AccessMode
from repro.gpu.config import GPUConfig
from repro.workloads.base import KernelArg, Workload
from repro.workloads.common import WorkloadBuilder

MATRIX_BYTES = 512 * 512 * 4
BLOCK_STEPS = 16


def build(config: GPUConfig) -> Workload:
    """Build the LUD model."""
    b = WorkloadBuilder("lud", config, reuse_class="high",
                        description="blocked LU, 16 block steps, LDS-heavy")
    matrix = b.buffer("m", MATRIX_BYTES)

    def one_step(i: int) -> None:
        remaining = max(0.1, 1.0 - i / BLOCK_STEPS)
        b.kernel("lud_diagonal", [
            KernelArg(matrix, AccessMode.RW, fraction=max(0.05, remaining / 8),
                      offset=min(0.9, i / BLOCK_STEPS), touches=3.0),
        ], compute_intensity=4.0, lds_per_line=16.0)
        b.kernel("lud_perimeter", [
            KernelArg(matrix, AccessMode.RW, fraction=remaining / 2,
                      offset=min(0.5, i / (2 * BLOCK_STEPS)), touches=2.0),
        ], compute_intensity=4.0, lds_per_line=12.0)
        b.kernel("lud_internal", [
            KernelArg(matrix, AccessMode.RW, fraction=remaining,
                      touches=2.0),
        ], compute_intensity=5.0, lds_per_line=10.0)

    b.repeat(BLOCK_STEPS, one_step)
    return b.build()
