"""Metrics: per-kernel counters, run aggregation, and report helpers."""

from repro.metrics.stats import AccessCounts, KernelMetrics, RunMetrics, SyncCounts
from repro.metrics.report import format_table, geomean, normalize, speedup

__all__ = [
    "AccessCounts",
    "KernelMetrics",
    "RunMetrics",
    "SyncCounts",
    "format_table",
    "geomean",
    "normalize",
    "speedup",
]
