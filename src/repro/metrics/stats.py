"""Counters collected per kernel and aggregated per run.

Every quantity the paper's figures report is derived from these counters:
Fig. 8 from kernel cycles, Fig. 9 from access counts fed to the energy
model, Fig. 10 from the traffic meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List

from repro.interconnect.noc import TrafficMeter


@dataclass
class AccessCounts:
    """Memory-access event counts for one kernel (device-wide).

    ``l2_local_*`` are requests a chiplet makes to its own L2;
    ``l2_remote_*`` are requests served at another chiplet's L2 (Baseline /
    CPElide forward remote requests to the home node; HMG caches remotely
    fetched lines locally, so its remote counts are home-node fetches).
    """

    l1_accesses: int = 0
    l1_hits: int = 0
    lds_accesses: int = 0
    l2_local_hits: int = 0
    l2_local_misses: int = 0
    l2_remote_hits: int = 0
    l2_remote_misses: int = 0
    l2_writethroughs: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    #: Coherence-protocol stalls: inter-chiplet invalidation round trips
    #: a request waits on (HMG sharer invalidations, Sec. V-B).
    coherence_stalls: int = 0

    def merge(self, other: "AccessCounts") -> None:
        """Accumulate ``other`` into ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def l2_accesses(self) -> int:
        """All L2 demand accesses (local + remote)."""
        return (self.l2_local_hits + self.l2_local_misses
                + self.l2_remote_hits + self.l2_remote_misses)

    @property
    def l2_hits(self) -> int:
        """All L2 hits."""
        return self.l2_local_hits + self.l2_remote_hits

    @property
    def l2_misses(self) -> int:
        """All L2 misses."""
        return self.l2_local_misses + self.l2_remote_misses

    @property
    def l2_miss_rate(self) -> float:
        """L2 miss rate over demand accesses (0 if no accesses)."""
        total = self.l2_accesses
        return self.l2_misses / total if total else 0.0

    @property
    def dram_accesses(self) -> int:
        """All DRAM line accesses."""
        return self.dram_reads + self.dram_writes

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable field dump (counter fields only)."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "AccessCounts":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class SyncCounts:
    """Synchronization-operation counts for one kernel boundary.

    CPElide's whole contribution is visible here: elided acquires/releases
    versus issued ones, and the flush/invalidate line volumes that the
    issued operations moved.
    """

    acquires_issued: int = 0
    releases_issued: int = 0
    acquires_elided: int = 0
    releases_elided: int = 0
    lines_flushed: int = 0
    lines_invalidated: int = 0
    dir_evictions: int = 0
    dir_invalidations: int = 0
    cp_messages: int = 0
    #: Timestamp-protocol self-invalidations: copies dropped because
    #: their lease aged out, and copies dropped because a remote write
    #: stamped the line after the local fill (exact stale detection).
    lease_expiries: int = 0
    lease_stale_refetches: int = 0

    def merge(self, other: "SyncCounts") -> None:
        """Accumulate ``other`` into ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable field dump."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "SyncCounts":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class KernelMetrics:
    """Everything measured for one dynamic kernel."""

    kernel_name: str
    kernel_index: int
    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    sync_cycles: float = 0.0
    #: Portion of ``sync_cycles`` spent on the CP-side critical path
    #: (dispatch, table ops, crossbar); the rest is flush/invalidate
    #: service time at the caches.
    cp_overhead_cycles: float = 0.0
    accesses: AccessCounts = field(default_factory=AccessCounts)
    sync: SyncCounts = field(default_factory=SyncCounts)
    traffic: TrafficMeter = field(default_factory=TrafficMeter)
    chiplets_used: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump of one kernel's measurements."""
        return {
            "kernel_name": self.kernel_name,
            "kernel_index": int(self.kernel_index),
            "cycles": float(self.cycles),
            "compute_cycles": float(self.compute_cycles),
            "memory_cycles": float(self.memory_cycles),
            "sync_cycles": float(self.sync_cycles),
            "cp_overhead_cycles": float(self.cp_overhead_cycles),
            "accesses": self.accesses.to_dict(),
            "sync": self.sync.to_dict(),
            "traffic": self.traffic.to_dict(),
            "chiplets_used": int(self.chiplets_used),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kernel_name=data["kernel_name"],
            kernel_index=int(data["kernel_index"]),
            cycles=float(data["cycles"]),
            compute_cycles=float(data["compute_cycles"]),
            memory_cycles=float(data["memory_cycles"]),
            sync_cycles=float(data["sync_cycles"]),
            cp_overhead_cycles=float(data["cp_overhead_cycles"]),
            accesses=AccessCounts.from_dict(data["accesses"]),
            sync=SyncCounts.from_dict(data["sync"]),
            traffic=TrafficMeter.from_dict(data["traffic"]),
            chiplets_used=int(data["chiplets_used"]),
        )


@dataclass
class RunMetrics:
    """Aggregated metrics for one (workload, config, protocol) run."""

    workload: str
    protocol: str
    num_chiplets: int
    kernels: List[KernelMetrics] = field(default_factory=list)

    def add_kernel(self, km: KernelMetrics) -> None:
        """Record one dynamic kernel's metrics."""
        self.kernels.append(km)

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (kernels execute back-to-back in a stream)."""
        return sum(k.cycles for k in self.kernels)

    @property
    def total_sync_cycles(self) -> float:
        """Cycles spent on synchronization across all kernel boundaries."""
        return sum(k.sync_cycles for k in self.kernels)

    @property
    def total_sync_service_cycles(self) -> float:
        """Flush/invalidate service cycles only (excluding the CP-side
        dispatch/table/crossbar overheads) — what one additional set of
        acquires/releases would replay (Sec. VI scaling study)."""
        return sum(k.sync_cycles - k.cp_overhead_cycles
                   for k in self.kernels)

    @property
    def num_kernels(self) -> int:
        """Dynamic kernel count."""
        return len(self.kernels)

    def total_accesses(self) -> AccessCounts:
        """Sum of all kernels' access counts."""
        total = AccessCounts()
        for k in self.kernels:
            total.merge(k.accesses)
        return total

    def total_sync(self) -> SyncCounts:
        """Sum of all kernels' synchronization counts."""
        total = SyncCounts()
        for k in self.kernels:
            total.merge(k.sync)
        return total

    def total_traffic(self) -> TrafficMeter:
        """Sum of all kernels' traffic meters."""
        total = TrafficMeter()
        for k in self.kernels:
            total.merge(k.traffic)
        return total

    def energy(self, model: "object") -> Dict[str, float]:
        """Compute the Fig. 9 energy breakdown with ``model``
        (:class:`repro.energy.EnergyModel`)."""
        return model.breakdown(self.total_accesses(), self.total_traffic())

    def summary(self) -> Dict[str, float]:
        """Compact scalar summary used by the experiment harnesses.

        Every value is a plain Python ``float``/``int`` so the summary can
        be serialized with :mod:`json` as-is (the engine's result cache
        relies on this).
        """
        acc = self.total_accesses()
        sync = self.total_sync()
        traffic = self.total_traffic()
        return {
            "cycles": float(self.total_cycles),
            "sync_cycles": float(self.total_sync_cycles),
            "kernels": int(self.num_kernels),
            "l2_miss_rate": float(acc.l2_miss_rate),
            "dram_accesses": int(acc.dram_accesses),
            "traffic_flits": int(traffic.total),
            "remote_flits": int(traffic.remote),
            "acquires_elided": int(sync.acquires_elided),
            "releases_elided": int(sync.releases_elided),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump of the whole run (one entry per
        dynamic kernel), losslessly restored by :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "protocol": self.protocol,
            "num_chiplets": int(self.num_chiplets),
            "kernels": [k.to_dict() for k in self.kernels],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            workload=data["workload"],
            protocol=data["protocol"],
            num_chiplets=int(data["num_chiplets"]),
            kernels=[KernelMetrics.from_dict(k) for k in data["kernels"]],
        )
