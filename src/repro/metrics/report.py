"""Reporting helpers: geometric means, normalization, ASCII tables.

The paper reports results normalized to Baseline per chiplet count
(Fig. 8 caption) and averages across workloads; these helpers implement
those conventions so every experiment module formats output the same way.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 0.0 for an empty input."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Speedup of ``cycles`` relative to ``baseline_cycles`` (>1 is faster)."""
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    return baseline_cycles / cycles


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize every value to ``values[baseline_key]`` (Fig. 8/9/10 style)."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline value for {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (the harnesses print these)."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
