"""CSV export for experiment results.

Downstream analysis (spreadsheets, pandas, plotting scripts) wants flat
tables; this module flattens a sweep's `MatrixResult` or a single run's
`RunMetrics` into CSV text, one row per (workload, protocol, chiplets)
cell or per dynamic kernel.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.experiments.runner import MatrixResult
    from repro.metrics.stats import RunMetrics

#: Per-cell columns exported by :func:`matrix_to_csv`.
MATRIX_COLUMNS = (
    "workload", "protocol", "chiplets", "wall_cycles",
    "speedup_vs_baseline", "l2_miss_rate", "dram_accesses",
    "traffic_flits", "remote_flits", "acquires_issued", "releases_issued",
    "acquires_elided", "releases_elided", "energy_j",
)


def matrix_to_csv(matrix: "MatrixResult") -> str:
    """Flatten a sweep into CSV text (header + one row per cell)."""
    from repro.energy.model import EnergyModel

    model = EnergyModel()
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(MATRIX_COLUMNS)
    for (workload, protocol, chiplets), result in matrix.cells.items():
        acc = result.metrics.total_accesses()
        sync = result.metrics.total_sync()
        traffic = result.metrics.total_traffic()
        try:
            speedup = matrix.speedup_over_baseline(workload, protocol,
                                                   chiplets)
        except KeyError:
            speedup = float("nan")
        writer.writerow([
            workload, protocol, chiplets, f"{result.wall_cycles:.3f}",
            f"{speedup:.6f}", f"{acc.l2_miss_rate:.6f}", acc.dram_accesses,
            traffic.total, traffic.remote, sync.acquires_issued,
            sync.releases_issued, sync.acquires_elided,
            sync.releases_elided,
            f"{result.metrics.energy(model)['total']:.6e}",
        ])
    return out.getvalue()


#: Per-kernel columns exported by :func:`run_to_csv`.
KERNEL_COLUMNS = (
    "kernel_index", "kernel_name", "cycles", "compute_cycles",
    "memory_cycles", "sync_cycles", "chiplets_used", "l2_hits",
    "l2_misses", "dram_accesses", "lines_flushed", "lines_invalidated",
)


def run_to_csv(metrics: "RunMetrics") -> str:
    """Flatten one run into CSV text (one row per dynamic kernel)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(KERNEL_COLUMNS)
    for km in metrics.kernels:
        writer.writerow([
            km.kernel_index, km.kernel_name, f"{km.cycles:.3f}",
            f"{km.compute_cycles:.3f}", f"{km.memory_cycles:.3f}",
            f"{km.sync_cycles:.3f}", km.chiplets_used,
            km.accesses.l2_hits, km.accesses.l2_misses,
            km.accesses.dram_accesses, km.sync.lines_flushed,
            km.sync.lines_invalidated,
        ])
    return out.getvalue()
