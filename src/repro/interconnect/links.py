"""Inter-chiplet link bandwidth model.

A MCM-GPU's inter-chiplet links do not provide full aggregated LLC/HBM
bandwidth to each chiplet (Sec. II-A); Table I gives 768 GB/s of
inter-chiplet interconnect bandwidth. The timing model uses this class to
convert remote traffic volumes into a bandwidth-bound time floor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterChipletLinks:
    """Bandwidth/latency parameters of the chiplet crossbar links.

    Attributes:
        total_bandwidth_bytes_per_sec: Aggregate inter-chiplet bandwidth
            (Table I: 768 GB/s).
        extra_latency_cycles: Added latency of crossing a chiplet boundary;
            Table I implies 390 - 269 = 121 cycles (remote minus local L2).
    """

    total_bandwidth_bytes_per_sec: float = 768e9
    extra_latency_cycles: int = 121

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` across the links at full utilization."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return num_bytes / self.total_bandwidth_bytes_per_sec
