"""Interconnect substrate: flit accounting, inter-chiplet links, CP crossbar.

Fig. 10 measures interconnect traffic in flits, split into three
components: L1-to-L2 (intra-chiplet), L2-to-L3, and remote (inter-chiplet).
:class:`~repro.interconnect.noc.TrafficMeter` maintains exactly those
categories; the per-chiplet L2s are connected via a crossbar over
bandwidth-limited inter-chiplet links (Table I: 768 GB/s).
"""

from repro.interconnect.crossbar import CPCrossbar
from repro.interconnect.links import InterChipletLinks
from repro.interconnect.noc import FlitParams, TrafficMeter

__all__ = ["CPCrossbar", "InterChipletLinks", "FlitParams", "TrafficMeter"]
