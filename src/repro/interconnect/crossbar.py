"""Crossbar connecting the global CP to the per-chiplet local CPs.

Sec. IV-B: the global and local CPs communicate over a high-bandwidth
crossbar with 65 cycles of unicast latency and 100 cycles of broadcast
latency. CPElide's acquire/release requests, their ACKs, and the final
"launch enable" message all cross this crossbar and are on the critical
path, so their latency is modeled (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass
class CPCrossbar:
    """Latency accounting for global-CP <-> local-CP messages.

    Attributes:
        unicast_cycles: One-to-one message latency (Sec. IV-B: 65 cycles).
        broadcast_cycles: One-to-all message latency (Sec. IV-B: 100 cycles).
        messages_sent: Total messages that crossed the crossbar.
    """

    unicast_cycles: int = 65
    broadcast_cycles: int = 100
    messages_sent: int = 0

    def unicast(self, num_targets: int = 1) -> int:
        """Send to ``num_targets`` chiplets one-by-one; returns the latency
        in CP cycles of the slowest (they are sent concurrently, so the
        latency is a single unicast, but each message is counted)."""
        if num_targets < 0:
            raise ValueError(f"num_targets must be >= 0, got {num_targets}")
        if num_targets == 0:
            return 0
        self.messages_sent += num_targets
        return self.unicast_cycles

    def broadcast(self) -> int:
        """Send one message to every chiplet; returns the latency in CP
        cycles."""
        self.messages_sent += 1
        return self.broadcast_cycles

    def gather_acks(self, senders: Iterable[int]) -> int:
        """Collect ACKs from ``senders`` (Sec. III-C ACK counting);
        returns the latency in CP cycles (ACKs travel concurrently)."""
        count = len(list(senders))
        if count == 0:
            return 0
        self.messages_sent += count
        return self.unicast_cycles
