"""Network-on-chip flit accounting.

Fig. 10 reports normalized interconnect traffic measured in flits, divided
into L1-to-L2, L2-to-L3, and remote (inter-chiplet) components. Every
protocol action in the simulator routes its messages through a
:class:`TrafficMeter` so the figure can be regenerated exactly from the
meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class FlitParams:
    """Message-to-flit conversion parameters.

    A control message (request, invalidation, ACK) is one header flit; a
    data message carries a 64 B cache line in ``line_size / flit_bytes``
    payload flits plus the header.
    """

    flit_bytes: int = 32
    line_size: int = 64

    @property
    def control_flits(self) -> int:
        """Flits in a dataless message."""
        return 1

    @property
    def data_flits(self) -> int:
        """Flits in a message carrying one cache line."""
        return 1 + self.line_size // self.flit_bytes


@dataclass
class TrafficMeter:
    """Flit counters in Fig. 10's three categories.

    Attributes:
        l1_l2: Intra-chiplet flits between the CUs' L1s and the chiplet L2.
        l2_l3: Flits between an L2 and the (local bank of the) shared L3,
            including writebacks, write-throughs, refills, and flushes.
        remote: Inter-chiplet flits (remote requests/data, invalidations,
            CP synchronization messages crossing chiplets).
    """

    params: FlitParams = field(default_factory=FlitParams)
    l1_l2: int = 0
    l2_l3: int = 0
    remote: int = 0

    # -- L1 <-> L2 ------------------------------------------------------

    def l1_request(self, count: int = 1) -> None:
        """Record ``count`` L1->L2 request messages."""
        self.l1_l2 += count * self.params.control_flits

    def l1_data(self, count: int = 1) -> None:
        """Record ``count`` line transfers on the L1<->L2 links."""
        self.l1_l2 += count * self.params.data_flits

    # -- L2 <-> L3 ------------------------------------------------------

    def l2_request(self, count: int = 1) -> None:
        """Record ``count`` L2->L3 request messages."""
        self.l2_l3 += count * self.params.control_flits

    def l2_data(self, count: int = 1) -> None:
        """Record ``count`` line transfers on the L2<->L3 links (refills,
        writebacks, write-throughs, flush writebacks)."""
        self.l2_l3 += count * self.params.data_flits

    # -- inter-chiplet ---------------------------------------------------

    def remote_request(self, count: int = 1) -> None:
        """Record ``count`` inter-chiplet control messages."""
        self.remote += count * self.params.control_flits

    def remote_data(self, count: int = 1) -> None:
        """Record ``count`` inter-chiplet line transfers."""
        self.remote += count * self.params.data_flits

    # -- aggregate -------------------------------------------------------

    @property
    def total(self) -> int:
        """All flits across the three categories."""
        return self.l1_l2 + self.l2_l3 + self.remote

    def as_dict(self) -> Dict[str, int]:
        """Return the three Fig. 10 components plus the total."""
        return {"l1_l2": self.l1_l2, "l2_l3": self.l2_l3,
                "remote": self.remote, "total": self.total}

    def to_dict(self) -> Dict[str, int]:
        """Lossless JSON-serializable dump (components + flit params)."""
        return {
            "l1_l2": int(self.l1_l2),
            "l2_l3": int(self.l2_l3),
            "remote": int(self.remote),
            "flit_bytes": int(self.params.flit_bytes),
            "line_size": int(self.params.line_size),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "TrafficMeter":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            params=FlitParams(flit_bytes=int(data["flit_bytes"]),
                              line_size=int(data["line_size"])),
            l1_l2=int(data["l1_l2"]),
            l2_l3=int(data["l2_l3"]),
            remote=int(data["remote"]),
        )

    def merge(self, other: "TrafficMeter") -> None:
        """Accumulate ``other`` into ``self``."""
        self.l1_l2 += other.l1_l2
        self.l2_l3 += other.l2_l3
        self.remote += other.remote

    @property
    def remote_bytes(self) -> int:
        """Approximate inter-chiplet bytes (for link bandwidth limits)."""
        return self.remote * self.params.flit_bytes
