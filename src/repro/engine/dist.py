"""The distributed sweep engine.

Scales a :class:`~repro.engine.spec.SweepSpec` past one scheduler and
one machine. Three pieces compose:

* **Sharding** — :func:`shard_jobs` splits a sweep's pending cells into
  deterministic, content-keyed :class:`WorkUnit`\\ s (contiguous batches,
  so cheap cells amortize process startup and adjacent cells reuse
  interned traces/memo state inside one worker process). The same spec
  always shards the same way, and every unit carries a blake2b key over
  its jobs' cache keys, so units are themselves content-addressed.
* **Shared cache with in-flight dedupe** — every worker (process or
  host) talks to one :class:`~repro.engine.cache.SharedResultCache`.
  Before computing a cell a worker *claims* it; a second worker wanting
  the same cell waits on the claim and is served the first worker's
  result ("served from in-flight"), so no cell is ever computed twice,
  anywhere, even concurrently. Leases expire, so a dead worker's claims
  are reclaimed.
* **Execution** — :class:`DistSweepRunner` runs units across local
  worker processes (``fork``; in-process fallback). For multi-host
  execution, :func:`scatter` serializes the spec and its units as JSON
  into a *work directory* (a shared filesystem), :func:`work` lets any
  host claim and execute units, and :func:`gather` reassembles the
  bit-identical :class:`~repro.engine.runner.SweepResult`.

Results always aggregate in spec order, so a distributed sweep is
bit-identical to ``SweepRunner(jobs=1)`` over the same spec — the
determinism tests in ``tests/test_dist.py`` pin this end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.cache import (
    CLAIM_ACQUIRED,
    CLAIM_HIT,
    CacheStats,
    SharedResultCache,
)
from repro.engine.runner import (
    JobOutcome,
    MemoCounters,
    ProgressFn,
    SweepReport,
    SweepResult,
    _execute_job,
    _fork_available,
    _reconstruct,
    prewarm_pending_traces,
)
from repro.engine.spec import JobSpec, SweepSpec
from repro.errors import CacheError
from repro.obs.tracer import NULL_TRACER, Tracer

#: How a distributed cell was served.
HOW_HIT = "hit"      # already in the shared cache
HOW_RUN = "run"      # computed by this worker (it held the claim)
HOW_DEDUP = "dedup"  # served from another worker's in-flight computation

#: Target work units per worker: enough batches that workers stay busy
#: when cell costs are skewed, few enough that process overhead
#: amortizes across cells.
UNITS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a sweep: a contiguous batch of (index, job) cells.

    ``key`` is a blake2b digest over the member jobs' cache keys — the
    unit's content address, stable across processes and hosts.
    """

    index: int
    items: Tuple[Tuple[int, JobSpec], ...]
    key: str

    @property
    def cells(self) -> int:
        return len(self.items)

    def to_payload(self) -> Dict[str, Any]:
        """JSON round-trip payload (one scattered ``unit-*.json``)."""
        return {
            "index": self.index,
            "key": self.key,
            "items": [[i, job.to_payload()] for i, job in self.items],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WorkUnit":
        items = tuple((int(i), JobSpec.from_payload(jp))
                      for i, jp in payload["items"])
        return cls(index=int(payload["index"]), items=items,
                   key=payload["key"])


def unit_key(jobs: Sequence[JobSpec], cache: SharedResultCache) -> str:
    """Content address of one batch of jobs."""
    digest = hashlib.blake2b(digest_size=16)
    for job in jobs:
        digest.update(cache.key(job).encode())
    return digest.hexdigest()


def shard_jobs(jobs: Sequence[JobSpec], pending: Sequence[int],
               workers: int, cache: SharedResultCache,
               batch_size: Optional[int] = None) -> List[WorkUnit]:
    """Split pending cells into deterministic contiguous batches.

    ``batch_size=None`` sizes batches so each worker sees about
    :data:`UNITS_PER_WORKER` units — big enough to amortize process
    startup over cheap cells, small enough to balance skewed cell costs.
    Sharding depends only on the spec's expansion order and the two
    sizing knobs, never on timing, so the same sweep shards identically
    on every scheduler and host.
    """
    if not pending:
        return []
    if batch_size is None:
        batch_size = max(1, -(-len(pending) // (max(1, workers)
                                                * UNITS_PER_WORKER)))
    units: List[WorkUnit] = []
    for start in range(0, len(pending), batch_size):
        indices = pending[start:start + batch_size]
        items = tuple((i, jobs[i]) for i in indices)
        units.append(WorkUnit(
            index=len(units), items=items,
            key=unit_key([job for _, job in items], cache)))
    return units


@dataclass
class CellResult:
    """One cell's outcome as transported from a worker."""

    index: int
    payload: Dict[str, Any]
    how: str
    seconds: float
    memo: MemoCounters = None


@dataclass
class UnitResult:
    """One executed work unit: its cells plus the worker's accounting."""

    unit_index: int
    worker: str
    pid: int
    cells: List[CellResult]
    stats: CacheStats
    seconds: float

    @property
    def executed(self) -> int:
        return sum(1 for c in self.cells if c.how == HOW_RUN)

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.how == HOW_HIT)

    @property
    def deduped(self) -> int:
        return sum(1 for c in self.cells if c.how == HOW_DEDUP)


def run_job_shared(cache: SharedResultCache, job: JobSpec,
                   tracer: Optional[Tracer] = None,
                   cancel: "Optional[Any]" = None) -> CellResult:
    """Execute one cell through the claim/lease protocol.

    Exactly one worker anywhere computes the cell; everyone else is
    served the stored or in-flight result. ``how`` records which way
    this call went.

    ``tracer`` (same-process callers only — tracers cannot cross the
    fork boundary) threads an observability sink into the simulation,
    so e.g. the job server streams kernel-level progress while the cell
    computes. ``cancel`` is a :class:`~repro.engine.jobs.CancelToken`:
    a tripped token raises :class:`~repro.errors.JobCancelled` before
    the cell starts, and — when the tracer also observes the token, as
    :class:`~repro.obs.streaming.StreamingTracer` does — at the next
    kernel boundary of a running simulation. Either way the claim this
    call acquired is *abandoned* (released immediately), never left to
    expire, so concurrent waiters on the cell take over at once.
    """
    t0 = time.perf_counter()
    if cancel is not None:
        cancel.raise_if_set()
    deduped_before = cache.stats.deduped
    status, value = cache.acquire(job)
    if status == CLAIM_HIT:
        how = (HOW_DEDUP if cache.stats.deduped > deduped_before
               else HOW_HIT)
        return CellResult(index=-1, payload=value, how=how,
                          seconds=time.perf_counter() - t0)
    assert status == CLAIM_ACQUIRED
    token = value
    try:
        if cancel is not None:
            cancel.raise_if_set()
        payload, memo, _obs, seconds, _pid = _execute_job(job, tracer)
    except BaseException:
        cache.abandon(job, token)
        raise
    cache.store_and_release(job, payload, token)
    return CellResult(index=-1, payload=payload, how=HOW_RUN,
                      seconds=seconds, memo=memo)


def _worker_id() -> str:
    import socket
    return f"{socket.gethostname()}:{os.getpid()}"


def _execute_unit(unit: WorkUnit, cache_root: str, salt: str,
                  lease_seconds: float,
                  poll_seconds: float) -> UnitResult:
    """Run one work unit against the shared cache (module-level so the
    process pool can pickle it; also the body of multi-host workers)."""
    cache = SharedResultCache(root=cache_root, salt=salt,
                              lease_seconds=lease_seconds,
                              poll_seconds=poll_seconds)
    t0 = time.perf_counter()
    cells: List[CellResult] = []
    for index, job in unit.items:
        cell = run_job_shared(cache, job)
        cell.index = index
        cells.append(cell)
    return UnitResult(unit_index=unit.index, worker=_worker_id(),
                      pid=os.getpid(), cells=cells,
                      stats=cache.stats.snapshot(),
                      seconds=time.perf_counter() - t0)


class DistSweepRunner:
    """Shard a sweep, execute it across workers, aggregate in order.

    The distributed counterpart of
    :class:`~repro.engine.runner.SweepRunner`: same inputs, same
    bit-identical :class:`~repro.engine.runner.SweepResult`, but cells
    execute as content-keyed work units over a
    :class:`~repro.engine.cache.SharedResultCache`, so any number of
    concurrent runners — in this process, other processes, or other
    hosts pointing at the same cache root — share every completed and
    *in-flight* cell between them.
    """

    def __init__(self, workers: int = 2,
                 cache: Union[SharedResultCache, "os.PathLike[str]",
                              str, None] = None,
                 batch_size: Optional[int] = None,
                 lease_seconds: Optional[float] = None,
                 progress: Optional[ProgressFn] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.workers = max(1, workers)
        if isinstance(cache, SharedResultCache):
            self.cache = cache
        else:
            self.cache = SharedResultCache(root=cache)
        if lease_seconds is not None:
            self.cache.lease_seconds = lease_seconds
        self.batch_size = batch_size
        self.progress = progress
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute every cell of ``spec``; aggregate in spec order."""
        start = time.perf_counter()
        jobs = spec.expand()
        tracer = self.tracer
        if tracer.enabled:
            tracer.sweep_begin(label=f"dist:{spec.kind}:{len(jobs)} cells",
                               cells=len(jobs))
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        stats_before = self.cache.stats.snapshot()

        # Serve whatever the shared cache already holds.
        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = self.cache.load(job)
            if payload is None:
                pending.append(index)
            else:
                outcomes[index] = self._outcome(job, payload, HOW_HIT, 0.0)
        if len(pending) < len(jobs):
            self._emit(f"cache: {len(jobs) - len(pending)}/{len(jobs)} "
                       "jobs already done")

        units = shard_jobs(jobs, pending, self.workers, self.cache,
                           self.batch_size)
        worker_cells: Dict[str, int] = {}
        deduped = 0
        if units:
            results = self._run_units(jobs, pending, units)
            for unit_result in results:
                worker = unit_result.worker
                worker_cells[worker] = (worker_cells.get(worker, 0)
                                        + unit_result.executed)
                deduped += unit_result.deduped
                if tracer.enabled:
                    tracer.shard_event(
                        phase="end", shard=unit_result.unit_index,
                        worker=worker, cells=len(unit_result.cells),
                        executed=unit_result.executed,
                        hits=unit_result.hits,
                        deduped=unit_result.deduped,
                        seconds=unit_result.seconds)
                for cell in unit_result.cells:
                    job = jobs[cell.index]
                    outcomes[cell.index] = self._outcome(
                        job, cell.payload, cell.how, cell.seconds,
                        cell.memo)
                self._emit(f"unit {unit_result.unit_index} "
                           f"[{unit_result.worker}]: "
                           f"{unit_result.executed} run, "
                           f"{unit_result.hits} hit, "
                           f"{unit_result.deduped} in-flight "
                           f"({unit_result.seconds:.2f}s)")
                # Fold the worker's cache accounting into ours so the
                # report's invalidation/dedupe counters see every worker.
                self.cache.stats.merge(unit_result.stats)

        done = [outcome for outcome in outcomes if outcome is not None]
        assert len(done) == len(jobs)
        report = self._report(done, worker_cells, deduped, stats_before,
                              time.perf_counter() - start)
        self._emit(f"sweep done: {report.summary()}")
        obs = None
        if tracer.enabled:
            registry = getattr(tracer, "metrics", None)
            if registry is not None:
                obs = registry.aggregate().to_dict(include_children=False)
        return SweepResult(spec=spec, outcomes=done, report=report, obs=obs)

    # ------------------------------------------------------------------

    def _outcome(self, job: JobSpec, payload: Dict[str, Any], how: str,
                 seconds: float, memo: MemoCounters = None) -> JobOutcome:
        result = _reconstruct(job, payload)
        if how == HOW_RUN:
            if memo is not None:
                (result.memo_hits, result.memo_misses,
                 result.memo_bypasses) = memo
        elif hasattr(result, "from_cache"):
            result.from_cache = True
        if self.tracer.enabled:
            self.tracer.sweep_cell(phase="end", label=job.label,
                                   cached=how != HOW_RUN, seconds=seconds)
        return JobOutcome(job=job, result=result, cached=how != HOW_RUN,
                          seconds=seconds)

    def _run_units(self, jobs: List[JobSpec], pending: List[int],
                   units: List[WorkUnit]) -> List[UnitResult]:
        args = (str(self.cache.root), self.cache.salt,
                self.cache.lease_seconds, self.cache.poll_seconds)
        if self.workers == 1 or len(units) == 1 or not _fork_available():
            return [_execute_unit(unit, *args) for unit in units]
        import multiprocessing

        prewarm_pending_traces(jobs, pending)
        context = multiprocessing.get_context("fork")
        workers = min(self.workers, len(units))
        results: List[UnitResult] = []
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(_execute_unit, unit, *args)
                       for unit in units]
            for future in as_completed(futures):
                results.append(future.result())
        results.sort(key=lambda r: r.unit_index)
        return results

    def _report(self, outcomes: List[JobOutcome],
                worker_cells: Dict[str, int], deduped: int,
                stats_before: CacheStats,
                wall_seconds: float) -> SweepReport:
        executed = [o for o in outcomes if not o.cached]
        slowest = max(executed, key=lambda o: o.seconds, default=None)
        delta = self.cache.stats.since(stats_before)
        per_worker = sorted((n for n in worker_cells.values() if n),
                            reverse=True)
        return SweepReport(
            total_jobs=len(outcomes),
            executed=len(executed),
            cache_hits=len(outcomes) - len(executed) - deduped,
            cache_invalidations=delta.invalidations,
            wall_seconds=wall_seconds,
            workers=len(per_worker) or 1,
            parallel=len(per_worker) > 1,
            slowest_label=slowest.job.label if slowest else "",
            slowest_seconds=slowest.seconds if slowest else 0.0,
            deduped=deduped,
            per_worker_cells=per_worker,
        )


# ---------------------------------------------------------------------------
# Multi-host execution via a filesystem-backed work directory
# ---------------------------------------------------------------------------
#
# Layout of a work directory (any shared filesystem):
#
#     <work_dir>/spec.json            the sweep manifest
#     <work_dir>/units/unit-*.json    scattered work units (JSON JobSpecs)
#     <work_dir>/results/unit-*.json  gathered unit results (JSON payloads)
#     <work_dir>/cache/               the SharedResultCache root
#
# scatter() writes the first two; any number of work() loops — on any
# host — claim units through the shared cache's claim machinery and
# write results; gather() reassembles the SweepResult in spec order.


def _unit_file(work_dir: pathlib.Path, unit_index: int) -> pathlib.Path:
    return work_dir / "units" / f"unit-{unit_index:04d}.json"


def _result_file(work_dir: pathlib.Path, unit_index: int) -> pathlib.Path:
    return work_dir / "results" / f"unit-{unit_index:04d}.json"


def work_dir_cache(work_dir: "os.PathLike[str] | str",
                   salt: Optional[str] = None) -> SharedResultCache:
    """The shared cache a work directory's workers all talk to."""
    return SharedResultCache(root=pathlib.Path(work_dir) / "cache",
                             salt=salt)


def scatter(spec: SweepSpec, work_dir: "os.PathLike[str] | str",
            workers: int = 2, batch_size: Optional[int] = None,
            tracer: Optional[Tracer] = None) -> List[WorkUnit]:
    """Serialize ``spec`` into a work directory as content-keyed units.

    Every cell is scattered (workers serve cached cells instantly via
    the shared cache, so pre-filtering here would only hide the hit
    accounting from the report). Returns the units written.
    """
    work_path = pathlib.Path(work_dir)
    (work_path / "units").mkdir(parents=True, exist_ok=True)
    (work_path / "results").mkdir(parents=True, exist_ok=True)
    cache = work_dir_cache(work_path)
    jobs = spec.expand()
    units = shard_jobs(jobs, list(range(len(jobs))), workers, cache,
                       batch_size)
    (work_path / "spec.json").write_text(json.dumps({
        "spec": spec.to_payload(),
        "salt": cache.salt,
        "units": len(units),
    }, indent=2))
    for unit in units:
        _unit_file(work_path, unit.index).write_text(
            json.dumps(unit.to_payload()))
        if tracer is not None and tracer.enabled:
            tracer.shard_event(phase="scatter", shard=unit.index,
                               cells=unit.cells)
    return units


def work(work_dir: "os.PathLike[str] | str",
         max_units: Optional[int] = None,
         progress: Optional[ProgressFn] = None,
         tracer: Optional[Tracer] = None) -> int:
    """Execute scattered units — callable from any host that sees
    ``work_dir``. Returns the number of units this call executed.

    Unit ownership reuses the claim machinery: a worker exclusively
    creates ``results/unit-*.json.claim`` before executing a unit, so
    concurrent ``work()`` loops (local or remote) split the units
    between them; a crashed worker's unit claim expires like any cell
    claim and the unit is re-executed (its cells are served from the
    shared cache, so nothing is recomputed).
    """
    work_path = pathlib.Path(work_dir)
    manifest = json.loads((work_path / "spec.json").read_text())
    cache = work_dir_cache(work_path, salt=manifest["salt"])
    executed = 0
    for unit_index in range(manifest["units"]):
        if max_units is not None and executed >= max_units:
            break
        result_path = _result_file(work_path, unit_index)
        if result_path.exists():
            continue
        claim_path = result_path.with_suffix(".json.claim")
        if not cache._write_claim(claim_path, cache._claim_token()):
            claim = cache._read_claim(claim_path)
            if claim is not None and not cache._claim_expired(claim):
                continue  # another live worker owns this unit
            # Vanished or expired claim: take it over atomically — the
            # token compare-and-swap in _reclaim_expired prevents two
            # workers from re-executing the same unit.
            if claim is not None and \
                    not cache._reclaim_expired(claim_path, claim):
                continue
            if not cache._write_claim(claim_path, cache._claim_token()):
                continue
        unit = WorkUnit.from_payload(
            json.loads(_unit_file(work_path, unit_index).read_text()))
        if tracer is not None and tracer.enabled:
            tracer.shard_event(phase="begin", shard=unit.index,
                               worker=_worker_id(), cells=unit.cells)
        unit_result = _execute_unit(unit, str(cache.root), cache.salt,
                                    cache.lease_seconds,
                                    cache.poll_seconds)
        tmp = result_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({
            "unit_index": unit_result.unit_index,
            "worker": unit_result.worker,
            "seconds": unit_result.seconds,
            "cells": [{
                "index": cell.index,
                "how": cell.how,
                "seconds": cell.seconds,
                "payload": cell.payload,
            } for cell in unit_result.cells],
        }))
        tmp.replace(result_path)
        claim_path.unlink(missing_ok=True)
        executed += 1
        if tracer is not None and tracer.enabled:
            tracer.shard_event(phase="end", shard=unit.index,
                               worker=unit_result.worker,
                               cells=unit.cells,
                               executed=unit_result.executed,
                               hits=unit_result.hits,
                               deduped=unit_result.deduped,
                               seconds=unit_result.seconds)
        if progress is not None:
            progress(f"unit {unit_index}: {unit_result.executed} run, "
                     f"{unit_result.hits} hit, "
                     f"{unit_result.deduped} in-flight "
                     f"({unit_result.seconds:.2f}s)")
    return executed


def gather(work_dir: "os.PathLike[str] | str") -> SweepResult:
    """Reassemble a scattered sweep's :class:`SweepResult` in spec order.

    Raises :class:`~repro.errors.CacheError` naming the missing units if
    any worker has not finished yet.
    """
    work_path = pathlib.Path(work_dir)
    manifest = json.loads((work_path / "spec.json").read_text())
    spec = SweepSpec.from_payload(manifest["spec"])
    jobs = spec.expand()
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    missing = []
    worker_cells: Dict[str, int] = {}
    deduped = 0
    wall = 0.0
    for unit_index in range(manifest["units"]):
        result_path = _result_file(work_path, unit_index)
        if not result_path.exists():
            missing.append(unit_index)
            continue
        document = json.loads(result_path.read_text())
        wall = max(wall, document["seconds"])
        for cell in document["cells"]:
            job = jobs[cell["index"]]
            result = _reconstruct(job, cell["payload"])
            cached = cell["how"] != HOW_RUN
            if cached and hasattr(result, "from_cache"):
                result.from_cache = True
            if cell["how"] == HOW_DEDUP:
                deduped += 1
            if not cached:
                worker = document["worker"]
                worker_cells[worker] = worker_cells.get(worker, 0) + 1
            outcomes[cell["index"]] = JobOutcome(
                job=job, result=result, cached=cached,
                seconds=cell["seconds"])
    if missing:
        raise CacheError(
            f"gather({work_path}): {len(missing)} unit(s) not finished "
            f"yet: {missing[:8]}{'...' if len(missing) > 8 else ''}")
    done = [o for o in outcomes if o is not None]
    assert len(done) == len(jobs)
    executed = [o for o in done if not o.cached]
    slowest = max(executed, key=lambda o: o.seconds, default=None)
    per_worker = sorted(worker_cells.values(), reverse=True)
    report = SweepReport(
        total_jobs=len(done),
        executed=len(executed),
        cache_hits=len(done) - len(executed) - deduped,
        wall_seconds=wall,
        workers=len(per_worker) or 1,
        parallel=len(per_worker) > 1,
        slowest_label=slowest.job.label if slowest else "",
        slowest_seconds=slowest.seconds if slowest else 0.0,
        deduped=deduped,
        per_worker_cells=per_worker,
    )
    return SweepResult(spec=spec, outcomes=done, report=report)
