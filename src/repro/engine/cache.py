"""Content-addressed on-disk cache of completed simulation results.

A sweep cell is fully determined by its :class:`~repro.engine.spec.JobSpec`
(workload spec + protocol + every ``GPUConfig`` field + scheduler) and by
the simulator's code version. The cache addresses each cell by a stable
SHA-256 of the job's canonical JSON identity; the code version enters as a
*salt* stored inside the entry, so a simulator-affecting edit invalidates
stale entries on first touch (counted, and the file is replaced) while
edits to the engine/experiment/CLI layers leave every entry valid —
re-running a finished experiment after an unrelated edit is near-instant.

Entries are JSON documents (``SimulationResult.to_dict()`` payloads), so
a cache hit reproduces the original result bit-for-bit. Layout::

    <root>/<key[:2]>/<key>.json

The root defaults to ``~/.cache/repro-cpelide`` and is overridden by the
``REPRO_CACHE_DIR`` environment variable (the test suite points it at a
tmpdir).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.engine.spec import JobSpec
from repro.errors import CacheError

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subpackages whose source text determines simulation results. Edits
#: anywhere else (engine/, experiments/, analysis CLI glue, docs, tests)
#: do not invalidate cached results.
_SALT_PACKAGES = ("core", "coherence", "cp", "memory", "interconnect",
                  "gpu", "timing", "energy", "workloads", "metrics",
                  "analysis", "hip")

#: Individual modules outside those subpackages that also shape results:
#: the multi-stream workload builder feeds ``("multistream", ...)`` jobs,
#: and ``engine/spec.py`` shapes every job's cache-key payload (an edit
#: there can change which payload a key maps to, so it must salt even
#: though the rest of ``engine/`` does not).
_SALT_MODULES = ("experiments/multistream.py", "engine/spec.py")


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of every simulation-relevant source file.

    Hashed once per process; any edit under the :data:`_SALT_PACKAGES`
    subpackages or to a :data:`_SALT_MODULES` file changes the salt and
    therefore invalidates prior entries. A registered path that does not
    exist is a configuration bug, reported as such rather than leaking a
    bare ``FileNotFoundError`` from deep inside a sweep.
    """
    import repro
    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in _SALT_PACKAGES:
        package_root = root / package
        if not package_root.is_dir():
            raise CacheError(
                f"code_version_salt: salt package {package!r} not found "
                f"under {root} — update _SALT_PACKAGES in "
                f"repro/engine/cache.py to match the source tree")
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
    for module in _SALT_MODULES:
        path = root / module
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise CacheError(
                f"code_version_salt: salt module {module!r} not found at "
                f"{path} — update _SALT_MODULES in repro/engine/cache.py "
                f"to match the source tree") from None
        digest.update(module.encode())
        digest.update(data)
    return digest.hexdigest()[:16]


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root (honouring ``REPRO_CACHE_DIR``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-cpelide"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0

    def snapshot(self) -> "CacheStats":
        """Copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.invalidations,
                          self.stores)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot."""
        return CacheStats(self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.invalidations - earlier.invalidations,
                          self.stores - earlier.stores)


class ResultCache:
    """Content-addressed JSON store of completed job results."""

    def __init__(self, root: "os.PathLike[str] | str | None" = None,
                 salt: Optional[str] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def key(self, job: JobSpec) -> str:
        """Stable content hash identifying one job."""
        canonical = json.dumps(job.key_payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------

    def load(self, job: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the cached result payload for ``job``, or ``None``.

        A present entry whose salt does not match the current code
        version is *invalidated*: counted, deleted, and reported as a
        miss so the caller recomputes it.
        """
        path = self._path(self.key(job))
        try:
            document = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # Unreadable/corrupt entry: drop it and recompute.
            self.stats.invalidations += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        if document.get("salt") != self.salt:
            self.stats.invalidations += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return document["result"]

    def store(self, job: JobSpec, result: Dict[str, Any]) -> None:
        """Persist one job's result payload (atomic rename)."""
        key = self.key(job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"salt": self.salt, "job": job.key_payload(),
                    "result": result}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document))
        tmp.replace(path)
        self.stats.stores += 1

    # ------------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry under the root; returns entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
