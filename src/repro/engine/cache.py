"""Content-addressed on-disk cache of completed simulation results.

A sweep cell is fully determined by its :class:`~repro.engine.spec.JobSpec`
(workload spec + protocol + every ``GPUConfig`` field + scheduler) and by
the simulator's code version. The cache addresses each cell by a stable
blake2b digest of the job's canonical JSON identity; the code version enters as a
*salt* stored inside the entry, so a simulator-affecting edit invalidates
stale entries on first touch (counted, and the file is replaced) while
edits to the engine/experiment/CLI layers leave every entry valid —
re-running a finished experiment after an unrelated edit is near-instant.

Entries are JSON documents (``SimulationResult.to_dict()`` payloads), so
a cache hit reproduces the original result bit-for-bit. Layout::

    <root>/<key[:2]>/<key>.json

The root defaults to ``~/.cache/repro-cpelide`` and is overridden by the
``REPRO_CACHE_DIR`` environment variable (the test suite points it at a
tmpdir).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.spec import JobSpec
from repro.errors import CacheError

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subpackages whose source text determines simulation results. Edits
#: anywhere else (engine/, experiments/, analysis CLI glue, docs, tests)
#: do not invalidate cached results.
_SALT_PACKAGES = ("core", "coherence", "cp", "memory", "interconnect",
                  "gpu", "timing", "energy", "workloads", "metrics",
                  "analysis", "hip")

#: Individual modules outside those subpackages that also shape results:
#: the multi-stream workload builder feeds ``("multistream", ...)`` jobs,
#: and ``engine/spec.py`` shapes every job's cache-key payload (an edit
#: there can change which payload a key maps to, so it must salt even
#: though the rest of ``engine/`` does not).
_SALT_MODULES = ("experiments/multistream.py", "engine/spec.py")


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Digest of every simulation-relevant source file.

    Hashed once per process; any edit under the :data:`_SALT_PACKAGES`
    subpackages or to a :data:`_SALT_MODULES` file changes the salt and
    therefore invalidates prior entries. A registered path that does not
    exist is a configuration bug, reported as such rather than leaking a
    bare ``FileNotFoundError`` from deep inside a sweep.
    """
    import repro
    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in _SALT_PACKAGES:
        package_root = root / package
        if not package_root.is_dir():
            raise CacheError(
                f"code_version_salt: salt package {package!r} not found "
                f"under {root} — update _SALT_PACKAGES in "
                f"repro/engine/cache.py to match the source tree")
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(path.read_bytes())
    for module in _SALT_MODULES:
        path = root / module
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise CacheError(
                f"code_version_salt: salt module {module!r} not found at "
                f"{path} — update _SALT_MODULES in repro/engine/cache.py "
                f"to match the source tree") from None
        digest.update(module.encode())
        digest.update(data)
    return digest.hexdigest()[:16]


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root (honouring ``REPRO_CACHE_DIR``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-cpelide"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one cache instance.

    The last three counters only move on a :class:`SharedResultCache`:
    ``deduped`` counts results served from another worker's *in-flight*
    computation (the claim/lease protocol), ``claims`` counts claims this
    instance acquired, and ``reclaims`` counts expired leases it took
    over from dead workers.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0
    deduped: int = 0
    claims: int = 0
    reclaims: int = 0

    def snapshot(self) -> "CacheStats":
        """Copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.invalidations,
                          self.stores, self.deduped, self.claims,
                          self.reclaims)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot."""
        return CacheStats(self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.invalidations - earlier.invalidations,
                          self.stores - earlier.stores,
                          self.deduped - earlier.deduped,
                          self.claims - earlier.claims,
                          self.reclaims - earlier.reclaims)

    def merge(self, other: "CacheStats") -> None:
        """Fold another instance's counters into this one (the parent
        aggregates per-worker cache stats after a distributed sweep)."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.stores += other.stores
        self.deduped += other.deduped
        self.claims += other.claims
        self.reclaims += other.reclaims


class ResultCache:
    """Content-addressed JSON store of completed job results."""

    def __init__(self, root: "os.PathLike[str] | str | None" = None,
                 salt: Optional[str] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def key(self, job: JobSpec) -> str:
        """Stable content hash identifying one job (blake2b, matching
        the memo store's digests)."""
        canonical = json.dumps(job.key_payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.blake2b(canonical.encode(),
                               digest_size=32).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------

    def load(self, job: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the cached result payload for ``job``, or ``None``.

        A present entry whose salt does not match the current code
        version is *invalidated*: counted, deleted, and reported as a
        miss so the caller recomputes it.
        """
        path = self._path(self.key(job))
        try:
            document = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            # Unreadable/corrupt entry: drop it and recompute.
            self.stats.invalidations += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        if document.get("salt") != self.salt:
            self.stats.invalidations += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return document["result"]

    def store(self, job: JobSpec, result: Dict[str, Any]) -> None:
        """Persist one job's result payload (atomic rename)."""
        key = self.key(job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"salt": self.salt, "job": job.key_payload(),
                    "result": result}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document))
        tmp.replace(path)
        self.stats.stores += 1

    # ------------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry under the root; returns entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


# ---------------------------------------------------------------------------
# Cross-process shared cache with in-flight dedupe (claim/lease protocol)
# ---------------------------------------------------------------------------

#: Default lease duration for an in-flight claim. Long enough for any
#: single sweep cell at bench scale; short enough that a dead worker's
#: claim is reclaimed within one polling generation.
DEFAULT_LEASE_SECONDS = 300.0

#: Default polling interval while waiting on another worker's claim.
DEFAULT_POLL_SECONDS = 0.05

#: Upper bound on the clock-skew margin added to claim deadlines before
#: they count as expired. Claim deadlines are *wall-clock* timestamps —
#: the only clock two hosts sharing a cache directory have in common —
#: so a reader whose clock runs ahead of the writer's would otherwise
#: reclaim a perfectly live claim. The effective margin is proportional
#: to the claim's own lease (a 300 s lease tolerates 5 s of skew, a
#: 10 ms test lease only 2.5 ms, so short-lease tests still expire
#: promptly), capped here.
MAX_CLAIM_SKEW_SECONDS = 5.0

#: Fraction of a claim's lease granted as skew margin (capped at
#: :data:`MAX_CLAIM_SKEW_SECONDS`).
CLAIM_SKEW_FRACTION = 0.25

#: ``try_claim`` outcomes.
CLAIM_HIT = "hit"          # result already stored; payload returned
CLAIM_ACQUIRED = "claimed"  # caller owns the cell and must compute it
CLAIM_INFLIGHT = "inflight"  # another live worker is computing it


class SharedResultCache(ResultCache):
    """A :class:`ResultCache` safe for concurrent multi-process use,
    with *in-flight dedupe*.

    Storage stays plain content-addressed JSON files (atomic rename), so
    any number of readers/writers on one filesystem — including workers
    on different hosts sharing a network mount — can use one root
    concurrently. What this subclass adds is the **claim/lease
    protocol**: before computing a missing cell a worker *claims* it by
    exclusively creating ``<key>.claim`` beside the entry. A second
    worker that wants the same cell sees the live claim, *waits* instead
    of recomputing, and is served the first worker's result the moment
    it lands (counted as ``deduped`` — "served from in-flight"). Claims
    carry a deadline; a claim whose lease expired (its worker died or
    hung) is *reclaimed* by the next requester, so no cell can be
    orphaned. Claim files are never ``.json``, so they are invisible to
    ``clear()``/``__len__``.

    **Timekeeping.** Two different clocks are in play and must not be
    conflated:

    * *Claim deadlines* are **wall-clock** (``time.time()``) timestamps,
      because they are compared across processes and hosts — wall time
      is the only clock a network-mounted cache directory's readers
      share. A claim only counts as expired once its deadline plus a
      *skew margin* has passed (:meth:`_claim_expired`), so a reader
      whose clock runs slightly ahead of the writer's cannot reclaim a
      live claim. The margin scales with the claim's own lease
      (:data:`CLAIM_SKEW_FRACTION`, capped at
      :data:`MAX_CLAIM_SKEW_SECONDS`).
    * *Local timeouts* (the ``timeout`` parameter of :meth:`wait_for`)
      are measured on ``time.monotonic()``: a backwards wall-clock step
      (NTP correction, manual adjustment) must neither stall a wait
      forever nor expire it early.
    """

    def __init__(self, root: "os.PathLike[str] | str | None" = None,
                 salt: Optional[str] = None,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_seconds: float = DEFAULT_POLL_SECONDS) -> None:
        super().__init__(root=root, salt=salt)
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds

    # ------------------------------------------------------------------

    def _claim_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.claim"

    def _claim_token(self) -> str:
        import secrets
        import socket
        return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(8)}"

    def _read_claim(self, path: pathlib.Path) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _peek(self, job: JobSpec) -> Optional[Dict[str, Any]]:
        """Like :meth:`load` but without touching the hit/miss counters
        (the claim/wait paths do their own accounting)."""
        path = self._path(self.key(job))
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if document.get("salt") != self.salt:
            return None
        return document["result"]

    def _write_claim(self, path: pathlib.Path, token: str) -> bool:
        """Atomically create the claim file; False if it already exists.

        The deadline is wall-clock (cross-host comparable); the claim
        also records its own lease duration so readers can scale their
        skew margin to it (see :meth:`_claim_expired`).
        """
        import time
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({
            "token": token,
            "pid": os.getpid(),
            "deadline": time.time() + self.lease_seconds,
            "lease": self.lease_seconds,
        })
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(body)
        return True

    def _claim_expired(self, claim: Dict[str, Any]) -> bool:
        """Whether a claim's lease has expired, with skew margin.

        The deadline comparison is deliberately wall-clock — it is the
        only clock shared with claim writers on other hosts — guarded by
        a margin proportional to the claim's declared lease so a reader
        with a fast clock cannot reclaim a live claim.
        """
        import time
        lease = float(claim.get("lease", self.lease_seconds))
        margin = min(MAX_CLAIM_SKEW_SECONDS, CLAIM_SKEW_FRACTION * lease)
        return claim.get("deadline", 0.0) + margin <= time.time()

    def _reclaim_expired(self, claim_path: pathlib.Path,
                         observed: Dict[str, Any]) -> bool:
        """Atomically remove an expired claim (token compare-and-swap).

        Naively ``unlink()``-ing an expired claim races: two waiters
        that both observed the expired deadline would each unlink +
        exclusively recreate, with the second unlink deleting the *first
        reclaimer's fresh claim* — and both would then compute the cell.
        Instead the claim is renamed to a private quarantine path (an
        atomic take: exactly one renamer wins, the loser gets ENOENT)
        and its token is compared against the one the caller observed
        expired. A mismatch means the path held a *newer* claim written
        between our read and our rename; it is restored via
        ``os.link`` (a no-op if yet another claimant already created a
        fresh claim meanwhile — that owner's release simply finds a
        foreign token and leaves it alone).

        Returns True if this caller removed the expired claim and may
        now race the exclusive create; the winner is counted as one
        ``reclaims``.
        """
        quarantine = claim_path.with_name(
            f"{claim_path.name}.reclaim-{os.getpid()}-{id(self):x}")
        try:
            os.rename(claim_path, quarantine)
        except OSError:
            return False  # another reclaimer (or the owner) acted first
        stolen = self._read_claim(quarantine)
        if stolen is not None and stolen.get("token") != observed.get("token"):
            try:
                os.link(quarantine, claim_path)
            except OSError:
                pass
            quarantine.unlink(missing_ok=True)
            return False
        quarantine.unlink(missing_ok=True)
        self.stats.reclaims += 1
        return True

    # ------------------------------------------------------------------

    def try_claim(self, job: JobSpec) -> "Tuple[str, Any]":
        """One attempt to acquire ``job``'s cell.

        Returns one of:

        * ``(CLAIM_HIT, payload)`` — the result is already stored;
        * ``(CLAIM_ACQUIRED, token)`` — the caller now owns the cell and
          must compute it, then :meth:`store_and_release` (or
          :meth:`abandon` on failure);
        * ``(CLAIM_INFLIGHT, claim_dict)`` — another live worker holds
          the claim; :meth:`wait_for` the result.
        """
        payload = self.load(job)  # counts hit or miss
        if payload is not None:
            return CLAIM_HIT, payload
        claim_path = self._claim_path(self.key(job))
        token = self._claim_token()
        for attempt in (0, 1, 2):
            if self._write_claim(claim_path, token):
                self.stats.claims += 1
                return CLAIM_ACQUIRED, token
            claim = self._read_claim(claim_path)
            if claim is None:
                # Claim vanished between exists-check and read (the
                # holder just released it): retry the exclusive create.
                continue
            if self._claim_expired(claim):
                # Expired lease: the holder died or hung. Remove the
                # stale claim atomically (exactly one of any number of
                # concurrent reclaimers wins the compare-and-swap) and
                # retry the exclusive create; losers re-read and find
                # the winner's fresh claim.
                self._reclaim_expired(claim_path, claim)
                continue
            return CLAIM_INFLIGHT, claim
        return CLAIM_INFLIGHT, {"token": None, "deadline": 0.0}

    def acquire(self, job: JobSpec) -> "Tuple[str, Any]":
        """Blocking front half of the dedupe protocol.

        Loops :meth:`try_claim`/:meth:`wait_for` until the caller either
        holds the result (``(CLAIM_HIT, payload)`` — a plain hit, or a
        result served from another worker's in-flight computation) or
        owns the claim (``(CLAIM_ACQUIRED, token)``).
        """
        while True:
            status, value = self.try_claim(job)
            if status != CLAIM_INFLIGHT:
                return status, value
            payload = self.wait_for(job)
            if payload is not None:
                return CLAIM_HIT, payload
            # The in-flight worker died without storing: loop and claim.

    def wait_for(self, job: JobSpec,
                 timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Wait for another worker's in-flight computation of ``job``.

        Polls until the result lands (returned, counted as ``deduped``),
        the claim disappears or expires without a result (``None`` — the
        caller should claim the cell itself), or ``timeout`` elapses.

        ``timeout`` is a *local* deadline, measured on the monotonic
        clock: a wall-clock step (NTP slew, manual adjustment) while
        waiting must neither stall the wait nor cut it short. Only the
        claim's own deadline — written by a possibly-remote worker — is
        compared in wall time (see :meth:`_claim_expired`).
        """
        import time
        claim_path = self._claim_path(self.key(job))
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            payload = self._peek(job)
            if payload is not None:
                self.stats.deduped += 1
                return payload
            claim = self._read_claim(claim_path)
            if claim is None or self._claim_expired(claim):
                return None
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(self.poll_seconds)

    def store_and_release(self, job: JobSpec, result: Dict[str, Any],
                          token: str) -> None:
        """Publish a computed result, then drop the caller's claim.

        Order matters: the result must be visible *before* the claim
        disappears, so a waiter never observes "no claim, no result" for
        a cell that was computed successfully.
        """
        self.store(job, result)
        self._release(job, token)

    def abandon(self, job: JobSpec, token: str) -> None:
        """Drop a claim without storing (the computation failed); a
        waiter or the next requester takes the cell over."""
        self._release(job, token)

    def _release(self, job: JobSpec, token: str) -> None:
        claim_path = self._claim_path(self.key(job))
        claim = self._read_claim(claim_path)
        if claim is not None and claim.get("token") == token:
            claim_path.unlink(missing_ok=True)

    def claimed_keys(self) -> "List[str]":
        """Keys with a live claim file (diagnostics)."""
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.rglob("*.claim"))
