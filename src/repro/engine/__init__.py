"""Parallel sweep engine with content-addressed result caching.

The execution substrate under every experiment harness and both CLIs:

* :class:`~repro.engine.spec.SweepSpec` — a declarative workloads x
  protocols x configs product, expanded into picklable
  :class:`~repro.engine.spec.JobSpec` cells in a canonical order;
* :class:`~repro.engine.cache.ResultCache` — a content-addressed on-disk
  JSON cache of completed cells (keyed by workload + protocol +
  ``GPUConfig`` fields + scheduler, salted with a code-version digest),
  with hit/miss/invalidation accounting;
* :class:`~repro.engine.runner.SweepRunner` — fans cache misses out over
  a ``fork``-based process pool (serial fallback for ``jobs=1`` and
  platforms without ``fork``) and aggregates results deterministically
  in spec order, emitting a :class:`~repro.engine.runner.SweepReport`.

Typical use goes through the :mod:`repro.api` facade::

    from repro.api import sweep
    result = sweep(workloads=("square", "bfs"), jobs=4)
    print(result.report.summary())
"""

from repro.engine.cache import (
    CacheStats,
    ResultCache,
    SharedResultCache,
    code_version_salt,
    default_cache_dir,
)
from repro.engine.dist import (
    DistSweepRunner,
    WorkUnit,
    gather,
    run_job_shared,
    scatter,
    shard_jobs,
    work,
)
from repro.engine.jobs import CancelToken
from repro.engine.runner import (
    JobOutcome,
    SweepReport,
    SweepResult,
    SweepRunner,
    resolve_jobs,
)
from repro.engine.spec import (
    DEFAULT_PROTOCOLS,
    DEFAULT_SCALE,
    JobSpec,
    SweepSpec,
    build_for_job,
    workload_label,
)

__all__ = [
    "CacheStats",
    "CancelToken",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_SCALE",
    "DistSweepRunner",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "SharedResultCache",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "WorkUnit",
    "build_for_job",
    "code_version_salt",
    "default_cache_dir",
    "gather",
    "resolve_jobs",
    "run_job_shared",
    "scatter",
    "shard_jobs",
    "work",
    "workload_label",
]
