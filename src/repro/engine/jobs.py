"""Job handles: cancellation tokens for long-running engine work.

The sweep engine's unit of work is one cell — a single simulation that,
once started, runs for seconds. Anything that owns such work on behalf
of someone else (the HTTP job server, a distributed worker loop) needs
two things the bare runner does not provide:

* a **cancellation token** (:class:`CancelToken`) it can trip from
  another thread, observed *between* cells and — via the tracer's
  kernel-boundary hooks — *inside* a running simulation; and
* a guarantee that cancelling a cell mid-compute **abandons its
  shared-cache claim** instead of leaving it to expire, so waiters on
  the same cell take over immediately rather than after a full lease.

:func:`repro.engine.dist.run_job_shared` accepts a token and honors
both: a tripped token raises :class:`~repro.errors.JobCancelled`, and
the claim/abandon pairing already in place releases the cell on any
exception, cancellation included.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import JobCancelled

__all__ = ["CancelToken", "JobCancelled"]


class CancelToken:
    """A thread-safe, one-way cancellation flag.

    ``cancel()`` may be called from any thread (typically an asyncio
    handler reacting to ``POST /v1/jobs/{id}/cancel`` while the job runs
    in an executor thread). The running side calls :meth:`raise_if_set`
    at its check points — between sweep cells, and at kernel boundaries
    through :class:`~repro.obs.streaming.StreamingTracer` — which raises
    :class:`~repro.errors.JobCancelled` carrying ``reason``.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Trip the token (idempotent; the first reason wins)."""
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether the token has been tripped."""
        return self._event.is_set()

    def raise_if_set(self) -> None:
        """Raise :class:`~repro.errors.JobCancelled` if tripped."""
        if self._event.is_set():
            raise JobCancelled(self.reason or "job cancelled")
