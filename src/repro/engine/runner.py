"""The parallel sweep engine.

:class:`SweepRunner` turns a :class:`~repro.engine.spec.SweepSpec` into
results: it expands the spec into jobs, serves completed jobs from the
:class:`~repro.engine.cache.ResultCache`, fans the misses out across a
``concurrent.futures.ProcessPoolExecutor`` worker pool (``fork`` start
method; serial in-process execution for ``jobs=1`` or platforms without
``fork``), and aggregates results **in spec order** regardless of
completion order. Results cross the process boundary and the cache as
JSON-stable ``to_dict()`` payloads, so serial, parallel, and cached runs
of the same spec are bit-identical.

Every run produces a :class:`SweepReport`: jobs run vs. served from
cache, invalidations, wall seconds, and the slowest job — the summary
the CLIs print after each sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.engine.cache import ResultCache
from repro.engine.spec import JobSpec, SweepSpec, workload_label
from repro.obs.tracer import NULL_TRACER, Tracer

#: Result types a job can produce (SimulationResult or
#: TableOccupancyProfile; both expose ``to_dict``/``from_dict``).
JobResult = Any

ProgressFn = Callable[[str], None]


#: Per-run memo counters as transported beside a job payload:
#: ``(hits, misses, bypasses)``, or ``None`` when the run was not
#: memoized. Kept *outside* the payload — the serialized dump must stay
#: bit-identical across trace paths for the cache key round trip.
MemoCounters = Optional[Tuple[int, int, int]]


def _execute_job(job: JobSpec, tracer: Optional[Tracer] = None,
                 ) -> Tuple[Dict[str, Any], MemoCounters,
                            Optional[Dict[str, Any]], float, int]:
    """Run one job; return ``(payload, memo counters, obs, seconds,
    worker pid)``.

    Module-level so the process pool can pickle it; imports are local so
    forked workers pay them only when first used. ``tracer`` is only
    threaded on the serial path (it cannot cross the fork boundary);
    like the memo counters, the run's ``obs`` metrics travel *beside*
    the payload so cached payloads stay bit-identical to untraced runs.
    """
    from repro.engine.spec import build_for_job

    start = time.perf_counter()
    workload = build_for_job(job.workload, job.config)
    memo: MemoCounters = None
    obs: Optional[Dict[str, Any]] = None
    if job.kind == "occupancy":
        from repro.analysis.occupancy import profile_table_occupancy
        result = profile_table_occupancy(workload, job.config)
    else:
        from repro.gpu.sim import Simulator
        result = Simulator(job.config, job.protocol,
                           scheduler=job.scheduler,
                           trace_path=job.trace_path,
                           tracer=tracer).run(workload)
        if result.memo_hits is not None:
            # Worker ran the memo trace path (REPRO_TRACE_PATH): the
            # counters do not survive to_dict(), so carry them beside
            # the payload and reattach after reconstruction.
            memo = (result.memo_hits, result.memo_misses,
                    result.memo_bypasses)
        obs = result.obs
    return (result.to_dict(), memo, obs, time.perf_counter() - start,
            os.getpid())


def _reconstruct(job: JobSpec, payload: Dict[str, Any]) -> JobResult:
    """Rebuild a job's typed result from its payload."""
    if job.kind == "occupancy":
        from repro.analysis.occupancy import TableOccupancyProfile
        return TableOccupancyProfile.from_dict(payload)
    from repro.gpu.sim import Simulator  # noqa: F401  (import cycle guard)
    from repro.gpu.sim import SimulationResult
    return SimulationResult.from_dict(payload)


def prewarm_pending_traces(jobs: List[JobSpec],
                           pending: List[int]) -> None:
    """Generate the pending simulation jobs' RANDOM/INDIRECT run-traces
    in the parent (deduplicated per workload/config) so ``fork``-started
    workers inherit the interned traces copy-on-write instead of each
    re-sampling them from scratch."""
    from repro.engine.spec import build_for_job
    from repro.workloads.base import prewarm_workload_traces

    seen = set()
    for index in pending:
        job = jobs[index]
        if job.kind == "occupancy":
            continue
        key = (workload_label(job.workload), repr(job.config))
        if key in seen:
            continue
        seen.add(key)
        workload = build_for_job(job.workload, job.config)
        prewarm_workload_traces(workload, job.config.num_chiplets)


def _fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    import multiprocessing
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


@dataclass
class JobOutcome:
    """One completed cell: the job, its result, and how it was served."""

    job: JobSpec
    result: JobResult
    cached: bool
    seconds: float = 0.0

    @property
    def workload(self) -> str:
        """Result-keying workload name."""
        return workload_label(self.job.workload)


@dataclass
class SweepReport:
    """Execution summary of one sweep.

    ``workers`` is the *effective* worker count — the processes that
    actually executed cells, not the requested pool size (a sweep with
    two pending cells never uses more than two workers).
    ``per_worker_cells`` lists how many cells each of those workers
    executed (descending); ``deduped`` counts cells served from another
    worker's in-flight computation via the shared cache's claim/lease
    protocol (distributed sweeps only).
    """

    total_jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_invalidations: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    parallel: bool = False
    slowest_label: str = ""
    slowest_seconds: float = 0.0
    deduped: int = 0
    per_worker_cells: List[int] = field(default_factory=list)

    def summary(self) -> str:
        """One-line report the CLIs print after a sweep."""
        mode = (f"{self.workers} workers" if self.parallel else "serial")
        if self.parallel and self.per_worker_cells:
            cells = "/".join(str(n) for n in self.per_worker_cells)
            mode += f", {cells} cells"
        line = (f"{self.total_jobs} jobs: {self.cache_hits} cache hits, "
                f"{self.deduped} served from in-flight, "
                f"{self.executed} run ({mode}), "
                f"{self.cache_invalidations} invalidated; "
                f"wall {self.wall_seconds:.2f}s")
        if self.slowest_label:
            line += (f"; slowest {self.slowest_label} "
                     f"({self.slowest_seconds:.2f}s)")
        return line


@dataclass
class SweepResult:
    """All outcomes of one sweep, in spec (expansion) order."""

    spec: SweepSpec
    outcomes: List[JobOutcome] = field(default_factory=list)
    report: SweepReport = field(default_factory=SweepReport)
    #: Sweep-level aggregated observability metrics (the tracer's
    #: :class:`~repro.obs.metrics.MetricRegistry` folded per-kernel →
    #: per-run → per-sweep, as a dict). ``None`` on untraced sweeps;
    #: excluded from :meth:`to_dicts` so traced and untraced sweeps
    #: serialize identically.
    obs: Optional[Dict[str, Any]] = None

    @property
    def results(self) -> List[JobResult]:
        """Bare results in spec order."""
        return [outcome.result for outcome in self.outcomes]

    def get(self, workload: str, protocol: str,
            num_chiplets: Optional[int] = None) -> JobResult:
        """Fetch one cell by workload label / protocol (/ chiplets)."""
        for outcome in self.outcomes:
            if (outcome.workload == workload
                    and outcome.job.protocol == protocol
                    and (num_chiplets is None
                         or outcome.job.config.num_chiplets == num_chiplets)):
                return outcome.result
        raise KeyError((workload, protocol, num_chiplets))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """``to_dict()`` of every result, in spec order (determinism
        checks compare these across ``jobs`` settings)."""
        return [outcome.result.to_dict() for outcome in self.outcomes]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value (``None``/``0``/negative -> #CPUs)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SweepRunner:
    """Expands, caches, fans out, and deterministically aggregates."""

    def __init__(self, jobs: int = 1,
                 cache: Union[bool, ResultCache, None] = False,
                 cache_dir: "os.PathLike[str] | str | None" = None,
                 progress: Optional[ProgressFn] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache:
            self.cache = ResultCache(root=cache_dir)
        else:
            self.cache = None
        self.progress = progress
        #: Observability sink. Serial sweeps thread it into every
        #: simulation (full kernel-level detail); parallel sweeps only
        #: record sweep-cell events in the parent (tracers cannot cross
        #: the fork boundary).
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute every cell of ``spec`` and aggregate in spec order."""
        start = time.perf_counter()
        jobs = spec.expand()
        tracer = self.tracer
        if tracer.enabled:
            tracer.sweep_begin(label=f"{spec.kind}:{len(jobs)} cells",
                               cells=len(jobs))
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        self._worker_cells: Dict[int, int] = {}
        cache_before = (self.cache.stats.snapshot()
                        if self.cache is not None else None)

        # Serve whatever the cache already holds.
        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = (self.cache.load(job)
                       if self.cache is not None else None)
            if payload is None:
                pending.append(index)
            else:
                result = _reconstruct(job, payload)
                if hasattr(result, "from_cache"):
                    # Cache-served simulation results never fabricate
                    # memo counters: the counters stay None and the
                    # result is marked as replayed from the ResultCache.
                    result.from_cache = True
                outcomes[index] = JobOutcome(job=job, result=result,
                                             cached=True)
                if tracer.enabled:
                    tracer.sweep_cell(phase="end", label=job.label,
                                      cached=True)
        if self.cache is not None and len(pending) < len(jobs):
            self._emit(f"cache: {len(jobs) - len(pending)}/{len(jobs)} "
                       "jobs already done")

        parallel = (self.jobs > 1 and len(pending) > 1 and _fork_available())
        if pending:
            if parallel:
                self._run_parallel(jobs, pending, outcomes)
            else:
                self._run_serial(jobs, pending, outcomes)

        done = [outcome for outcome in outcomes if outcome is not None]
        assert len(done) == len(jobs)
        report = self._report(done, parallel, cache_before,
                              time.perf_counter() - start)
        self._emit(f"sweep done: {report.summary()}")
        obs = None
        if tracer.enabled:
            registry = getattr(tracer, "metrics", None)
            if registry is not None:
                obs = registry.aggregate().to_dict(include_children=False)
        return SweepResult(spec=spec, outcomes=done, report=report, obs=obs)

    # ------------------------------------------------------------------

    def _finish(self, job: JobSpec, payload: Dict[str, Any],
                memo: MemoCounters, obs: Optional[Dict[str, Any]],
                seconds: float, done: int, total: int) -> JobOutcome:
        if self.cache is not None:
            # The payload never carries obs metrics, so traced and
            # untraced runs store byte-identical cache entries.
            self.cache.store(job, payload)
        self._emit(f"[{done}/{total}] {job.label} ({seconds:.2f}s)")
        result = _reconstruct(job, payload)
        if memo is not None:
            result.memo_hits, result.memo_misses, result.memo_bypasses = memo
        if obs is not None and hasattr(result, "obs"):
            result.obs = obs
        if self.tracer.enabled:
            self.tracer.sweep_cell(phase="end", label=job.label,
                                   cached=False, seconds=seconds)
        return JobOutcome(job=job, result=result, cached=False,
                          seconds=seconds)

    def _run_serial(self, jobs: List[JobSpec], pending: List[int],
                    outcomes: List[Optional[JobOutcome]]) -> None:
        tracer = self.tracer if self.tracer.enabled else None
        for done, index in enumerate(pending, start=1):
            if tracer is not None:
                tracer.sweep_cell(phase="begin", label=jobs[index].label)
            payload, memo, obs, seconds, _ = _execute_job(jobs[index], tracer)
            outcomes[index] = self._finish(jobs[index], payload, memo, obs,
                                           seconds, done, len(pending))

    def _prewarm_traces(self, jobs: List[JobSpec],
                        pending: List[int]) -> None:
        prewarm_pending_traces(jobs, pending)

    def _run_parallel(self, jobs: List[JobSpec], pending: List[int],
                      outcomes: List[Optional[JobOutcome]]) -> None:
        import multiprocessing

        self._prewarm_traces(jobs, pending)
        context = multiprocessing.get_context("fork")
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = {pool.submit(_execute_job, jobs[index]): index
                       for index in pending}
            for done, future in enumerate(as_completed(futures), start=1):
                index = futures[future]
                payload, memo, obs, seconds, pid = future.result()
                self._worker_cells[pid] = self._worker_cells.get(pid, 0) + 1
                outcomes[index] = self._finish(jobs[index], payload, memo,
                                               obs, seconds, done,
                                               len(pending))

    # ------------------------------------------------------------------

    def _report(self, outcomes: List[JobOutcome], parallel: bool,
                cache_before, wall_seconds: float) -> SweepReport:
        executed = [o for o in outcomes if not o.cached]
        slowest = max(executed, key=lambda o: o.seconds, default=None)
        invalidations = 0
        if self.cache is not None and cache_before is not None:
            invalidations = self.cache.stats.since(cache_before).invalidations
        per_worker = sorted(self._worker_cells.values(), reverse=True)
        return SweepReport(
            total_jobs=len(outcomes),
            executed=len(executed),
            cache_hits=len(outcomes) - len(executed),
            cache_invalidations=invalidations,
            wall_seconds=wall_seconds,
            workers=(len(per_worker) or self.jobs) if parallel else 1,
            parallel=parallel,
            slowest_label=slowest.job.label if slowest else "",
            slowest_seconds=slowest.seconds if slowest else 0.0,
            per_worker_cells=per_worker,
        )
