"""Declarative sweep specifications and their expansion into jobs.

A sweep is the unit of work behind every figure/table: the cartesian
product of workloads x protocols x configurations (x scheduler), each
cell one independent simulation. :class:`SweepSpec` describes the
product declaratively; :meth:`SweepSpec.expand` flattens it into an
ordered list of :class:`JobSpec`\\ s. The expansion order is the sweep's
canonical result order — the runner aggregates results in this order no
matter which worker finishes first, so parallel runs are bit-identical
to serial ones.

Workloads are referenced by *spec*, not by object, so jobs stay picklable
across worker processes and hashable for the result cache:

* a plain registry name (``"square"``) builds via
  :func:`repro.workloads.suite.build_workload`;
* ``("multistream", name, num_streams)`` builds the Sec. VI concurrent-job
  variant via :func:`repro.experiments.multistream.make_multistream`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.workloads.base import Workload

#: Default simulation scale for sweeps (1/32 of Table I capacities).
DEFAULT_SCALE = 1 / 32

#: The paper's three evaluated configurations.
DEFAULT_PROTOCOLS = ("baseline", "hmg", "cpelide")

#: A workload reference: registry name or special-builder tuple.
WorkloadSpec = Union[str, Tuple[Any, ...]]

#: Job kinds the engine knows how to execute.
JOB_KINDS = ("simulate", "occupancy")


def workload_label(spec: WorkloadSpec) -> str:
    """Human-readable (and result-keying) name of a workload spec."""
    if isinstance(spec, str):
        return spec
    kind = spec[0]
    if kind == "multistream":
        return f"{spec[1]}-ms{spec[2]}"
    raise ConfigError(f"unknown workload spec {spec!r}")


def build_for_job(spec: WorkloadSpec, config: GPUConfig) -> Workload:
    """Materialize a workload spec (runs inside worker processes)."""
    if isinstance(spec, str):
        from repro.workloads.suite import build_workload
        return build_workload(spec, config)
    kind = spec[0]
    if kind == "multistream":
        from repro.experiments.multistream import make_multistream
        return make_multistream(spec[1], config, int(spec[2]))
    raise ConfigError(f"unknown workload spec {spec!r}")


@dataclass(frozen=True)
class JobSpec:
    """One cell of a sweep: everything needed to (re)run one simulation."""

    workload: WorkloadSpec
    protocol: str
    config: GPUConfig
    scheduler: str = "static"
    kind: str = "simulate"
    #: Trace representation the job's simulator should use (``None``
    #: defers to ``REPRO_TRACE_PATH``/the default). Deliberately NOT part
    #: of :meth:`key_payload`: every path produces bit-identical results,
    #: so cache entries are shared across paths (matching the historical
    #: environment-variable behavior).
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigError(
                f"kind must be one of {JOB_KINDS}, got {self.kind!r}")
        if not isinstance(self.protocol, str):
            raise TypeError(
                "JobSpec.protocol must be a registry name (callable "
                "protocol factories are not picklable/cacheable); got "
                f"{self.protocol!r}")
        from repro.coherence.registry import get_protocol
        get_protocol(self.protocol)  # ConfigError before work is queued

    @property
    def label(self) -> str:
        """Short display label, e.g. ``square/cpelide@4``."""
        return (f"{workload_label(self.workload)}/{self.protocol}"
                f"@{self.config.num_chiplets}")

    def key_payload(self) -> Dict[str, Any]:
        """Canonical JSON-able identity of this job (drives the cache
        key): workload spec, protocol, scheduler, kind, and every
        :class:`GPUConfig` field."""
        workload = (self.workload if isinstance(self.workload, str)
                    else list(self.workload))
        return {
            "kind": self.kind,
            "workload": workload,
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "config": dataclasses.asdict(self.config),
        }

    def to_payload(self) -> Dict[str, Any]:
        """Full JSON round-trip payload (identity plus execution-only
        fields like ``trace_path``) — what the distributed engine
        scatters into a work directory for other hosts to pick up."""
        payload = self.key_payload()
        payload["trace_path"] = self.trace_path
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_payload` (lists re-tuple into workload
        specs; the config dict rebuilds a :class:`GPUConfig`)."""
        workload = payload["workload"]
        if isinstance(workload, list):
            workload = tuple(workload)
        return cls(workload=workload,
                   protocol=payload["protocol"],
                   config=GPUConfig(**payload["config"]),
                   scheduler=payload["scheduler"],
                   kind=payload["kind"],
                   trace_path=payload.get("trace_path"))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: workloads x protocols x configs."""

    workloads: Tuple[WorkloadSpec, ...]
    protocols: Tuple[str, ...] = DEFAULT_PROTOCOLS
    configs: Tuple[GPUConfig, ...] = (GPUConfig(num_chiplets=4,
                                                scale=DEFAULT_SCALE),)
    scheduler: str = "static"
    kind: str = "simulate"
    #: Trace path for every expanded job (see :attr:`JobSpec.trace_path`).
    trace_path: Optional[str] = None

    @classmethod
    def grid(cls, workloads: Optional[Sequence[WorkloadSpec]] = None,
             protocols: Sequence[str] = DEFAULT_PROTOCOLS,
             chiplet_counts: Sequence[int] = (4,),
             scale: float = DEFAULT_SCALE,
             scheduler: str = "static",
             base_config: Optional[GPUConfig] = None,
             kind: str = "simulate",
             trace_path: Optional[str] = None) -> "SweepSpec":
        """Build a spec from the common (chiplet_counts, scale) grid.

        ``workloads=None`` selects all 24 Table II applications.
        ``base_config`` carries any other :class:`GPUConfig` overrides.
        """
        if workloads is None:
            from repro.workloads.suite import WORKLOAD_NAMES
            workloads = tuple(WORKLOAD_NAMES)
        base = base_config or GPUConfig(scale=scale)
        configs = tuple(
            dataclasses.replace(base, num_chiplets=n, scale=scale)
            for n in chiplet_counts)
        return cls(workloads=tuple(workloads), protocols=tuple(protocols),
                   configs=configs, scheduler=scheduler, kind=kind,
                   trace_path=trace_path)

    @property
    def num_jobs(self) -> int:
        """Cells in the product."""
        return len(self.workloads) * len(self.protocols) * len(self.configs)

    def to_payload(self) -> Dict[str, Any]:
        """JSON round-trip payload (the distributed engine's
        ``spec.json`` manifest in a scattered work directory)."""
        return {
            "workloads": [w if isinstance(w, str) else list(w)
                          for w in self.workloads],
            "protocols": list(self.protocols),
            "configs": [dataclasses.asdict(c) for c in self.configs],
            "scheduler": self.scheduler,
            "kind": self.kind,
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_payload`."""
        workloads = tuple(w if isinstance(w, str) else tuple(w)
                          for w in payload["workloads"])
        return cls(workloads=workloads,
                   protocols=tuple(payload["protocols"]),
                   configs=tuple(GPUConfig(**c) for c in payload["configs"]),
                   scheduler=payload["scheduler"],
                   kind=payload["kind"],
                   trace_path=payload.get("trace_path"))

    def expand(self) -> List[JobSpec]:
        """Flatten into jobs in canonical order: configs (outer) ->
        workloads -> protocols (inner), mirroring the historical
        ``run_matrix`` loop nest."""
        return [
            JobSpec(workload=workload, protocol=protocol, config=config,
                    scheduler=self.scheduler, kind=self.kind,
                    trace_path=self.trace_path)
            for config in self.configs
            for workload in self.workloads
            for protocol in self.protocols
        ]
