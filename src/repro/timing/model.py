"""First-order kernel timing.

Per kernel, per chiplet, the model takes the classic throughput-processor
form ``time = max(compute, memory)`` where the memory term is the
latency-weighted access sum divided by the chiplet's memory-level
parallelism, then applies device-wide bandwidth floors (DRAM, inter-chiplet
links, L2-L3 network) and adds the serialized synchronization costs at the
kernel boundary (flush/invalidate service time plus the CP-side critical
path). Kernels in a stream execute back-to-back; the GPU's deep kernel
queue hides dispatch latency after the first kernel.

This reproduces the paper's *relative* results: Baseline pays boundary
flush/invalidate service plus the refetch latency/bandwidth of lost L2
reuse; CPElide pays neither when elision applies; HMG trades boundary
costs for write-through and invalidation traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.interconnect.noc import TrafficMeter
from repro.metrics.stats import AccessCounts
from repro.timing.latency import LatencyTable

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.cp.wg_scheduler import Placement
    from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class KernelTiming:
    """Cycle breakdown of one kernel."""

    total_cycles: float
    compute_cycles: float
    memory_cycles: float
    bandwidth_cycles: float
    sync_cycles: float

    @property
    def execution_cycles(self) -> float:
        """Cycles excluding boundary synchronization."""
        return self.total_cycles - self.sync_cycles


class TimingModel:
    """Converts counters into kernel durations."""

    #: Fixed boundary drain cost charged once whenever any L2 sync op
    #: executes (pipeline drain + launch-enable round trip).
    SYNC_FIXED_CYCLES = 100.0
    #: Per-line cost of a bulk invalidate. GPU caches flash-invalidate
    #: (a one-shot valid-bit clear), so dropping lines is O(1); only the
    #: base cost below is charged.
    INVALIDATE_CYCLES_PER_LINE = 0.0
    #: Base cost of a bulk invalidate tag walk.
    INVALIDATE_BASE_CYCLES = 100.0

    def __init__(self, config: "GPUConfig") -> None:
        self.config = config
        self.latency = LatencyTable.from_config(config)

    # ------------------------------------------------------------------

    def kernel_time(self, placement: "Placement",
                    per_chiplet_counts: Sequence[AccessCounts],
                    traffic: TrafficMeter,
                    compute_cycles: float,
                    sync_lines_flushed: int,
                    sync_lines_invalidated: int,
                    had_sync_ops: bool,
                    cp_overhead_cycles: float,
                    mlp_factor: float = 1.0) -> KernelTiming:
        """Compute one kernel's duration.

        Args:
            placement: Where the kernel's WGs ran.
            per_chiplet_counts: Requester-attributed access counts.
            traffic: The kernel's flit meters (for bandwidth floors).
            compute_cycles: Total CU-cycles of arithmetic across the whole
                kernel (the workload model supplies this).
            sync_lines_flushed / sync_lines_invalidated: Line volumes the
                boundary sync ops moved/dropped.
            had_sync_ops: Whether any L2 sync op executed at this boundary.
            cp_overhead_cycles: CP-side critical-path cycles (global CP).
            mlp_factor: Occupancy-derived scaling of memory-level
                parallelism (fewer resident wavefronts hide less latency;
                see :mod:`repro.cp.dispatcher`).
        """
        if not 0.0 < mlp_factor <= 1.0:
            raise ValueError(f"mlp_factor must be in (0, 1], got {mlp_factor}")
        chiplet_cycles = 0.0
        compute_max = 0.0
        memory_max = 0.0
        for chiplet in placement.chiplets:
            share = placement.share_of(chiplet)
            compute = compute_cycles * share / self.config.cus_per_chiplet
            memory = self._memory_cycles(per_chiplet_counts[chiplet],
                                         mlp_factor)
            chiplet_cycles = max(chiplet_cycles, max(compute, memory))
            compute_max = max(compute_max, compute)
            memory_max = max(memory_max, memory)

        bandwidth = self._bandwidth_floor(per_chiplet_counts, traffic)
        body = max(chiplet_cycles, bandwidth)
        sync = self.sync_cycles(sync_lines_flushed, sync_lines_invalidated,
                                had_sync_ops)
        total = body + sync + cp_overhead_cycles
        return KernelTiming(total_cycles=total,
                            compute_cycles=compute_max,
                            memory_cycles=memory_max,
                            bandwidth_cycles=bandwidth,
                            sync_cycles=sync + cp_overhead_cycles)

    # ------------------------------------------------------------------

    def _memory_cycles(self, counts: AccessCounts,
                       mlp_factor: float = 1.0) -> float:
        """Per-chiplet memory time: max(latency-bound, L2-bandwidth-bound).

        GPUs hide most access latency behind massive memory-level
        parallelism, so the data-movement (bandwidth) term usually binds;
        the latency term matters when parallelism is insufficient or
        accesses are mostly remote.
        """
        l2_bytes = ((counts.l2_accesses + counts.l2_writethroughs)
                    * self.config.line_size)
        l2_bw_cycles = self.config.cycles(
            l2_bytes / self.config.l2_bandwidth_per_chiplet)
        return max(self._latency_cycles(counts, mlp_factor), l2_bw_cycles)

    def _latency_cycles(self, counts: AccessCounts,
                        mlp_factor: float = 1.0) -> float:
        """Latency-weighted access sum / memory-level parallelism."""
        lat = self.latency
        local_m = counts.l2_local_misses
        remote_m = counts.l2_remote_misses
        total_m = local_m + remote_m
        if total_m:
            frac_remote = remote_m / total_m
        else:
            frac_remote = 0.0
        l3_hit_latency = (lat.l3_local * (1.0 - frac_remote)
                          + lat.l3_remote * frac_remote)
        dram_latency = lat.dram + frac_remote * (lat.l2_remote_hit
                                                 - lat.l2_local_hit)
        weighted = (
            counts.l1_hits * lat.l1_hit
            + counts.lds_accesses * lat.lds
            + counts.l2_local_hits * lat.l2_local_hit
            + counts.l2_remote_hits * lat.l2_remote_hit
            + counts.l3_hits * l3_hit_latency
            + counts.l3_misses * dram_latency
            + counts.l2_writethroughs * self.config.writethrough_penalty_cycles
            + counts.coherence_stalls * lat.l2_remote_hit
        )
        return weighted / (self.config.chiplet_mlp * mlp_factor)

    def _bandwidth_floor(self, per_chiplet_counts: Sequence[AccessCounts],
                         traffic: TrafficMeter) -> float:
        """Device-wide bandwidth-bound time floors, in cycles."""
        cfg = self.config
        dram_accesses = sum(c.dram_accesses for c in per_chiplet_counts)
        # Write-through stores that reached DRAM commit uncoalesced
        # partial lines (read-modify-write at the HBM).
        wt_to_dram = sum(min(c.l2_writethroughs, c.dram_writes)
                         for c in per_chiplet_counts)
        dram_bytes = (dram_accesses
                      + wt_to_dram * (cfg.wt_dram_amplification - 1.0)
                      ) * cfg.line_size
        dram_bw = cfg.dram_bandwidth_per_stack * cfg.num_chiplets
        dram_s = dram_bytes / dram_bw
        remote_s = traffic.remote_bytes / cfg.inter_chiplet_bandwidth
        # Deflate header flits: a line transfer is 1 header + 2 data flits,
        # so payload bytes are ~2/3 of flit bytes.
        l3_bytes = traffic.l2_l3 * traffic.params.flit_bytes * 2 / 3
        l3_s = l3_bytes / cfg.l3_bandwidth_bytes_per_sec
        return cfg.cycles(max(dram_s, remote_s, l3_s))

    def sync_cycles(self, lines_flushed: int, lines_invalidated: int,
                    had_sync_ops: bool) -> float:
        """Serialized boundary-synchronization service time.

        A flush streams dirty lines to the L3 (bandwidth-bound plus one
        L3 round trip); an invalidate is a tag walk. Nothing is charged
        when no op executed (CPElide's elided boundaries are free).
        """
        if not had_sync_ops:
            return 0.0
        fixed_scale = self.config.effective_overhead_scale
        cycles = self.SYNC_FIXED_CYCLES * fixed_scale
        if lines_flushed:
            flush_bytes = lines_flushed * self.config.line_size
            flush_s = flush_bytes / self.config.flush_bandwidth_bytes_per_sec
            cycles += (self.config.l3_latency * fixed_scale
                       + self.config.cycles(flush_s))
        if lines_invalidated:
            cycles += (self.INVALIDATE_BASE_CYCLES * fixed_scale
                       + self.INVALIDATE_CYCLES_PER_LINE * lines_invalidated)
        return cycles
