"""End-to-end access latencies derived from Table I.

Table I's per-level latencies are end-to-end as seen from the CU (the L3's
330 cycles already include traversing the L2 path), which is why losing L2
reuse to implicit synchronization costs tens of percent rather than
multiples: an L3 hit is only ~23% slower than a local L2 hit. Only DRAM
adds its latency on top of the L3 path, and remote chiplet traversal adds
the inter-chiplet hop (390 - 269 cycles) on top of whichever level serves
the request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class LatencyTable:
    """Cumulative cycles per access class."""

    l1_hit: float
    lds: float
    l2_local_hit: float
    l2_remote_hit: float
    l3_local: float       # local L2 miss served by the L3
    l3_remote: float      # remote L2 miss served by the L3
    dram: float           # served by HBM

    @classmethod
    def from_config(cls, config: "GPUConfig") -> "LatencyTable":
        """Build the cumulative table from Table I's per-level numbers."""
        remote_hop = config.l2_remote_latency - config.l2_local_latency
        return cls(
            l1_hit=config.l1_latency,
            lds=config.lds_latency,
            l2_local_hit=config.l2_local_latency,
            l2_remote_hit=config.l2_remote_latency,
            l3_local=config.l3_latency,
            l3_remote=config.l3_latency + remote_hop,
            dram=config.l3_latency + config.dram_latency,
        )
