"""First-order kernel timing model."""

from repro.timing.latency import LatencyTable
from repro.timing.model import TimingModel

__all__ = ["LatencyTable", "TimingModel"]
