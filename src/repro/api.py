"""The single documented entry point for running the reproduction.

Downstream code (examples, benchmarks, notebooks, services) should import
from here instead of reaching into ``repro.gpu``, ``repro.workloads``,
``repro.coherence``, and ``repro.engine`` separately::

    from repro.api import simulate, sweep

    # One cell: workload x protocol (x config x scheduler).
    result = simulate("babelstream", "cpelide")
    print(result.wall_cycles)

    # A whole sweep, fanned out over worker processes and served from
    # the on-disk result cache on re-runs.
    res = sweep(workloads=("square", "bfs"), jobs=4)
    print(res.get("square", "cpelide").wall_cycles)
    print(res.report.summary())

The commonly-needed building blocks (:class:`GPUConfig`,
:func:`build_workload`, :func:`protocol_names`, :class:`HipRuntime`, …)
are re-exported so one import serves a typical script.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.coherence.base import make_protocol, protocol_names
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.runner import (
    ProgressFn,
    SweepReport,
    SweepResult,
    SweepRunner,
)
from repro.engine.spec import (
    DEFAULT_PROTOCOLS,
    DEFAULT_SCALE,
    SweepSpec,
    WorkloadSpec,
)
from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.sim import SimulationResult, Simulator
from repro.hip.runtime import HipRuntime
from repro.workloads.base import Workload
from repro.workloads.suite import (
    EXTRA_WORKLOADS,
    HIGH_REUSE,
    LOW_REUSE,
    WORKLOAD_NAMES,
    build_workload,
)

__all__ = [
    "DEFAULT_PROTOCOLS",
    "DEFAULT_SCALE",
    "EXTRA_WORKLOADS",
    "GPUConfig",
    "HIGH_REUSE",
    "HipRuntime",
    "LOW_REUSE",
    "ResultCache",
    "SimulationResult",
    "Simulator",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "WORKLOAD_NAMES",
    "Workload",
    "build_workload",
    "default_cache_dir",
    "default_config",
    "make_protocol",
    "monolithic_equivalent",
    "protocol_names",
    "simulate",
    "sweep",
]


def default_config(num_chiplets: int = 4, scale: float = DEFAULT_SCALE,
                   **overrides) -> GPUConfig:
    """The Table I configuration at experiment scale.

    Any other :class:`GPUConfig` field can be overridden by keyword.
    """
    return GPUConfig(num_chiplets=num_chiplets, scale=scale, **overrides)


def simulate(workload: Union[str, Workload],
             protocol: str = "cpelide",
             config: Optional[GPUConfig] = None,
             scheduler: str = "static",
             *,
             cache: Union[bool, ResultCache] = False,
             jobs: int = 1) -> SimulationResult:
    """Run one workload under one protocol and return its result.

    ``workload`` is a registry name (see :data:`WORKLOAD_NAMES`) or an
    already-built :class:`Workload`. Named workloads route through the
    sweep engine, so ``cache=True`` serves repeat runs from the on-disk
    result cache; ``Workload`` instances run directly (they have no
    stable cache identity).
    """
    config = config or default_config()
    if isinstance(workload, Workload):
        return Simulator(config, protocol, scheduler=scheduler).run(workload)
    spec = SweepSpec(workloads=(workload,), protocols=(protocol,),
                     configs=(config,), scheduler=scheduler)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return runner.run(spec).outcomes[0].result


def sweep(spec: Optional[SweepSpec] = None,
          *,
          workloads: Optional[Sequence[WorkloadSpec]] = None,
          protocols: Sequence[str] = DEFAULT_PROTOCOLS,
          chiplet_counts: Sequence[int] = (4,),
          scale: float = DEFAULT_SCALE,
          scheduler: str = "static",
          configs: Optional[Sequence[GPUConfig]] = None,
          jobs: int = 1,
          cache: Union[bool, ResultCache] = True,
          cache_dir=None,
          progress: Optional[ProgressFn] = None) -> SweepResult:
    """Run a declarative sweep through the parallel engine.

    Pass a prebuilt :class:`SweepSpec`, or describe the grid by keyword
    (``workloads=None`` selects all 24 Table II applications). ``jobs``
    sizes the worker pool (1 = serial, 0/None = one per CPU); ``cache``
    (default on) serves completed cells from the on-disk result cache.
    Results arrive in spec order regardless of completion order.
    """
    if spec is None:
        if configs is not None:
            if workloads is None:
                workloads = tuple(WORKLOAD_NAMES)
            spec = SweepSpec(workloads=tuple(workloads),
                             protocols=tuple(protocols),
                             configs=tuple(configs), scheduler=scheduler)
        else:
            spec = SweepSpec.grid(workloads=workloads, protocols=protocols,
                                  chiplet_counts=chiplet_counts, scale=scale,
                                  scheduler=scheduler)
    runner = SweepRunner(jobs=jobs, cache=cache, cache_dir=cache_dir,
                         progress=progress)
    return runner.run(spec)
