"""The single documented entry point for running the reproduction.

Downstream code (examples, benchmarks, notebooks, services) should import
from here instead of reaching into ``repro.gpu``, ``repro.workloads``,
``repro.coherence``, and ``repro.engine`` separately::

    from repro.api import simulate, sweep

    # One cell: workload x protocol (x config x scheduler).
    result = simulate("babelstream", "cpelide")
    print(result.wall_cycles)

    # A whole sweep, fanned out over worker processes and served from
    # the on-disk result cache on re-runs.
    res = sweep(workloads=("square", "bfs"), jobs=4)
    print(res.get("square", "cpelide").wall_cycles)
    print(res.report.summary())

Coherence protocols are first-class (api version 4.0): they are
described by frozen :class:`~repro.coherence.registry.ProtocolSpec`
records, enumerated with :func:`protocols`, and extended with
:func:`register_protocol` — a registered protocol is immediately
simulatable, sweepable, visible to the CLIs, and served by the HTTP
API's ``GET /v1/protocols``::

    from repro.api import ProtocolSpec, register_protocol, simulate

    register_protocol(ProtocolSpec(name="mine", factory=MyProtocol,
                                   description="my experiment"))
    result = simulate("babelstream", protocol="mine")

The commonly-needed building blocks (:class:`GPUConfig`,
:func:`build_workload`, :class:`HipRuntime`, …) are re-exported so one
import serves a typical script.

This surface is versioned: :data:`__api_version__` bumps whenever a
documented signature changes. Everything in ``__all__`` is stable;
anything else reachable through this module resolves via a deprecation
shim (see ``__getattr__``) and warns, pointing at the name's canonical
deep module.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.coherence.base import make_protocol
from repro.coherence.registry import (
    ProtocolSpec,
    get_protocol,
    protocols,
    register_protocol,
    unregister_protocol,
)
from repro.errors import (
    CacheError,
    ConfigError,
    InvariantViolation,
    OracleDivergence,
    ReproError,
)
from repro.obs import (
    EventTracer,
    MetricRegistry,
    NULL_TRACER,
    Tracer,
    write_trace,
)
from repro.engine.cache import (
    ResultCache,
    SharedResultCache,
    default_cache_dir,
)
from repro.engine.dist import DistSweepRunner
from repro.engine.runner import (
    ProgressFn,
    SweepReport,
    SweepResult,
    SweepRunner,
)
from repro.engine.spec import (
    DEFAULT_PROTOCOLS,
    DEFAULT_SCALE,
    SweepSpec,
    WorkloadSpec,
)
from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.sim import SimulationResult, Simulator
from repro.gpu.trace_path import TracePath
from repro.hip.runtime import HipRuntime
from repro.workloads.base import Workload
from repro.workloads.suite import (
    EXTRA_WORKLOADS,
    HIGH_REUSE,
    LOW_REUSE,
    WORKLOAD_NAMES,
    build_workload,
)

#: Version of the documented :mod:`repro.api` surface. Bumped to ``4.0``
#: with the first-class protocol registry: frozen
#: :class:`~repro.coherence.registry.ProtocolSpec` records,
#: :func:`protocols`/:func:`register_protocol`/:func:`unregister_protocol`,
#: ``simulate(protocol=...)`` accepting a spec as well as a name,
#: :class:`~repro.errors.ConfigError` on unknown protocol names
#: everywhere (CLI, engine specs, server admission), and
#: ``protocol_names`` demoted to a deprecation shim (enumerate
#: :func:`protocols` instead). ``3.2`` added simulation-as-a-service:
#: :func:`serve` runs the :class:`~repro.server.ReproServer` HTTP job
#: API (async submissions, SSE progress streams, admission control)
#: over the same :class:`~repro.engine.cache.SharedResultCache` the
#: distributed engine uses. ``3.1`` added the distributed engine:
#: ``sweep(workers=...)`` routes through
#: :class:`~repro.engine.dist.DistSweepRunner` over a shared result
#: store with in-flight dedupe. ``3.0`` added the :class:`TracePath`
#: enum (replacing raw ``"line"``/``"run"``/``"memo"`` strings, which
#: still coerce) and the unified keyword-only cache bulk-op API
#: (:class:`repro.memory.cache.BulkResult`). ``2.0`` added the
#: keyword-only ``simulate``/``sweep`` signatures, the
#: ``trace_path=``/``tracer=`` parameters, and the :mod:`repro.errors`
#: hierarchy.
__api_version__ = "4.0"

__all__ = [
    "CacheError",
    "ConfigError",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_SCALE",
    "DistSweepRunner",
    "EXTRA_WORKLOADS",
    "EventTracer",
    "GPUConfig",
    "HIGH_REUSE",
    "HipRuntime",
    "InvariantViolation",
    "LOW_REUSE",
    "MetricRegistry",
    "NULL_TRACER",
    "OracleDivergence",
    "ProtocolSpec",
    "ReproError",
    "ResultCache",
    "SharedResultCache",
    "SimulationResult",
    "Simulator",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "TracePath",
    "Tracer",
    "WORKLOAD_NAMES",
    "Workload",
    "__api_version__",
    "build_workload",
    "default_cache_dir",
    "default_config",
    "get_protocol",
    "make_protocol",
    "monolithic_equivalent",
    "protocols",
    "register_protocol",
    "serve",
    "simulate",
    "sweep",
    "unregister_protocol",
    "write_trace",
]

#: Deep-import names historically reached through ``repro.api`` (or its
#: wildcard re-exports) that are *not* part of the stable surface.
#: ``repro.api.<name>`` still resolves — via ``__getattr__`` below — but
#: emits a :class:`DeprecationWarning` naming the canonical module, so
#: scripts migrate to one stable, versioned import surface.
_DEEP_IMPORT_SHIMS = {
    "CoherenceProtocol": "repro.coherence.base",
    "Device": "repro.gpu.device",
    "EnergyModel": "repro.energy.model",
    "JobSpec": "repro.engine.spec",
    "Kernel": "repro.workloads.base",
    "KernelArg": "repro.workloads.base",
    "KernelMetrics": "repro.metrics.stats",
    "KernelPacket": "repro.cp.packets",
    "Placement": "repro.cp.wg_scheduler",
    "RunMetrics": "repro.metrics.stats",
    "TimingModel": "repro.timing.model",
    "resolve_trace_path": "repro.gpu.trace_path",
    "trace_sync_ops": "repro.analysis",
}


def __getattr__(name: str):
    """Deprecation shim for legacy deep-import names (PEP 562)."""
    import warnings

    if name == "protocol_names":
        # Stable through 3.x; superseded by the ProtocolSpec registry.
        warnings.warn(
            "repro.api.protocol_names is deprecated since api version "
            "4.0; enumerate repro.api.protocols() (ProtocolSpec records "
            "carry the names plus factory/description/knob metadata)",
            DeprecationWarning, stacklevel=2)
        from repro.coherence.registry import protocol_names
        return protocol_names
    target = _DEEP_IMPORT_SHIMS.get(name)
    if target is None:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}")
    import importlib

    warnings.warn(
        f"repro.api.{name} is deprecated; import it from its canonical "
        f"module {target} instead (the stable repro.api surface is "
        f"__all__, api version {__api_version__})",
        DeprecationWarning, stacklevel=2)
    return getattr(importlib.import_module(target), name)


def default_config(num_chiplets: int = 4, scale: float = DEFAULT_SCALE,
                   **overrides) -> GPUConfig:
    """The Table I configuration at experiment scale.

    Any other :class:`GPUConfig` field can be overridden by keyword.
    """
    return GPUConfig(num_chiplets=num_chiplets, scale=scale, **overrides)


def simulate(workload: Union[str, Workload],
             protocol: Union[str, ProtocolSpec] = "cpelide",
             *,
             config: Optional[GPUConfig] = None,
             scheduler: str = "static",
             cache: Union[bool, ResultCache] = False,
             jobs: int = 1,
             trace_path: Optional[Union[TracePath, str]] = None,
             tracer: Optional[Tracer] = None) -> SimulationResult:
    """Run one workload under one protocol and return its result.

    ``workload`` is a registry name (see :data:`WORKLOAD_NAMES`) or an
    already-built :class:`Workload`. Named workloads route through the
    sweep engine, so ``cache=True`` serves repeat runs from the on-disk
    result cache; ``Workload`` instances run directly (they have no
    stable cache identity, so combining one with ``cache=True`` raises
    :class:`~repro.errors.ConfigError`).

    ``protocol`` is a registry name or a :class:`ProtocolSpec` (api
    version 4.0). A spec that is currently registered under its name is
    equivalent to passing the name; an *unregistered* spec runs directly
    through its factory — which, like a :class:`Workload` instance, has
    no stable cache identity, so combining one with ``cache=True``
    raises :class:`~repro.errors.ConfigError`. Unknown protocol names
    raise :class:`~repro.errors.ConfigError` as well.

    All optional parameters are keyword-only (api version 2.0).
    ``trace_path`` selects the trace representation — a
    :class:`TracePath` member or its string value (``"line"``/``"run"``/
    ``"memo"``; default per ``REPRO_TRACE_PATH``). ``tracer`` attaches an
    observability sink (e.g. :class:`~repro.obs.EventTracer`) — a pure
    observer; results are bit-identical with or without it.
    """
    config = config or default_config()
    factory = None
    if isinstance(protocol, ProtocolSpec):
        spec_obj = protocol
        try:
            registered = get_protocol(spec_obj.name)
        except ConfigError:
            registered = None
        if registered == spec_obj:
            protocol = spec_obj.name
        else:
            if cache:
                raise ConfigError(
                    f"simulate(cache=...) requires a registered protocol: "
                    f"spec {spec_obj.name!r} is not (or no longer) the "
                    f"registered spec of that name, so results have no "
                    f"stable cache identity. register_protocol() it, or "
                    f"drop cache.")
            factory = spec_obj.build
    elif not isinstance(workload, Workload):
        get_protocol(protocol)  # fail fast: ConfigError on unknown names
    if isinstance(workload, Workload) or factory is not None:
        if cache:
            raise ConfigError(
                "simulate(cache=...) requires a registry-named workload: "
                "Workload instances bypass the sweep engine and have no "
                "stable cache identity, so the flag cannot be honored. "
                "Pass the workload's registry name, or drop cache.")
        if not isinstance(workload, Workload):
            workload = build_workload(workload, config)
        return Simulator(config, factory or protocol, scheduler=scheduler,
                         trace_path=trace_path,
                         tracer=tracer).run(workload)
    spec = SweepSpec(workloads=(workload,), protocols=(protocol,),
                     configs=(config,), scheduler=scheduler,
                     trace_path=trace_path)
    runner = SweepRunner(jobs=jobs, cache=cache, tracer=tracer)
    return runner.run(spec).outcomes[0].result


def sweep(spec: Optional[SweepSpec] = None,
          *,
          workloads: Optional[Sequence[WorkloadSpec]] = None,
          protocols: Sequence[str] = DEFAULT_PROTOCOLS,
          chiplet_counts: Sequence[int] = (4,),
          scale: float = DEFAULT_SCALE,
          scheduler: str = "static",
          configs: Optional[Sequence[GPUConfig]] = None,
          jobs: int = 1,
          cache: Union[bool, ResultCache] = True,
          cache_dir=None,
          workers: Optional[int] = None,
          progress: Optional[ProgressFn] = None,
          trace_path: Optional[Union[TracePath, str]] = None,
          tracer: Optional[Tracer] = None) -> SweepResult:
    """Run a declarative sweep through the parallel engine.

    Pass a prebuilt :class:`SweepSpec`, or describe the grid by keyword
    (``workloads=None`` selects all 24 Table II applications). ``jobs``
    sizes the worker pool (1 = serial, 0/None = one per CPU); ``cache``
    (default on) serves completed cells from the on-disk result cache.
    Results arrive in spec order regardless of completion order.

    ``workers`` (api version 3.1) routes the sweep through the
    *distributed* engine instead: cells execute as content-keyed work
    units over a :class:`SharedResultCache` (``cache``/``cache_dir``
    name its root), so any number of concurrent sweeps — in other
    processes or on other hosts sharing the cache directory — serve each
    other's completed *and in-flight* cells instead of recomputing.
    Results stay bit-identical to ``jobs=1``.

    ``trace_path`` selects the trace representation for every cell;
    ``tracer`` attaches an observability sink. Serial sweeps (``jobs=1``)
    record full kernel-level detail; parallel sweeps record sweep-cell
    events only (tracers cannot cross the fork boundary).
    """
    if spec is None:
        if configs is not None:
            if workloads is None:
                workloads = tuple(WORKLOAD_NAMES)
            spec = SweepSpec(workloads=tuple(workloads),
                             protocols=tuple(protocols),
                             configs=tuple(configs), scheduler=scheduler,
                             trace_path=trace_path)
        else:
            spec = SweepSpec.grid(workloads=workloads, protocols=protocols,
                                  chiplet_counts=chiplet_counts, scale=scale,
                                  scheduler=scheduler, trace_path=trace_path)
    elif trace_path is not None and spec.trace_path != trace_path:
        import dataclasses
        spec = dataclasses.replace(spec, trace_path=trace_path)
    if workers is not None:
        if isinstance(cache, SharedResultCache):
            shared = cache
        elif isinstance(cache, ResultCache):
            shared = SharedResultCache(root=cache.root, salt=cache.salt)
        else:
            shared = SharedResultCache(root=cache_dir)
        dist = DistSweepRunner(workers=workers, cache=shared,
                               progress=progress, tracer=tracer)
        return dist.run(spec)
    runner = SweepRunner(jobs=jobs, cache=cache, cache_dir=cache_dir,
                         progress=progress, tracer=tracer)
    return runner.run(spec)


def serve(host: str = "127.0.0.1", port: int = 8642,
          *,
          cache: Union[SharedResultCache, str, None] = None,
          max_inflight: int = 2,
          max_queue_depth: int = 64,
          client_quota: int = 8,
          use_uvicorn: Optional[bool] = None) -> None:
    """Serve the simulation job API over HTTP until interrupted
    (api version 3.2).

    Clients ``POST /v1/simulate`` and ``POST /v1/sweep`` bodies (the
    keyword grids :func:`simulate`/:func:`sweep` accept, as JSON), poll
    ``GET /v1/jobs/{id}``, stream per-kernel progress from
    ``GET /v1/jobs/{id}/events`` (Server-Sent Events), and fetch
    ``GET /v1/jobs/{id}/result`` — a body byte-identical to the same
    spec run directly through :func:`sweep`. Jobs pass admission
    control (``max_queue_depth`` shedding with ``429``/``Retry-After``,
    ``client_quota`` per client) and execute ``max_inflight`` at a time
    against the :class:`SharedResultCache` rooted at ``cache``, so
    concurrent clients requesting overlapping cells trigger exactly one
    computation per cell.

    Pure stdlib by default; ``use_uvicorn=None`` auto-upgrades to
    uvicorn's ASGI server when it happens to be installed. Equivalent
    CLI: ``python -m repro serve``. For programmatic/in-process use,
    instantiate :class:`repro.server.ReproServer` directly.
    """
    from repro.server import app as server_app

    server_app.run(host=host, port=port, cache=cache,
                   max_inflight=max_inflight,
                   max_queue_depth=max_queue_depth,
                   client_quota=client_quota, use_uvicorn=use_uvicorn,
                   ready=lambda url: print(f"repro server listening on "
                                           f"{url} (Ctrl-C to stop)"))
