"""One GPU chiplet: CUs, L1 filter, LDS, shared L2, local CP.

Each chiplet has dedicated CUs, each with a private L1 cache and LDS, plus
an L2 shared across the chiplet's CUs (Sec. II-A, Fig. 3 breakout). The
chiplet object groups the per-chiplet hardware the device instantiates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memory.cache import WritePolicy
from repro.memory.lds import LocalDataShare
from repro.memory.npcache import make_cache_core

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.gpu.config import GPUConfig


class Chiplet:
    """Hardware state of one chiplet."""

    def __init__(self, chiplet_id: int, config: "GPUConfig",
                 l2_policy: WritePolicy = WritePolicy.WRITE_BACK,
                 cache_core: str = "dict") -> None:
        self.chiplet_id = chiplet_id
        self.config = config
        self.l2 = make_cache_core(
            cache_core,
            size_bytes=config.scaled_l2_size,
            assoc=config.l2_assoc,
            line_size=config.line_size,
            policy=l2_policy,
            name=f"L2[{chiplet_id}]",
        )
        self.lds = LocalDataShare(size_bytes=config.lds_size,
                                  latency_cycles=config.lds_latency)

    @property
    def num_cus(self) -> int:
        """CUs on this chiplet (Table I: 60)."""
        return self.config.cus_per_chiplet

    def __repr__(self) -> str:
        return f"Chiplet({self.chiplet_id}, {self.num_cus} CUs, {self.l2!r})"
