"""Kernel-outcome memoization for the ``memo`` trace path.

Iterative workloads (BFS/SSSP frontier loops, RNN timesteps,
hotspot/srad/pathfinder sweeps) dispatch the same kernel packet dozens of
times, and sweep harnesses re-simulate each (workload, protocol) cell per
repeat. Because the simulator is deterministic, a kernel's entire outcome
— the caches', table's, directories' and home map's post-state, every
cumulative counter, and the :class:`~repro.metrics.stats.KernelMetrics`
it produced — is a pure function of:

* the kernel (its packet contents, minus the dynamic ``kernel_id``),
* the pre-kernel *behavioral state* of every stateful component, and
* a few launch-position facts (is this the first launch? does CPElide's
  first-launch overhead still apply?).

This module records that transition once (a *miss*) and replays it on
every later occurrence (a *hit*) instead of re-walking the trace. The
replay is exact: component states are restored from snapshots, cumulative
diagnostics are advanced by recorded deltas, queue/driver bookkeeping is
executed live (so kernel ids and round-robin state stay real), and the
metrics object is rebuilt from its lossless dict form with the current
kernel id patched in. ``tests/test_batched_equivalence.py`` holds the
memo path bit-identical to the ``run`` path.

Kernels whose trace depends on the dynamic kernel id — RANDOM/INDIRECT
arguments with a nonzero *roam* share draw from an RNG seeded with the
kernel id — are **bypassed**: they run the normal path (their outcome
would not replay at a different launch index). The carried digests are
not discarded at a bypass, though: the simulator is deterministic, so
the post-bypass state is itself a pure function of (pre-state, kernel,
launch index), and the memoizer *chains* each carried digest with the
bypassed kernel's identity instead of re-hashing the full live state.
Deterministic repeats reproduce the same chain, so the kernels *after*
a bypass still hit — this is what keeps bypass-heavy workloads (BFS,
SSSP) from paying a full-state digest on every iteration.

Memo stores are module-level and keyed by the simulation context
(config repr, protocol name, scheduler), so hits flow across
:class:`~repro.gpu.sim.Simulator` instances — bench repeats, engine
sweep cells in one process, and ``--jobs`` fork workers (which inherit
the parent's warmed store copy-on-write).
"""

from __future__ import annotations

from collections import OrderedDict
from hashlib import blake2b
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.workloads.base import PatternKind

#: LRU cap on recorded transitions per context store.
MAX_ENTRIES_PER_STORE = 1024

#: Cap on interned snapshots per store (dedup pool; safe to clear).
MAX_POOLED_SNAPSHOTS = 4096

#: LRU cap on distinct simulation contexts.
MAX_CONTEXTS = 64


@dataclass
class MemoEntry:
    """One recorded kernel transition.

    Per-component snapshot slots are ``None`` when the component's
    digest did not change across the kernel (nothing to restore);
    counter-delta slots are ``None`` when the delta is all-zero.
    """

    __slots__ = (
        "post_digests", "cache_snapshots", "cache_stat_deltas",
        "dram_delta", "home_journal", "lds_delta", "local_cp_delta",
        "translations_delta", "proto_snapshot", "proto_counter_delta",
        "sched_snapshot", "metrics", "trace_lines",
    )

    #: Component digests after the kernel, in the same order the key's
    #: pre-digests use — carried forward so a hit chain never re-hashes.
    post_digests: Tuple[bytes, ...]
    #: Per cache (L2s then L3): immutable snapshot or ``None``.
    cache_snapshots: Tuple[Optional[tuple], ...]
    #: Per cache: :class:`CacheStats` counter delta or ``None``.
    cache_stat_deltas: Tuple[Optional[Tuple[int, ...]], ...]
    #: ``(per-stack read deltas, per-stack write deltas)`` or ``None``.
    dram_delta: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]
    #: First-touch page assignments the kernel made, in order.
    home_journal: Tuple[Tuple[int, int], ...]
    #: Per-chiplet LDS access-count deltas, or ``None``.
    lds_delta: Optional[Tuple[int, ...]]
    #: Per-chiplet local-CP ops-executed deltas, or ``None``.
    local_cp_delta: Optional[Tuple[int, ...]]
    #: Address-translator translation-count delta.
    translations_delta: int
    #: Protocol behavioral snapshot (table rows, directories) or ``None``.
    proto_snapshot: Optional[object]
    #: Protocol cumulative-counter delta (opaque to this layer).
    proto_counter_delta: Optional[object]
    #: Locality-scheduler affinity snapshot or ``None``.
    sched_snapshot: Optional[object]
    #: ``KernelMetrics.to_dict()`` of the recorded kernel.
    metrics: dict
    #: Trace lines the recorded kernel swept (for ``last_trace_lines``).
    trace_lines: int


@dataclass
class _PreState:
    """Counter baselines captured on a miss before the kernel runs."""

    digests: Tuple[bytes, ...]
    cache_stats: List[Tuple[int, ...]]
    dram: Tuple[Tuple[int, ...], Tuple[int, ...]]
    lds: Tuple[int, ...]
    local_cp: Tuple[int, ...]
    translations: int
    proto_token: object


class MemoStore:
    """LRU-capped map of transition key -> :class:`MemoEntry`, with a
    digest-keyed snapshot-interning pool: steady-state iterative kernels
    cycle through a handful of distinct post-states, so identical
    snapshots are stored once no matter how many entries reference
    them."""

    def __init__(self, max_entries: int = MAX_ENTRIES_PER_STORE) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, MemoEntry]" = OrderedDict()
        self._snapshot_pool: Dict[Tuple[int, bytes], object] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[MemoEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, entry: MemoEntry) -> None:
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def intern_snapshot(self, slot: int, digest: bytes,
                        build: Callable[[], object]) -> object:
        """Return the pooled snapshot for ``(slot, digest)``, building it
        only the first time that state is seen. Snapshots are immutable
        (or copied on restore), so sharing is safe; the pool is pure
        dedup and may be cleared at any time."""
        pool_key = (slot, digest)
        snap = self._snapshot_pool.get(pool_key)
        if snap is None:
            if len(self._snapshot_pool) >= MAX_POOLED_SNAPSHOTS:
                self._snapshot_pool.clear()
            snap = build()
            self._snapshot_pool[pool_key] = snap
        return snap


#: Context key -> store. Module-level so entries survive Simulator
#: instances and are inherited by fork()ed sweep workers.
_STORES: "OrderedDict[tuple, MemoStore]" = OrderedDict()


def store_for(context: tuple) -> MemoStore:
    """The shared :class:`MemoStore` for one simulation context."""
    store = _STORES.get(context)
    if store is None:
        store = MemoStore()
        _STORES[context] = store
        if len(_STORES) > MAX_CONTEXTS:
            _STORES.popitem(last=False)
    else:
        _STORES.move_to_end(context)
    return store


def clear_memo_stores() -> None:
    """Drop every recorded transition (tests and cold-start benches)."""
    _STORES.clear()


def kernel_is_bypassed(kernel) -> bool:
    """Whether ``kernel``'s trace depends on its dynamic kernel id.

    RANDOM/INDIRECT arguments split their sample into a *stable* part
    (seeded per logical chiplet only) and a *roam* part (seeded with the
    kernel id). Any nonzero roam share makes the trace a function of the
    launch index, which the memo key deliberately excludes — so such
    kernels are simulated normally. The check is conservative on the
    bypass side: a roam share that rounds to zero lines still bypasses
    (costing a memo opportunity, never correctness).
    """
    for arg in kernel.args:
        if arg.pattern in (PatternKind.RANDOM, PatternKind.INDIRECT):
            share = arg.stable_fraction
            if share is None:
                share = 0.0 if arg.resample else 1.0
            if share < 1.0:
                return True
    return False


def workload_is_all_bypass(workload) -> bool:
    """Whether *every* kernel of ``workload`` is memo-bypassed.

    The cheap pre-scan the simulator runs before building a
    :class:`KernelMemoizer`: pure-roam workloads (BFS/SSSP frontier
    loops) bypass every kernel, so the memoizer would only ever pay
    digest-chaining and snapshot bookkeeping without a single replay.
    Classification reads static argument metadata only — no trace is
    sampled and no state is hashed — so the scan costs microseconds
    against the milliseconds it saves per run.
    """
    kernels = workload.kernels
    return bool(kernels) and all(kernel_is_bypassed(k) for k in kernels)


class KernelMemoizer:
    """Per-run driver of the memo trace path.

    Owns the carried component digests for one
    :meth:`~repro.gpu.sim.Simulator.run` and the capture/replay
    machinery against that run's device, protocol, and CP objects. The
    entry store itself is shared (see :func:`store_for`).
    """

    def __init__(self, store: MemoStore, device, protocol, global_cp,
                 driver, wg_scheduler=None) -> None:
        self.store = store
        self.device = device
        self.protocol = protocol
        self.global_cp = global_cp
        self.driver = driver
        #: The locality scheduler if one (with memo hooks) is in use.
        self.scheduler = (wg_scheduler
                          if wg_scheduler is not None
                          and hasattr(wg_scheduler, "memo_digest")
                          else None)
        #: L2s in chiplet order, then the L3 — digest/snapshot order.
        self.caches = list(device.l2s) + [device.l3]
        device.home_map.memo_enable()
        #: Carried component digests (``None`` = stale, recompute).
        self._digests: Optional[Tuple[bytes, ...]] = None
        #: Deferred restores: digest-slot -> snapshot. A hit *pends* its
        #: snapshots instead of materializing them — nothing reads the
        #: live components during a hit chain (outcomes come from
        #: entries and carried digests), so consecutive hits overwrite
        #: each other's pendings and only the final state is ever
        #: copied into the live objects (:meth:`flush_pending`).
        self._pending: Dict[int, object] = {}
        self._proto_slot = len(self.caches) + 1
        self._sched_slot = len(self.caches) + 2
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    # -- key ------------------------------------------------------------

    def _compute_digests(self) -> Tuple[bytes, ...]:
        parts = [cache.memo_digest() for cache in self.caches]
        parts.append(self.device.home_map.memo_digest())
        parts.append(self.protocol.memo_digest())
        parts.append(self.scheduler.memo_digest() if self.scheduler
                     else b"")
        return tuple(parts)

    def lookup_key(self, kernel) -> tuple:
        """The transition key for launching ``kernel`` from the current
        state: pre-state digests, the kernel's full (id-free) identity,
        and the launch-position flags that gate one-time overheads."""
        if self._digests is None:
            self._digests = self._compute_digests()
        flags = ((self.global_cp.kernels_launched == 0,)
                 + self.protocol.memo_key_flags())
        return (self._digests, repr(kernel), flags)

    def note_bypass(self, kernel) -> None:
        """``kernel`` is about to run outside the memo machinery: bring
        the live state current and *chain* the carried digests.

        The simulation is deterministic, so the state after the bypassed
        kernel is a pure function of (pre-state, kernel, launch index) —
        hashing each carried digest together with that kernel identity
        yields a fingerprint that uniquely identifies the post-bypass
        state without reading it. Chained digests only ever match keys
        recorded via the same chain, which deterministic repeats
        reproduce exactly; re-hashing the full live state here instead
        made bypass-heavy workloads slower than the plain run path.
        """
        self.flush_pending()
        self.bypasses += 1
        if self._digests is None:
            self._digests = self._compute_digests()
        tag = repr((repr(kernel), self.global_cp.kernels_launched,
                    self.protocol.memo_key_flags())).encode()
        self._digests = tuple(
            blake2b(digest + tag, digest_size=16).digest()
            for digest in self._digests)

    def flush_pending(self) -> None:
        """Materialize deferred hit restores into the live components.

        Must run before anything reads simulated state directly: a miss
        (the real kernel run), a bypass, or the simulator's end-of-run
        release. Idempotent and cheap when nothing is pending.
        """
        if not self._pending:
            return
        for slot, snapshot in self._pending.items():
            if slot < len(self.caches):
                self.caches[slot].memo_restore(snapshot)
            elif slot == self._proto_slot:
                self.protocol.memo_restore(snapshot)
            else:
                self.scheduler.memo_restore(snapshot)
        self._pending.clear()

    # -- miss: capture --------------------------------------------------

    def begin_capture(self) -> _PreState:
        """Snapshot counter baselines and arm journals, immediately
        before the recorded kernel's first side effect. Brings the live
        state current first — the kernel is about to really run."""
        self.flush_pending()
        device = self.device
        device.home_map.memo_begin_journal()
        return _PreState(
            digests=self._digests,
            cache_stats=[c.stats.counter_tuple() for c in self.caches],
            dram=(tuple(device.dram.reads), tuple(device.dram.writes)),
            lds=tuple(ch.lds.accesses for ch in device.chiplets),
            local_cp=tuple(cp.ops_executed for cp in device.local_cps),
            translations=device.translator.translations,
            proto_token=self.protocol.memo_counters_begin(),
        )

    def end_capture(self, key: tuple, pre: _PreState, km,
                    trace_lines: int) -> None:
        """Record the completed kernel's transition under ``key``."""
        device = self.device
        store = self.store
        post = self._compute_digests()
        ncaches = len(self.caches)

        cache_snapshots = tuple(
            None if post[i] == pre.digests[i]
            else store.intern_snapshot(i, post[i],
                                       self.caches[i].memo_snapshot)
            for i in range(ncaches))
        cache_stat_deltas = tuple(
            delta if any(delta) else None
            for delta in (cache.stats.delta_since(before)
                          for cache, before in zip(self.caches,
                                                   pre.cache_stats)))

        reads_before, writes_before = pre.dram
        read_delta = tuple(now - then for now, then
                           in zip(device.dram.reads, reads_before))
        write_delta = tuple(now - then for now, then
                            in zip(device.dram.writes, writes_before))
        dram_delta = ((read_delta, write_delta)
                      if any(read_delta) or any(write_delta) else None)

        lds_delta = tuple(ch.lds.accesses - then
                          for ch, then in zip(device.chiplets, pre.lds))
        local_cp_delta = tuple(cp.ops_executed - then
                               for cp, then in zip(device.local_cps,
                                                   pre.local_cp))

        proto_idx = ncaches + 1
        proto_snapshot = (None if post[proto_idx] == pre.digests[proto_idx]
                          else store.intern_snapshot(
                              proto_idx, post[proto_idx],
                              self.protocol.memo_snapshot))
        sched_idx = ncaches + 2
        sched_snapshot = None
        if (self.scheduler is not None
                and post[sched_idx] != pre.digests[sched_idx]):
            sched_snapshot = store.intern_snapshot(
                sched_idx, post[sched_idx], self.scheduler.memo_snapshot)

        entry = MemoEntry(
            post_digests=post,
            cache_snapshots=cache_snapshots,
            cache_stat_deltas=cache_stat_deltas,
            dram_delta=dram_delta,
            home_journal=device.home_map.memo_take_journal(),
            lds_delta=lds_delta if any(lds_delta) else None,
            local_cp_delta=(local_cp_delta if any(local_cp_delta)
                            else None),
            translations_delta=(device.translator.translations
                                - pre.translations),
            proto_snapshot=proto_snapshot,
            proto_counter_delta=self.protocol.memo_counters_end(
                pre.proto_token),
            sched_snapshot=sched_snapshot,
            metrics=km.to_dict(),
            trace_lines=trace_lines,
        )
        store.put(key, entry)
        self._digests = post
        self.misses += 1

    # -- hit: replay ----------------------------------------------------

    def replay(self, entry: MemoEntry, kernel):
        """Apply a recorded transition instead of simulating ``kernel``.

        Queue and driver bookkeeping runs for real — the packet gets the
        next live kernel id, doorbells ring, the queue scheduler pops it
        (keeping round-robin state honest), and the launch counter
        advances — while every simulated component jumps straight to its
        recorded post-state. Returns ``(metrics, trace_lines)``.
        """
        from repro.metrics.stats import KernelMetrics

        device = self.device
        packet = self.driver.enqueue_kernel(kernel)
        self.driver.submit(self.global_cp)
        popped = self.global_cp.queue_scheduler.next_kernel()
        assert popped is packet
        self.global_cp.kernels_launched += 1

        for slot, snapshot in enumerate(entry.cache_snapshots):
            if snapshot is not None:
                self._pending[slot] = snapshot
        for cache, delta in zip(self.caches, entry.cache_stat_deltas):
            if delta is not None:
                cache.stats.apply_delta(delta)
        if entry.dram_delta is not None:
            read_delta, write_delta = entry.dram_delta
            reads = device.dram.reads
            writes = device.dram.writes
            for stack, diff in enumerate(read_delta):
                reads[stack] += diff
            for stack, diff in enumerate(write_delta):
                writes[stack] += diff
        device.home_map.memo_apply_journal(entry.home_journal)
        if entry.lds_delta is not None:
            for chiplet, diff in zip(device.chiplets, entry.lds_delta):
                chiplet.lds.accesses += diff
        if entry.local_cp_delta is not None:
            for local_cp, diff in zip(device.local_cps,
                                      entry.local_cp_delta):
                local_cp.ops_executed += diff
        device.translator.translations += entry.translations_delta

        if entry.proto_snapshot is not None:
            self._pending[self._proto_slot] = entry.proto_snapshot
        self.protocol.memo_counters_apply(entry.proto_counter_delta)
        if entry.sched_snapshot is not None:
            self._pending[self._sched_slot] = entry.sched_snapshot

        self._digests = entry.post_digests
        self.hits += 1
        km = KernelMetrics.from_dict(entry.metrics)
        km.kernel_index = packet.kernel_id
        return km, entry.trace_lines
