"""Trace-path selection: the :class:`TracePath` enum and its resolution.

The simulator can drive a workload through three bit-identical trace
representations (tests/test_batched_equivalence.py and the differential
oracle enforce the identity):

* :attr:`TracePath.LINE` — the per-line dict-backed reference path;
* :attr:`TracePath.RUN` — the batched interval-run path on the
  vectorized numpy cache core (the fast default);
* :attr:`TracePath.MEMO` — kernel-outcome memoization layered on the
  run path (:mod:`repro.gpu.memo`).

``TracePath`` is a ``str``-valued enum, so every member compares and
serializes exactly like the historical raw strings (``"line"`` /
``"run"`` / ``"memo"``); :meth:`TracePath.coerce` upgrades user input
and raises :class:`~repro.errors.ConfigError` on anything unknown.
"""

from __future__ import annotations

import enum
import os
import sys
from typing import Optional, Union

from repro.errors import ConfigError

#: Environment variable selecting the trace representation for
#: simulators not given an explicit ``trace_path``. All paths produce
#: bit-identical results, so the switch exists for cross-checking and
#: benchmarking, not output.
TRACE_PATH_ENV = "REPRO_TRACE_PATH"

if sys.version_info >= (3, 11):
    _StrEnumBase = enum.StrEnum
else:  # pragma: no cover - 3.11+ toolchain; kept for older interpreters
    class _StrEnumBase(str, enum.Enum):
        def __str__(self) -> str:  # noqa: D105 - match StrEnum semantics
            return str(self.value)

        __format__ = str.__format__


class TracePath(_StrEnumBase):
    """How the simulator represents and sweeps a kernel's trace."""

    LINE = "line"
    RUN = "run"
    MEMO = "memo"

    @classmethod
    def coerce(cls, value: Union["TracePath", str]) -> "TracePath":
        """Upgrade ``value`` (a member or its string value) to a member.

        Raises :class:`~repro.errors.ConfigError` (a ``ValueError``) on
        unknown values, so typos never silently fall back.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ConfigError(
                f"trace_path must be one of "
                f"{tuple(m.value for m in cls)}, got {value!r}") from None


#: Trace path used when neither the constructor argument nor the
#: environment selects one.
DEFAULT_TRACE_PATH = TracePath.RUN


def resolve_trace_path(
        trace_path: Optional[Union[TracePath, str]] = None) -> TracePath:
    """Resolve the effective trace path.

    Precedence, highest first: the explicit ``trace_path`` argument,
    then the ``REPRO_TRACE_PATH`` environment variable (read at call
    time, so forked sweep workers honor the environment they inherit),
    then :data:`DEFAULT_TRACE_PATH`. An empty environment variable
    counts as unset. Raises :class:`~repro.errors.ConfigError` on an
    unknown name — including an unknown *explicit* name when the
    environment holds a valid one.
    """
    if trace_path is None:
        trace_path = os.environ.get(TRACE_PATH_ENV) or DEFAULT_TRACE_PATH
    return TracePath.coerce(trace_path)
