"""The MCM-GPU device: chiplets, shared L3, DRAM, home map, meters.

The device owns all hardware state and the per-kernel measurement context
(one :class:`~repro.interconnect.noc.TrafficMeter` plus per-chiplet
:class:`~repro.metrics.stats.AccessCounts`). Coherence protocols route
accesses through the helpers here; the helpers do all traffic/energy-
relevant accounting so protocols stay declarative.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.interconnect.crossbar import CPCrossbar
from repro.interconnect.links import InterChipletLinks
from repro.interconnect.noc import TrafficMeter
from repro.memory.address import HomeMap
from repro.memory.cache import SetAssocCache, WritePolicy
from repro.memory.dram import DRAMModel
from repro.memory.l1 import L1Filter
from repro.memory.translation import AddressTranslator
from repro.metrics.stats import AccessCounts
from repro.gpu.chiplet import Chiplet
from repro.cp.local_cp import LocalCP

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.gpu.config import GPUConfig


class Device:
    """All hardware state of one simulated MCM-GPU."""

    def __init__(self, config: "GPUConfig",
                 l2_policy: WritePolicy = WritePolicy.WRITE_BACK) -> None:
        self.config = config
        self.chiplets: List[Chiplet] = [
            Chiplet(i, config, l2_policy) for i in range(config.num_chiplets)
        ]
        self.l3 = SetAssocCache(
            size_bytes=config.scaled_l3_size,
            assoc=config.l3_assoc,
            line_size=config.line_size,
            policy=WritePolicy.WRITE_BACK,
            name="L3",
        )
        self.dram = DRAMModel(
            num_stacks=config.num_chiplets,
            latency_cycles=config.dram_latency,
            bandwidth_bytes_per_sec=config.dram_bandwidth_per_stack,
        )
        self.home_map = HomeMap(config.num_chiplets,
                                lines_per_page=config.scaled_page_lines)
        self.l1_filter = L1Filter(config.l1_repeat_hit_rate)
        self.cp_xbar = CPCrossbar(config.cp_xbar_unicast_cycles,
                                  config.cp_xbar_broadcast_cycles)
        self.links = InterChipletLinks(
            total_bandwidth_bytes_per_sec=config.inter_chiplet_bandwidth,
            extra_latency_cycles=config.l2_remote_latency - config.l2_local_latency,
        )
        self.local_cps: List[LocalCP] = [
            LocalCP(i, self) for i in range(config.num_chiplets)
        ]
        # Virtual-to-physical translation for the Sec. VI range-based
        # flush extension (software hints are virtual, L2s physical).
        self.translator = AddressTranslator()
        # Per-kernel measurement context; the simulator swaps these.
        self.traffic = TrafficMeter()
        self.counts: List[AccessCounts] = [
            AccessCounts() for _ in range(config.num_chiplets)
        ]

    # ------------------------------------------------------------------
    # Measurement context
    # ------------------------------------------------------------------

    def begin_kernel(self) -> None:
        """Reset the per-kernel meters (the simulator harvests them first)."""
        self.traffic = TrafficMeter()
        self.counts = [AccessCounts() for _ in range(self.config.num_chiplets)]

    def merged_counts(self) -> AccessCounts:
        """Device-wide access counts for the current kernel."""
        total = AccessCounts()
        for c in self.counts:
            total.merge(c)
        return total

    # ------------------------------------------------------------------
    # Address / placement helpers
    # ------------------------------------------------------------------

    @property
    def l2s(self) -> List[SetAssocCache]:
        """Per-chiplet L2 caches."""
        return [c.l2 for c in self.chiplets]

    def home_of(self, line: int, toucher: int) -> int:
        """Home chiplet of ``line`` under first-touch placement."""
        return self.home_map.home_of_line(line, toucher)

    def set_l2_policy(self, policy: WritePolicy) -> None:
        """Switch every L2's write policy (protocols call this once,
        before any accesses)."""
        for chiplet in self.chiplets:
            if chiplet.l2.resident_lines:
                raise RuntimeError("cannot change L2 policy after accesses")
            chiplet.l2.policy = policy

    # ------------------------------------------------------------------
    # L3 / DRAM paths (all traffic accounting lives here)
    # ------------------------------------------------------------------

    def fetch_from_l3(self, requester: int, line: int) -> None:
        """Serve an L2 refill from the L3 (falling through to DRAM)."""
        counts = self.counts[requester]
        self.traffic.l2_request()
        self.traffic.l2_data()
        hit, evicted = self.l3.access(line, is_write=False)
        if hit:
            counts.l3_hits += 1
        else:
            counts.l3_misses += 1
            counts.dram_reads += 1
            self.dram.record_read(self._stack_of(line))
        self._absorb_l3_eviction(requester, evicted)

    def l3_write(self, requester: int, line: int,
                 through_to_dram: bool = False) -> None:
        """Write a line into the L3 (write-through from an L2).

        ``through_to_dram`` additionally commits the write to memory
        (HMG sends writes through to memory, Sec. IV-C).
        """
        counts = self.counts[requester]
        self.traffic.l2_data()
        _, evicted = self.l3.access(line, is_write=not through_to_dram)
        if through_to_dram:
            counts.dram_writes += 1
            self.dram.record_write(self._stack_of(line))
        self._absorb_l3_eviction(requester, evicted)

    def writeback_line(self, chiplet: int, line: int) -> None:
        """Absorb one dirty L2 victim into the L3."""
        self.traffic.l2_data()
        evicted = self.l3.fill(line, dirty=True)
        self._absorb_l3_eviction(chiplet, evicted)

    def _absorb_l3_eviction(self, requester: int, evicted) -> None:
        if evicted is not None and evicted.dirty:
            self.counts[requester].dram_writes += 1
            self.dram.record_write(self._stack_of(evicted.line))

    def _stack_of(self, line: int) -> int:
        home = self.home_map.peek_home_of_line(line)
        return home if home is not None else 0

    # ------------------------------------------------------------------
    # Whole-cache synchronization (implicit acquire / release)
    # ------------------------------------------------------------------

    def flush_l2(self, chiplet: int) -> int:
        """Implicit release: write back all of ``chiplet``'s dirty L2 lines
        to the L3, retaining clean copies. Returns lines flushed."""
        flushed = self.chiplets[chiplet].l2.flush_dirty()
        for line in flushed:
            self.writeback_line(chiplet, line)
        return len(flushed)

    def invalidate_l2(self, chiplet: int) -> int:
        """Implicit acquire: drop every line in ``chiplet``'s L2. Dirty
        lines (if the release was skipped) are written back first for
        safety. Returns lines invalidated."""
        dropped, dirty = self.chiplets[chiplet].l2.invalidate_all()
        for line in dirty:
            self.writeback_line(chiplet, line)
        return dropped

    def flush_l2_ranges(self, chiplet: int,
                        ranges: Sequence[Tuple[int, int]]) -> int:
        """Range-restricted release (the Sec. VI hardware extension).

        The virtual ranges are broken into page-wise requests and
        translated (Sec. VI), then each page's lines are walked at the L2.
        """
        l2 = self.chiplets[chiplet].l2
        flushed = 0
        for span in self.translator.translate_ranges(ranges):
            for line in span.lines():
                if l2.flush_line(line):
                    self.writeback_line(chiplet, line)
                    flushed += 1
        return flushed

    def invalidate_l2_ranges(self, chiplet: int,
                             ranges: Sequence[Tuple[int, int]]) -> int:
        """Range-restricted acquire (the Sec. VI hardware extension)."""
        l2 = self.chiplets[chiplet].l2
        invalidated = 0
        for span in self.translator.translate_ranges(ranges):
            for line in span.lines():
                present, dirty = l2.invalidate_line(line)
                if dirty:
                    self.writeback_line(chiplet, line)
                if present:
                    invalidated += 1
        return invalidated
