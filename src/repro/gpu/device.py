"""The MCM-GPU device: chiplets, shared L3, DRAM, home map, meters.

The device owns all hardware state and the per-kernel measurement context
(one :class:`~repro.interconnect.noc.TrafficMeter` plus per-chiplet
:class:`~repro.metrics.stats.AccessCounts`). Coherence protocols route
accesses through the helpers here; the helpers do all traffic/energy-
relevant accounting so protocols stay declarative.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.interconnect.crossbar import CPCrossbar
from repro.interconnect.links import InterChipletLinks
from repro.interconnect.noc import TrafficMeter
from repro.memory.address import HomeMap
from repro.memory.cache import SetAssocCache, WritePolicy
from repro.memory.dram import DRAMModel
from repro.memory.npcache import make_cache_core
from repro.memory.l1 import L1Filter
from repro.memory.translation import AddressTranslator
from repro.metrics.stats import AccessCounts
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.gpu.chiplet import Chiplet
from repro.cp.local_cp import LocalCP

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.gpu.config import GPUConfig


class Device:
    """All hardware state of one simulated MCM-GPU."""

    def __init__(self, config: "GPUConfig",
                 l2_policy: WritePolicy = WritePolicy.WRITE_BACK,
                 cache_core: str = "dict") -> None:
        self.config = config
        self.cache_core = cache_core
        self.chiplets: List[Chiplet] = [
            Chiplet(i, config, l2_policy, cache_core)
            for i in range(config.num_chiplets)
        ]
        self.l3 = make_cache_core(
            cache_core,
            size_bytes=config.scaled_l3_size,
            assoc=config.l3_assoc,
            line_size=config.line_size,
            policy=WritePolicy.WRITE_BACK,
            name="L3",
        )
        self.dram = DRAMModel(
            num_stacks=config.num_chiplets,
            latency_cycles=config.dram_latency,
            bandwidth_bytes_per_sec=config.dram_bandwidth_per_stack,
        )
        self.home_map = HomeMap(config.num_chiplets,
                                lines_per_page=config.scaled_page_lines)
        self.l1_filter = L1Filter(config.l1_repeat_hit_rate)
        self.cp_xbar = CPCrossbar(config.cp_xbar_unicast_cycles,
                                  config.cp_xbar_broadcast_cycles)
        self.links = InterChipletLinks(
            total_bandwidth_bytes_per_sec=config.inter_chiplet_bandwidth,
            extra_latency_cycles=config.l2_remote_latency - config.l2_local_latency,
        )
        self.local_cps: List[LocalCP] = [
            LocalCP(i, self) for i in range(config.num_chiplets)
        ]
        # Virtual-to-physical translation for the Sec. VI range-based
        # flush extension (software hints are virtual, L2s physical).
        self.translator = AddressTranslator()
        # The observability tracepoint sink. The simulator installs its
        # tracer here before building the protocol so every component
        # (local CPs, coherence table, directories) sees the same one;
        # the default NULL_TRACER no-ops with ``enabled=False``.
        self.tracer: Tracer = NULL_TRACER
        # Per-kernel measurement context; the simulator swaps these.
        self.traffic = TrafficMeter()
        self.counts: List[AccessCounts] = [
            AccessCounts() for _ in range(config.num_chiplets)
        ]

    # ------------------------------------------------------------------
    # Measurement context
    # ------------------------------------------------------------------

    def begin_kernel(self) -> None:
        """Reset the per-kernel meters (the simulator harvests them first)."""
        self.traffic = TrafficMeter()
        self.counts = [AccessCounts() for _ in range(self.config.num_chiplets)]

    def merged_counts(self) -> AccessCounts:
        """Device-wide access counts for the current kernel."""
        total = AccessCounts()
        for c in self.counts:
            total.merge(c)
        return total

    # ------------------------------------------------------------------
    # Address / placement helpers
    # ------------------------------------------------------------------

    @property
    def l2s(self) -> List[SetAssocCache]:
        """Per-chiplet L2 caches."""
        return [c.l2 for c in self.chiplets]

    def home_of(self, line: int, toucher: int) -> int:
        """Home chiplet of ``line`` under first-touch placement."""
        return self.home_map.home_of_line(line, toucher)

    def set_l2_policy(self, policy: WritePolicy) -> None:
        """Switch every L2's write policy (protocols call this once,
        before any accesses)."""
        for chiplet in self.chiplets:
            if chiplet.l2.resident_lines:
                raise RuntimeError("cannot change L2 policy after accesses")
            chiplet.l2.policy = policy

    # ------------------------------------------------------------------
    # L3 / DRAM paths (all traffic accounting lives here)
    # ------------------------------------------------------------------

    def fetch_from_l3(self, requester: int, line: int) -> None:
        """Serve an L2 refill from the L3 (falling through to DRAM)."""
        counts = self.counts[requester]
        self.traffic.l2_request()
        self.traffic.l2_data()
        hit, evicted = self.l3.access(line, is_write=False)
        if hit:
            counts.l3_hits += 1
        else:
            counts.l3_misses += 1
            counts.dram_reads += 1
            self.dram.record_read(self._stack_of(line))
        self._absorb_l3_eviction(requester, evicted)

    def l3_write(self, requester: int, line: int,
                 through_to_dram: bool = False) -> None:
        """Write a line into the L3 (write-through from an L2).

        ``through_to_dram`` additionally commits the write to memory
        (HMG sends writes through to memory, Sec. IV-C).
        """
        counts = self.counts[requester]
        self.traffic.l2_data()
        _, evicted = self.l3.access(line, is_write=not through_to_dram)
        if through_to_dram:
            counts.dram_writes += 1
            self.dram.record_write(self._stack_of(line))
        self._absorb_l3_eviction(requester, evicted)

    def writeback_line(self, chiplet: int, line: int) -> None:
        """Absorb one dirty L2 victim into the L3."""
        self.traffic.l2_data()
        evicted = self.l3.fill(line, dirty=True)
        self._absorb_l3_eviction(chiplet, evicted)

    def _absorb_l3_eviction(self, requester: int, evicted) -> None:
        if evicted is not None and evicted.dirty:
            self.counts[requester].dram_writes += 1
            self.dram.record_write(self._stack_of(evicted.line))

    def _stack_of(self, line: int) -> int:
        home = self.home_map.peek_home_of_line(line)
        return home if home is not None else 0

    # ------------------------------------------------------------------
    # Bulk (run) L3 / DRAM paths
    #
    # Bit-exact batched forms of the per-line helpers above, used by the
    # protocols' `access_run` fast paths. Each replays the same L3
    # operations in the same order a per-line sweep would issue them;
    # only the Python-level looping and traffic-counter arithmetic are
    # folded.
    # ------------------------------------------------------------------

    def serve_l2_miss_events(self, requester: int, wb_chiplet: int,
                             events) -> None:
        """Serve an ordered L2 miss/victim event stream from the L3.

        ``events`` is a :class:`~repro.memory.cache.RunResult` event list:
        ``(line, victim_line, victim_dirty)`` per missing line, ascending.
        For each event this performs exactly what the per-line path does:
        a :meth:`fetch_from_l3` for the missing line (attributed to
        ``requester``) followed, if the victim was dirty, by a
        :meth:`writeback_line` attributed to ``wb_chiplet`` (the chiplet
        whose L2 evicted — the requester for local accesses, the home
        node for remote reads).
        """
        counts = self.counts[requester]
        res = self.l3.bulk_serve(events=events)
        missed = res.lines
        counts.l3_hits += res.hits
        counts.l3_misses += len(missed)
        counts.dram_reads += len(missed)
        if missed:
            for stack, n in self.home_map.home_histogram(missed).items():
                self.dram.record_read(stack, n)
        if res.evictions:
            access_devs = [ev.line for ev in res.evictions]
            counts.dram_writes += len(access_devs)
            for stack, n in self.home_map.home_histogram(access_devs).items():
                self.dram.record_write(stack, n)
        if res.fill_evictions:
            fill_devs = [ev.line for ev in res.fill_evictions]
            self.counts[wb_chiplet].dram_writes += len(fill_devs)
            for stack, n in self.home_map.home_histogram(fill_devs).items():
                self.dram.record_write(stack, n)
        self.traffic.l2_request(len(events))
        self.traffic.l2_data(len(events) + res.writebacks)

    def fetch_run_from_l3(self, requester: int, start: int,
                          count: int) -> None:
        """Serve ``count`` consecutive L2 refills from the L3 in bulk.

        Only valid when the caller knows every line in the run missed the
        L2 with no victim writebacks interleaved (a ``uniform_miss`` run
        result) — then the L3 sees the plain ascending run and can itself
        be accessed in bulk; below the L3 only order-free DRAM counters
        remain.
        """
        counts = self.counts[requester]
        self.traffic.l2_request(count)
        self.traffic.l2_data(count)
        res = self.l3.bulk_access(start=start, count=count,
                                  load=True, store=False)
        counts.l3_hits += res.hits
        counts.l3_misses += res.misses
        counts.dram_reads += res.misses
        if res.uniform_miss:
            self._record_dram_reads_run(start, count)
        elif res.events:
            hist = self.home_map.home_histogram(
                line for line, _, _ in res.events)
            for stack, n in hist.items():
                self.dram.record_read(stack, n)
            victims = [victim for _, victim, victim_dirty in res.events
                       if victim_dirty]
            if victims:
                counts.dram_writes += len(victims)
                for stack, n in self.home_map.home_histogram(
                        victims).items():
                    self.dram.record_write(stack, n)

    def l3_write_run(self, requester: int, start: int, count: int) -> None:
        """Bulk form of :meth:`l3_write` (write-through, not to DRAM)
        over an ascending run of distinct lines."""
        self.traffic.l2_data(count)
        res = self.l3.bulk_access(start=start, count=count,
                                  load=False, store=True)
        if res.events:
            victims = [victim for _, victim, victim_dirty in res.events
                       if victim_dirty]
            if victims:
                counts = self.counts[requester]
                counts.dram_writes += len(victims)
                for stack, n in self.home_map.home_histogram(
                        victims).items():
                    self.dram.record_write(stack, n)

    def _record_dram_reads_run(self, start: int, count: int) -> None:
        """Per-stack DRAM read accounting for a whole run (page-wise:
        every line of a page shares its home stack)."""
        lpp = self.home_map.lines_per_page
        pos = start
        end = start + count
        record_read = self.dram.record_read
        while pos < end:
            page_end = min(end, (pos // lpp + 1) * lpp)
            record_read(self._stack_of(pos), page_end - pos)
            pos = page_end

    # ------------------------------------------------------------------
    # Whole-cache synchronization (implicit acquire / release)
    # ------------------------------------------------------------------

    def flush_l2(self, chiplet: int) -> int:
        """Implicit release: write back all of ``chiplet``'s dirty L2 lines
        to the L3, retaining clean copies. Returns lines flushed."""
        flushed = self.chiplets[chiplet].l2.flush_dirty()
        self._writeback_lines(chiplet, flushed)
        return len(flushed)

    def invalidate_l2(self, chiplet: int) -> int:
        """Implicit acquire: drop every line in ``chiplet``'s L2. Dirty
        lines (if the release was skipped) are written back first for
        safety. Returns lines invalidated."""
        dropped, dirty = self.chiplets[chiplet].l2.invalidate_all()
        self._writeback_lines(chiplet, dirty)
        return dropped

    def _writeback_lines(self, chiplet: int, lines: Sequence[int]) -> None:
        """Absorb a batch of dirty L2 victims into the L3 (same fill
        order as per-line :meth:`writeback_line` calls; the traffic
        counter is bumped once in aggregate)."""
        if not lines:
            return
        fills = self.l3.bulk_fill(lines=lines, dirty=True)
        dirty_victims = [ev.line for ev in fills.evictions if ev.dirty]
        if dirty_victims:
            self.counts[chiplet].dram_writes += len(dirty_victims)
            for stack, n in self.home_map.home_histogram(
                    dirty_victims).items():
                self.dram.record_write(stack, n)
        self.traffic.l2_data(len(lines))

    def flush_l2_ranges(self, chiplet: int,
                        ranges: Sequence[Tuple[int, int]]) -> int:
        """Range-restricted release (the Sec. VI hardware extension).

        The virtual ranges are broken into page-wise requests and
        translated (Sec. VI), then each page's span is flushed at the L2
        in one bulk operation.
        """
        l2 = self.chiplets[chiplet].l2
        flushed = 0
        for span in self.translator.translate_ranges(ranges):
            lines = l2.bulk_flush(start=span.first_line,
                                  count=span.last_line - span.first_line).lines
            self._writeback_lines(chiplet, lines)
            flushed += len(lines)
        return flushed

    def invalidate_l2_ranges(self, chiplet: int,
                             ranges: Sequence[Tuple[int, int]]) -> int:
        """Range-restricted acquire (the Sec. VI hardware extension)."""
        l2 = self.chiplets[chiplet].l2
        invalidated = 0
        for span in self.translator.translate_ranges(ranges):
            res = l2.bulk_invalidate(
                start=span.first_line,
                count=span.last_line - span.first_line)
            self._writeback_lines(chiplet, res.lines)
            invalidated += res.dropped
        return invalidated
