"""Top-level trace-driven simulator.

Drives one workload through one (config, protocol) pair:

1. the runtime side builds each kernel's packet (with the Sec. III-B
   software annotations) and submits it to the global CP;
2. the global CP performs the protocol's launch-time synchronization and
   places WGs (static kernel-wide partitioning);
3. the trace generator sweeps each argument's per-chiplet lines through
   the L1 filter and the protocol's access path;
4. the protocol's completion hook runs (Baseline's implicit release);
5. the timing model converts the harvested counters into cycles.

Streams: kernels on different streams accumulate onto separate stream
clocks (they may run concurrently when bound to disjoint chiplet subsets);
the run's wall time is the slowest stream's clock.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.check.sanitizer import SyncSanitizer, checks_enabled
from repro.coherence.base import CoherenceProtocol, make_protocol
from repro.errors import ConfigError
from repro.cp.driver import GPUDriver
from repro.cp.global_cp import GlobalCP
from repro.cp.local_cp import SyncOpKind
from repro.energy.model import EnergyModel
from repro.gpu.config import GPUConfig
from repro.gpu.device import Device
from repro.metrics.stats import KernelMetrics, RunMetrics, SyncCounts
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.timing.model import TimingModel
from repro.workloads.base import (
    AccessKind,
    Kernel,
    LineRun,
    Workload,
    interned_runs_for_arg,
    lines_for_arg,
)

#: Canonical trace-path selection API — the enum and resolver live in
#: :mod:`repro.gpu.trace_path` and are re-exported here for the
#: historical import site.
from repro.gpu.trace_path import (  # noqa: E402  (re-export)
    TRACE_PATH_ENV,
    TracePath,
    resolve_trace_path,
)

#: Legacy module constants kept importable (with a warning) via
#: :func:`__getattr__` below.
_LEGACY_CONSTANTS = {
    "DEFAULT_TRACE_PATH": "run",
    "_TRACE_PATHS": ("line", "run", "memo"),
}


def __getattr__(name: str):
    """Deprecation shims for the raw-string trace-path constants.

    Deep imports like ``from repro.gpu.sim import DEFAULT_TRACE_PATH``
    still resolve (to the historical plain-string values) but warn;
    use :class:`repro.api.TracePath` instead.
    """
    if name in _LEGACY_CONSTANTS:
        import warnings
        warnings.warn(
            f"repro.gpu.sim.{name} is deprecated; use the "
            "repro.api.TracePath enum instead",
            DeprecationWarning, stacklevel=2)
        return _LEGACY_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class SimulationResult:
    """Outcome of one workload run."""

    metrics: RunMetrics
    energy: Dict[str, float]
    wall_cycles: float
    protocol: str
    num_chiplets: int
    #: Memo trace-path diagnostics (kernels replayed from / recorded
    #: into / excluded from the memo store). ``None`` whenever the run
    #: was not memoized — the line and run paths, and results rebuilt
    #: from a serialized dump (the counters are deliberately *not* part
    #: of :meth:`to_dict`: the dump must stay bit-identical across trace
    #: paths and across warm vs. cold memo stores for the differential
    #: tests and the engine's result cache). Consumers must treat
    #: ``None`` as "not applicable", never as zero activity.
    memo_hits: Optional[int] = None
    memo_misses: Optional[int] = None
    memo_bypasses: Optional[int] = None
    #: True when the engine served this result from its persistent
    #: :class:`~repro.engine.cache.ResultCache` instead of simulating.
    from_cache: bool = False
    #: Aggregated per-run observability metrics (the run's
    #: :class:`~repro.obs.metrics.MetricRegistry` as a dict), attached
    #: only when the run carried an enabled tracer. Like the memo
    #: counters, it is excluded from the *default* :meth:`to_dict` so
    #: traced and untraced dumps stay bit-identical; pass
    #: ``include_obs=True`` to serialize it.
    obs: Optional[Dict[str, Any]] = None

    @property
    def cycles(self) -> float:
        """Wall-clock cycles of the run."""
        return self.wall_cycles

    def summary(self) -> Dict[str, float]:
        """Scalar summary for the experiment harnesses.

        Every value is a plain JSON-serializable ``float``/``int``.
        """
        out = self.metrics.summary()
        out["wall_cycles"] = float(self.wall_cycles)
        out["energy_total"] = float(self.energy["total"])
        return out

    def to_dict(self, *, include_obs: bool = False) -> Dict[str, Any]:
        """Lossless JSON-serializable dump of the result.

        ``SimulationResult.from_dict(json.loads(json.dumps(r.to_dict())))``
        reproduces ``r`` bit-for-bit — the engine's result cache and its
        worker-process transport both rely on this round trip. The
        default dump never includes the :attr:`obs` metrics (tracing must
        not perturb serialized results); ``include_obs=True`` adds them.
        """
        out = {
            "protocol": self.protocol,
            "num_chiplets": int(self.num_chiplets),
            "wall_cycles": float(self.wall_cycles),
            "energy": {k: float(v) for k, v in self.energy.items()},
            "metrics": self.metrics.to_dict(),
        }
        if include_obs and self.obs is not None:
            out["obs"] = self.obs
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            metrics=RunMetrics.from_dict(data["metrics"]),
            energy={k: float(v) for k, v in data["energy"].items()},
            wall_cycles=float(data["wall_cycles"]),
            protocol=data["protocol"],
            num_chiplets=int(data["num_chiplets"]),
            obs=data.get("obs"),
        )


class Simulator:
    """Runs workloads against a configured protocol.

    ``protocol`` is either a registry name (see
    :func:`repro.coherence.base.make_protocol`) or a factory callable
    ``(config, device) -> CoherenceProtocol`` for custom protocols (used
    by the Sec. VI scaling study).
    """

    def __init__(self, config: GPUConfig, protocol="baseline",
                 energy_model: Optional[EnergyModel] = None,
                 scheduler: str = "static",
                 trace_path: Optional[str] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if scheduler not in ("static", "locality"):
            raise ConfigError(
                f"scheduler must be 'static' or 'locality', got {scheduler!r}")
        self.config = config
        self.protocol_name = protocol
        self.scheduler = scheduler
        self.trace_path = resolve_trace_path(trace_path)
        #: Observability tracepoint sink; :data:`~repro.obs.tracer
        #: .NULL_TRACER` (free) unless a tracer was attached.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        #: Memo outcome ("hit"/"miss"/"bypass") of the kernel currently
        #: executing, consumed by the kernel-complete tracepoint.
        self._memo_outcome: Optional[str] = None
        #: Whether the current memo-path run skipped the memoizer
        #: because every kernel is bypassed (set per run).
        self._memo_all_bypass = False
        self.energy_model = energy_model or EnergyModel()
        #: Trace lines swept by the most recent :meth:`run` (all kernels);
        #: the bench harness reads this for its lines/sec figures.
        self.last_trace_lines = 0
        #: Whether the :mod:`repro.check` sanitizer runs (config flag or
        #: ``REPRO_CHECK`` environment, resolved at construction).
        self.check_enabled = checks_enabled(config)
        self._sanitizer = None
        #: The most recent run's device / protocol / sanitizer, retained
        #: for post-run state inspection (the differential oracle
        #: fingerprints final cache/table/directory state from these).
        self.last_device: Optional[Device] = None
        self.last_protocol: Optional[CoherenceProtocol] = None
        self.last_sanitizer = None

    # ------------------------------------------------------------------

    def run(self, workload: Workload) -> SimulationResult:
        """Simulate ``workload`` end to end and return its metrics."""
        config = self.config
        # The per-line reference path keeps the dict-backed cache core;
        # the batched paths run on the vectorized numpy core. Both are
        # bit-identical (the differential oracle compares across them).
        device = Device(config, cache_core=(
            "dict" if self.trace_path is TracePath.LINE else "numpy"))
        # Installed before protocol construction so components built by
        # the protocol (e.g. the coherence table) share the tracer.
        tracer = self.tracer
        device.tracer = tracer
        if callable(self.protocol_name):
            protocol = self.protocol_name(config, device)
        else:
            protocol = make_protocol(self.protocol_name, config, device)
        if self.scheduler == "locality":
            from repro.cp.locality_scheduler import LocalityAwareWGScheduler
            wg_scheduler = LocalityAwareWGScheduler(config.num_chiplets)
        else:
            wg_scheduler = None
        global_cp = GlobalCP(config, device, protocol,
                             wg_scheduler=wg_scheduler)
        driver = GPUDriver(config)
        timing = TimingModel(config)
        self.last_device = device
        self.last_protocol = protocol
        self._sanitizer = (SyncSanitizer(config, device, protocol)
                           if self.check_enabled else None)
        self.last_sanitizer = self._sanitizer
        memoizer = self._make_memoizer(device, protocol, global_cp, driver,
                                       wg_scheduler, workload)
        metrics = RunMetrics(workload=workload.name,
                             protocol=protocol.name,
                             num_chiplets=config.num_chiplets)
        stream_clocks: Dict[int, float] = defaultdict(float)
        self.last_trace_lines = 0
        if tracer.enabled:
            tracer.run_begin(workload=workload.name, protocol=protocol.name,
                             num_chiplets=config.num_chiplets,
                             clock_hz=config.gpu_clock_hz,
                             trace_path=self.trace_path)

        for kernel in workload.kernels:
            lines_before = self.last_trace_lines
            self._memo_outcome = None
            if memoizer is not None:
                km = self._run_kernel_memo(kernel, driver, device, protocol,
                                           global_cp, timing, memoizer)
            else:
                if self._memo_all_bypass:
                    self._memo_outcome = "bypass"
                km = self._run_kernel(kernel, driver, device, protocol,
                                      global_cp, timing)
                if self._memo_all_bypass and tracer.enabled:
                    tracer.memo_event(outcome="bypass", name=km.kernel_name,
                                      index=km.kernel_index)
            metrics.add_kernel(km)
            stream_clocks[kernel.stream_id] += km.cycles
            if tracer.enabled:
                tracer.kernel_complete(
                    name=km.kernel_name, index=km.kernel_index,
                    stream=kernel.stream_id, cycles=km.cycles,
                    sync_cycles=km.sync_cycles,
                    lines=self.last_trace_lines - lines_before,
                    lines_flushed=km.sync.lines_flushed,
                    lines_invalidated=km.sync.lines_invalidated,
                    memo=self._memo_outcome)

        if memoizer is not None:
            # The end-of-run release reads the caches for real.
            memoizer.flush_pending()
        finalize = self._finalize(device, protocol, timing,
                                  len(workload.kernels))
        if finalize is not None:
            metrics.add_kernel(finalize)
            if stream_clocks:
                slowest = max(stream_clocks, key=lambda s: stream_clocks[s])
                stream_clocks[slowest] += finalize.cycles
            else:
                # Zero-kernel run (e.g. a workload drained before
                # simulation): the final release is the only activity.
                stream_clocks[0] = finalize.cycles

        wall = max(stream_clocks.values()) if stream_clocks else 0.0
        energy = self.energy_model.breakdown(metrics.total_accesses(),
                                             metrics.total_traffic())
        result = SimulationResult(metrics=metrics, energy=energy,
                                  wall_cycles=wall,
                                  protocol=protocol.name,
                                  num_chiplets=config.num_chiplets)
        if memoizer is not None:
            result.memo_hits = memoizer.hits
            result.memo_misses = memoizer.misses
            result.memo_bypasses = memoizer.bypasses
        elif self._memo_all_bypass:
            result.memo_hits = 0
            result.memo_misses = 0
            result.memo_bypasses = len(workload.kernels)
        if tracer.enabled:
            tracer.run_end(wall_cycles=wall, kernels=len(workload.kernels))
            result.obs = self._harvest_obs(tracer)
        self._sanitizer = None
        return result

    def _harvest_obs(self, tracer: Tracer) -> Optional[Dict[str, Any]]:
        """Aggregate the just-finished run's metric scope into a dict
        (attached to the result as :attr:`SimulationResult.obs`)."""
        registry = getattr(tracer, "metrics", None)
        if registry is None:
            return None
        if registry.children:
            last_run = registry.children[list(registry.children)[-1]]
            return last_run.aggregate().to_dict(include_children=False)
        return registry.aggregate().to_dict(include_children=False)

    def _make_memoizer(self, device, protocol, global_cp, driver,
                       wg_scheduler, workload):
        """Build the run's :class:`~repro.gpu.memo.KernelMemoizer`, or
        ``None`` off the memo path. Custom protocol factories have no
        stable registry name to key the shared store by, so they run
        unmemoized even under ``trace_path='memo'``.

        When *every* kernel in the workload is memo-bypassed (pure roam
        workloads such as bfs/sssp), the memoizer would be pure
        overhead: each bypass still forces pending restores to
        materialize and chains the workload digest. The cheap pre-scan
        below skips the machinery entirely; :meth:`run` still reports
        the bypass counters and tracepoints, so the memo path can never
        lose to the run path on all-bypass workloads.
        """
        self._memo_all_bypass = False
        if self.trace_path is not TracePath.MEMO or callable(
                self.protocol_name):
            return None
        from repro.gpu.memo import (KernelMemoizer, store_for,
                                    workload_is_all_bypass)
        if workload_is_all_bypass(workload):
            self._memo_all_bypass = True
            return None
        context = (repr(self.config), protocol.name, self.scheduler)
        return KernelMemoizer(store_for(context), device, protocol,
                              global_cp, driver, wg_scheduler)

    # ------------------------------------------------------------------

    def _run_kernel(self, kernel: Kernel, driver: GPUDriver, device: Device,
                    protocol: CoherenceProtocol, global_cp: GlobalCP,
                    timing: TimingModel) -> KernelMetrics:
        packet = driver.enqueue_kernel(kernel)
        device.begin_kernel()
        driver.submit(global_cp)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.before_launch()
        decision = global_cp.launch_next()
        assert decision is not None
        placement = decision.placement
        if sanitizer is not None:
            sanitizer.after_launch(packet, placement, decision)

        total_lines = self._run_trace(kernel, packet.kernel_id, device,
                                      protocol, placement)
        self._record_lds(kernel, device, placement, total_lines)
        completion = global_cp.complete(packet, placement)
        if sanitizer is not None:
            sanitizer.after_kernel(packet)

        lines_flushed = decision.lines_flushed + completion.lines_flushed
        lines_invalidated = (decision.lines_invalidated
                             + completion.lines_invalidated)
        had_ops = bool(decision.launch_ops or completion.ops)
        compute_cycles = kernel.compute_intensity * total_lines
        kt = timing.kernel_time(
            placement=placement,
            per_chiplet_counts=device.counts,
            traffic=device.traffic,
            compute_cycles=compute_cycles,
            sync_lines_flushed=lines_flushed,
            sync_lines_invalidated=lines_invalidated,
            had_sync_ops=had_ops,
            cp_overhead_cycles=decision.cp_overhead_cycles,
            mlp_factor=self._occupancy_factor(kernel),
        )

        sync = self._sync_counts(decision, completion, protocol)
        return KernelMetrics(
            kernel_name=kernel.name,
            kernel_index=packet.kernel_id,
            cycles=kt.total_cycles,
            compute_cycles=kt.compute_cycles,
            memory_cycles=kt.memory_cycles,
            sync_cycles=kt.sync_cycles,
            cp_overhead_cycles=decision.cp_overhead_cycles,
            accesses=device.merged_counts(),
            sync=sync,
            traffic=device.traffic,
            chiplets_used=placement.num_chiplets,
        )

    def _run_kernel_memo(self, kernel: Kernel, driver: GPUDriver,
                         device: Device, protocol: CoherenceProtocol,
                         global_cp: GlobalCP, timing: TimingModel,
                         memoizer) -> KernelMetrics:
        """Memo trace path: replay a recorded outcome when this exact
        (kernel, pre-state, launch position) transition has been seen,
        otherwise run the kernel for real and record it. Kernels whose
        trace depends on the dynamic kernel id bypass memoization."""
        from repro.gpu.memo import kernel_is_bypassed

        tracer = self.tracer
        if kernel_is_bypassed(kernel):
            memoizer.note_bypass(kernel)
            self._memo_outcome = "bypass"
            km = self._run_kernel(kernel, driver, device, protocol,
                                  global_cp, timing)
            if tracer.enabled:
                tracer.memo_event(outcome="bypass", name=km.kernel_name,
                                  index=km.kernel_index)
            return km
        key = memoizer.lookup_key(kernel)
        entry = memoizer.store.get(key)
        if entry is not None:
            km, trace_lines = memoizer.replay(entry, kernel)
            self.last_trace_lines += trace_lines
            self._memo_outcome = "hit"
            if tracer.enabled:
                # Replays skip the global CP, so synthesize the launch
                # boundary (placement unknown on a hit) for the trace.
                tracer.kernel_launch(name=km.kernel_name,
                                     index=km.kernel_index,
                                     stream=kernel.stream_id, chiplets=[])
                tracer.memo_event(outcome="hit", name=km.kernel_name,
                                  index=km.kernel_index)
            return km
        lines_before = self.last_trace_lines
        pre = memoizer.begin_capture()
        self._memo_outcome = "miss"
        km = self._run_kernel(kernel, driver, device, protocol,
                              global_cp, timing)
        memoizer.end_capture(key, pre, km,
                             self.last_trace_lines - lines_before)
        if tracer.enabled:
            tracer.memo_event(outcome="miss", name=km.kernel_name,
                              index=km.kernel_index)
        return km

    def _occupancy_factor(self, kernel: Kernel) -> float:
        """Occupancy-derived MLP factor (1.0 for undeclared resources)."""
        if kernel.resources is None:
            return 1.0
        from repro.cp.dispatcher import LocalDispatcher
        fraction = LocalDispatcher(self.config).occupancy(
            kernel.resources).fraction
        return max(0.025, min(1.0, fraction))

    # ------------------------------------------------------------------

    def _run_trace(self, kernel: Kernel, kernel_id: int, device: Device,
                   protocol: CoherenceProtocol, placement) -> int:
        """Sweep every argument's trace through the protocol.

        Uses the per-line reference path or the batched run path per
        :attr:`trace_path`; both produce bit-identical results. Returns
        the total distinct lines touched (drives compute time).
        """
        total_lines = 0
        caches_remote = protocol.caches_remote_locally
        batched = self.trace_path is not TracePath.LINE
        for arg in kernel.args:
            kind = arg.effective_kind
            for logical, chiplet in enumerate(placement.chiplets):
                if batched:
                    runs = interned_runs_for_arg(arg, logical,
                                                 placement.num_chiplets,
                                                 kernel_id)
                    if not runs:
                        continue
                    total_lines += self._run_arg_runs(
                        arg, kind, runs, chiplet, device, protocol,
                        caches_remote)
                else:
                    lines = lines_for_arg(arg, logical,
                                          placement.num_chiplets, kernel_id)
                    if not lines:
                        continue
                    total_lines += len(lines)
                    self._run_arg_stream(arg, kind, lines, chiplet, device,
                                         protocol, caches_remote)
        self.last_trace_lines += total_lines
        return total_lines

    def _run_arg_stream(self, arg, kind: AccessKind, lines: List[int],
                        chiplet: int, device: Device,
                        protocol: CoherenceProtocol,
                        caches_remote: bool) -> None:
        do_load = kind in (AccessKind.LOAD, AccessKind.LOAD_STORE)
        do_store = kind in (AccessKind.STORE, AccessKind.LOAD_STORE)

        local_lines = 0
        for line in lines:
            if do_load:
                protocol.access(chiplet, line, is_write=False)
            if do_store:
                protocol.access(chiplet, line, is_write=True)
            if device.home_map.peek_home_of_line(line) == chiplet:
                local_lines += 1

        self._account_l1(arg, do_load, do_store, len(lines), local_lines,
                         chiplet, device, caches_remote)

    def _run_arg_runs(self, arg, kind: AccessKind, runs: Sequence[LineRun],
                      chiplet: int, device: Device,
                      protocol: CoherenceProtocol,
                      caches_remote: bool) -> int:
        """Batched equivalent of :meth:`_run_arg_stream` over interval
        runs. Returns the trace length (for the caller's line total)."""
        do_load = kind in (AccessKind.LOAD, AccessKind.LOAD_STORE)
        do_store = kind in (AccessKind.STORE, AccessKind.LOAD_STORE)
        access = protocol.access
        access_run = protocol.access_run
        peek = device.home_map.peek_home_of_line
        total = 0
        local_lines = 0
        for run in runs:
            n = run.count
            total += n
            if n == 1:
                # Singleton runs (random patterns) skip the bulk framing.
                line = run.start
                if do_load:
                    access(chiplet, line, is_write=False)
                if do_store:
                    access(chiplet, line, is_write=True)
                if peek(line) == chiplet:
                    local_lines += 1
            else:
                # The protocol resolved every page home on the way
                # through; reuse its local-line count for the L1 split.
                local_lines += access_run(chiplet, run.start, n,
                                          do_load, do_store)

        self._account_l1(arg, do_load, do_store, total, local_lines,
                         chiplet, device, caches_remote)
        return total

    def _account_l1(self, arg, do_load: bool, do_store: bool,
                    num_lines: int, local_lines: int, chiplet: int,
                    device: Device, caches_remote: bool) -> None:
        """Statistical L1 over the swept stream: first touches reached the
        L2 in the caller; surviving repeat touches are L2 hits by
        construction. Shared by the line and run paths."""
        tracer = device.tracer
        if tracer.enabled:
            tracer.access_batch(arg=arg.buffer.name, chiplet=chiplet,
                                lines=num_lines, local_lines=local_lines,
                                loads=do_load, stores=do_store)
        counts = device.counts[chiplet]
        if do_load:
            res = device.l1_filter.filter(num_lines, arg.touches)
            counts.l1_accesses += res.l1_accesses
            counts.l1_hits += res.l1_hits
            repeats = res.l2_repeats
            if repeats:
                device.traffic.l1_request(repeats)
                device.traffic.l1_data(repeats)
                if caches_remote:
                    counts.l2_local_hits += repeats
                else:
                    local_share = local_lines / num_lines
                    local_rep = int(round(repeats * local_share))
                    remote_rep = repeats - local_rep
                    counts.l2_local_hits += local_rep
                    counts.l2_remote_hits += remote_rep
                    if remote_rep:
                        device.traffic.remote_request(remote_rep)
                        device.traffic.remote_data(remote_rep)
        if do_store:
            # Stores are write-through/no-allocate at the L1: every store
            # touches the L1 once on its way out.
            counts.l1_accesses += num_lines

    def _record_lds(self, kernel: Kernel, device: Device, placement,
                    total_lines: int) -> None:
        if kernel.lds_per_line <= 0:
            return
        total_lds = int(round(kernel.lds_per_line * total_lines))
        # Largest-remainder apportionment: floor every chiplet's share,
        # then hand the leftover accesses to the largest fractional
        # remainders (ties to the lower chiplet id) so the recorded
        # accesses sum exactly to total_lds — independent rounding could
        # drift by up to half a count per chiplet.
        shares = [total_lds * placement.share_of(c)
                  for c in placement.chiplets]
        amounts = [int(s) for s in shares]
        leftover = total_lds - sum(amounts)
        if leftover > 0:
            by_remainder = sorted(range(len(shares)),
                                  key=lambda i: (amounts[i] - shares[i], i))
            for i in by_remainder[:leftover]:
                amounts[i] += 1
        for chiplet, amount in zip(placement.chiplets, amounts):
            device.counts[chiplet].lds_accesses += amount
            device.chiplets[chiplet].lds.record(amount)

    # ------------------------------------------------------------------

    def _sync_counts(self, decision, completion,
                     protocol: CoherenceProtocol) -> SyncCounts:
        sync = SyncCounts()
        all_ops = list(decision.launch_ops) + list(completion.ops)
        sync.acquires_issued = sum(
            1 for op in all_ops if op.kind is SyncOpKind.ACQUIRE)
        sync.releases_issued = sum(
            1 for op in all_ops if op.kind is SyncOpKind.RELEASE)
        sync.lines_flushed = (decision.lines_flushed
                              + completion.lines_flushed)
        sync.lines_invalidated = (decision.lines_invalidated
                                  + completion.lines_invalidated)
        sync.cp_messages = self._drain_xbar_messages(protocol)
        outcome = getattr(protocol, "last_outcome", None)
        if outcome is not None:
            sync.acquires_elided = outcome.acquires_elided
            sync.releases_elided = outcome.releases_elided
        sync.merge(protocol.drain_sync_counts())
        return sync

    def _drain_xbar_messages(self, protocol: CoherenceProtocol) -> int:
        xbar = protocol.device.cp_xbar
        sent = xbar.messages_sent
        xbar.messages_sent = 0
        return sent

    # ------------------------------------------------------------------

    def _finalize(self, device: Device, protocol: CoherenceProtocol,
                  timing: TimingModel,
                  next_index: int) -> Optional[KernelMetrics]:
        """Execute the end-of-run release making results host-visible."""
        ops = protocol.on_run_end()
        if not ops:
            return None
        device.begin_kernel()
        flushed = 0
        invalidated = 0
        for op in ops:
            ack = device.local_cps[op.chiplet].execute(op,
                                                       boundary="run-end")
            flushed += ack.lines_flushed
            invalidated += ack.lines_invalidated
        if self._sanitizer is not None:
            self._sanitizer.after_run(ops)
        if flushed == 0 and invalidated == 0:
            return None
        sync_cycles = timing.sync_cycles(flushed, invalidated,
                                         had_sync_ops=True)
        sync = SyncCounts(releases_issued=len(ops), lines_flushed=flushed,
                          lines_invalidated=invalidated)
        return KernelMetrics(
            kernel_name="__finalize__",
            kernel_index=next_index,
            cycles=sync_cycles,
            sync_cycles=sync_cycles,
            accesses=device.merged_counts(),
            sync=sync,
            traffic=device.traffic,
            chiplets_used=self.config.num_chiplets,
        )
