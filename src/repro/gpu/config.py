"""Simulated GPU configuration — Table I of the paper.

The defaults reproduce Table I (AMD Radeon VII-derived, validated gem5
model). A single ``scale`` knob shrinks cache capacities; workloads consult
the same knob when sizing their footprints, so working-set-to-cache ratios
— which drive every result in the paper — are preserved while letting the
pure-Python simulator finish in seconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GPUConfig:
    """Table I parameters plus simulator-level knobs.

    All cycle quantities are in GPU core cycles unless suffixed otherwise.
    """

    # ---- compute -------------------------------------------------------
    gpu_clock_hz: float = 1801e6
    cus_per_chiplet: int = 60
    num_chiplets: int = 4
    simd_per_cu: int = 4
    max_wf_per_simd: int = 10
    num_compute_queues: int = 256

    # ---- L1 / LDS ------------------------------------------------------
    l1d_size: int = 16 * KB          # per CU
    l1i_size: int = 16 * KB          # per 4 CUs
    l1_latency: int = 140
    l1_repeat_hit_rate: float = 0.9  # statistical L1 filter parameter
    lds_size: int = 64 * KB          # per CU
    lds_latency: int = 65

    # ---- L2 (per chiplet) ----------------------------------------------
    l2_size: int = 8 * MB
    l2_assoc: int = 32
    l2_local_latency: int = 269
    l2_remote_latency: int = 390
    l2_bandwidth_per_chiplet: float = 1024e9

    # ---- L3 (shared LLC, banked across chiplets) -------------------------
    l3_size: int = 16 * MB
    l3_assoc: int = 16
    l3_latency: int = 330
    l3_bandwidth_bytes_per_sec: float = 4096e9
    #: Bulk L2->L3 flush streaming rate (aggregate): writebacks are
    #: sequential full-line bursts with no request/response round trips,
    #: so they stream faster than demand traffic.
    flush_bandwidth_bytes_per_sec: float = 8192e9

    # ---- memory ----------------------------------------------------------
    line_size: int = 64
    dram_latency: int = 500
    #: Extra effective latency a write-through store carries (the write
    #: must reach its home/memory and be acknowledged before the store
    #: buffer entry frees; HMG writes through all stores, Sec. IV-C).
    writethrough_penalty_cycles: float = 330.0
    #: DRAM bandwidth amplification of write-through stores: per-store
    #: writes commit uncoalesced partial lines, costing read-modify-write
    #: cycles at the HBM versus the full-line writebacks of a write-back
    #: L2.
    wt_dram_amplification: float = 1.6
    dram_bandwidth_per_stack: float = 256e9   # one HBM stack per chiplet
    inter_chiplet_bandwidth: float = 768e9    # Table I

    # ---- command processors ----------------------------------------------
    cp_clock_hz: float = 1.5e9
    cp_dispatch_latency_s: float = 2e-6       # local/global CP latency [42,96,110]
    cpelide_op_latency_s: float = 6e-6        # Sec. IV-B measured table op cost
    #: Host (driver) round-trip latency for the Sec. VI what-if where the
    #: driver, not the CP, manages implicit synchronization — the CP must
    #: send scheduling information to the host and wait [28, 79, 140].
    host_roundtrip_latency_s: float = 10e-6
    cp_memory_latency_cycles: int = 31        # CP private memory
    cp_xbar_unicast_cycles: int = 65
    cp_xbar_broadcast_cycles: int = 100

    # ---- CPElide table sizing (Sec. III-A) --------------------------------
    table_structs_per_kernel: int = 8
    table_kernel_window: int = 8

    # ---- timing-model knobs ------------------------------------------------
    #: Effective outstanding memory accesses per CU (memory-level
    #: parallelism). 4 SIMD x 10 WF gives 40 wavefronts with multiple
    #: outstanding loads each; the calibrated value trades the latency
    #: term against the bandwidth floors.
    mlp_per_cu: float = 24.0

    # ---- simulator scaling ---------------------------------------------------
    #: Shrinks cache capacities; workloads shrink footprints by the same
    #: factor. 1.0 = paper scale. Benches default to 1/16, tests to 1/64.
    scale: float = 1.0
    #: Scale applied to *fixed* overheads (CP dispatch/table latencies,
    #: per-boundary sync constants). Defaults to ``scale``: shrinking a
    #: workload by 16x must shrink fixed costs equally or they dominate
    #: kernels that the scaling made 16x shorter, distorting every
    #: normalized result. Set to 1.0 to model true (unscaled) latencies.
    overhead_scale: float = -1.0  # sentinel: follow `scale`
    #: Multiplier on workload footprints *only* (caches unchanged) —
    #: sweeps the working-set-to-cache ratio for capacity-sensitivity
    #: studies (the Sec. V-C "aggregate L2 capacity is insufficient"
    #: exceptions).
    footprint_factor: float = 1.0
    #: Lease length of the timestamp coherence protocols, in kernel
    #: epochs: a line filled (or renewed) during kernel ``k`` may be
    #: served locally until kernel ``k + lease_kernels`` launches, after
    #: which the copy self-invalidates on its next access (HALCONE-style
    #: self-invalidation instead of acquire-side flushes). ``0``
    #: degenerates to no L2 caching under the timestamp protocols.
    lease_kernels: int = 4
    #: Enable the :mod:`repro.check` sanitizer: coherence invariants are
    #: asserted at every kernel boundary (illegal table transitions,
    #: stale reads, untracked dirty lines, op sets diverging from table
    #: state, HMG directory inconsistencies). The ``REPRO_CHECK=1``
    #: environment variable enables it too. Deliberately part of the
    #: config (and therefore of memo-store contexts and engine cache
    #: keys): checked and unchecked runs must never share cached results.
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.num_chiplets <= 0:
            raise ConfigError(f"num_chiplets must be positive, got {self.num_chiplets}")
        if not 0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if self.lease_kernels < 0:
            raise ConfigError(
                f"lease_kernels must be >= 0, got {self.lease_kernels}")

    # ---- derived quantities ---------------------------------------------

    @property
    def total_cus(self) -> int:
        """Total CUs across chiplets (Table I: 120/240/360 for 2/4/6)."""
        return self.cus_per_chiplet * self.num_chiplets

    @property
    def scaled_l2_size(self) -> int:
        """Per-chiplet L2 capacity after applying ``scale``."""
        return max(self.line_size * self.l2_assoc, int(self.l2_size * self.scale))

    @property
    def scaled_l3_size(self) -> int:
        """Shared L3 capacity after applying ``scale``."""
        return max(self.line_size * self.l3_assoc, int(self.l3_size * self.scale))

    @property
    def aggregate_l2_size(self) -> int:
        """Sum of all chiplets' scaled L2 capacities."""
        return self.scaled_l2_size * self.num_chiplets

    @property
    def scaled_page_lines(self) -> int:
        """First-touch placement granularity in lines, at simulation scale
        (a 4 KB page = 64 lines at paper scale)."""
        paper_lines = 4096 // self.line_size
        return max(1, int(paper_lines * self.scale))

    @property
    def chiplet_mlp(self) -> float:
        """Effective concurrent memory accesses per chiplet."""
        return self.mlp_per_cu * self.cus_per_chiplet

    @property
    def effective_overhead_scale(self) -> float:
        """Fixed-overhead scale (follows ``scale`` unless overridden)."""
        return self.scale if self.overhead_scale < 0 else self.overhead_scale

    @property
    def cp_dispatch_cycles(self) -> float:
        """CP dispatch latency in GPU cycles, at simulation scale."""
        return (self.cp_dispatch_latency_s * self.gpu_clock_hz
                * self.effective_overhead_scale)

    @property
    def cpelide_op_cycles(self) -> float:
        """CPElide table-operation latency in GPU cycles, at simulation
        scale."""
        return (self.cpelide_op_latency_s * self.gpu_clock_hz
                * self.effective_overhead_scale)

    def seconds(self, cycles: float) -> float:
        """Convert GPU cycles to seconds."""
        return cycles / self.gpu_clock_hz

    def cycles(self, seconds: float) -> float:
        """Convert seconds to GPU cycles."""
        return seconds * self.gpu_clock_hz

    def with_chiplets(self, num_chiplets: int) -> "GPUConfig":
        """Return a copy configured with ``num_chiplets`` (Sec. IV-E)."""
        return dataclasses.replace(self, num_chiplets=num_chiplets)

    def with_scale(self, scale: float) -> "GPUConfig":
        """Return a copy with a different simulator scale factor."""
        return dataclasses.replace(self, scale=scale)

    def with_footprint_factor(self, factor: float) -> "GPUConfig":
        """Return a copy whose workloads allocate ``factor``x footprints
        against unchanged caches (capacity-sensitivity sweeps)."""
        if factor <= 0:
            raise ConfigError(f"footprint_factor must be positive, got {factor}")
        return dataclasses.replace(self, footprint_factor=factor)

    def table_rows(self) -> "list[tuple[str, str]]":
        """Render the configuration as (feature, value) rows like Table I."""
        return [
            ("GPU Clock", f"{self.gpu_clock_hz / 1e6:.0f} MHz"),
            ("CUs/Chiplet", str(self.cus_per_chiplet)),
            ("Num Chiplets", str(self.num_chiplets)),
            ("Total CUs", str(self.total_cus)),
            ("Num SIMD units/CU", str(self.simd_per_cu)),
            ("Max WF/SIMD unit", str(self.max_wf_per_simd)),
            ("Num Compute Queues", str(self.num_compute_queues)),
            ("L1 Data Cache / CU", f"{self.l1d_size // KB} KB, {self.line_size}B line"),
            ("L1 Latency", f"{self.l1_latency} cycles"),
            ("LDS Size / CU", f"{self.lds_size // KB} KB"),
            ("LDS Latency", f"{self.lds_latency} cycles"),
            ("L2 Cache/chiplet",
             f"{self.l2_size // MB} MB, {self.line_size}B line, {self.l2_assoc}-way"),
            ("Local/Remote L2 Latency",
             f"{self.l2_local_latency}/{self.l2_remote_latency} cycles"),
            ("L2 Write Policy", "Write-back with write allocate"),
            ("L3 Size",
             f"{self.l3_size // MB} MB, {self.line_size}B line, {self.l3_assoc}-way"),
            ("L3 Latency", f"{self.l3_latency} cycles"),
            ("Main Memory", "16 GB HBM, 4H stacks, 1000 MHz"),
            ("Inter-chiplet Interconnect BW",
             f"{self.inter_chiplet_bandwidth / 1e9:.0f} GB/s"),
            ("Scheduling Policy", "Static Kernel Partitioning"),
        ]


def monolithic_equivalent(config: GPUConfig) -> GPUConfig:
    """Build the infeasible-to-manufacture monolithic GPU of Fig. 2.

    The monolithic equivalent has the same total CU count, the same
    aggregate L2 capacity, and the same aggregate L2/DRAM bandwidth, but
    as a *single* die: its L2 is the shared ordering point for all CUs,
    so kernel-boundary synchronization never invalidates or flushes it
    and there are no remote accesses.
    """
    return dataclasses.replace(
        config,
        num_chiplets=1,
        cus_per_chiplet=config.cus_per_chiplet * config.num_chiplets,
        l2_size=config.l2_size * config.num_chiplets,
        l2_bandwidth_per_chiplet=(config.l2_bandwidth_per_chiplet
                                  * config.num_chiplets),
        dram_bandwidth_per_stack=(config.dram_bandwidth_per_stack
                                  * config.num_chiplets),
    )
