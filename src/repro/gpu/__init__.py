"""MCM-GPU device model: configuration (Table I), chiplets, simulator."""

from repro.gpu.config import GPUConfig, monolithic_equivalent
from repro.gpu.chiplet import Chiplet
from repro.gpu.device import Device
from repro.gpu.sim import Simulator, SimulationResult

__all__ = [
    "GPUConfig",
    "monolithic_equivalent",
    "Chiplet",
    "Device",
    "Simulator",
    "SimulationResult",
]
