"""Chiplet Coherence Table occupancy profiling.

Sec. IV-D claims the evaluated workloads reach *up to 510 dynamic kernels
and 11 Chiplet Coherence Table entries, and never overflow the table*.
This profiler replays a workload's kernel sequence through the elision
engine alone (no cache simulation — the table only sees packets and
placements, Sec. III-A) and records the table's occupancy history, so the
claim can be checked against our workload models directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.elision import ElisionEngine
from repro.core.table import ChipletCoherenceTable
from repro.cp.wg_scheduler import WGScheduler
from repro.gpu.config import GPUConfig
from repro.workloads.base import Workload


@dataclass
class TableOccupancyProfile:
    """Occupancy history of one workload's run."""

    workload: str
    num_kernels: int
    #: Entries resident after each kernel launch.
    occupancy: List[int] = field(default_factory=list)
    peak_entries: int = 0
    capacity: int = 64
    overflow_evictions: int = 0
    #: Ops the engine issued over the whole run.
    acquires_issued: int = 0
    releases_issued: int = 0
    acquires_elided: int = 0
    releases_elided: int = 0

    @property
    def never_overflows(self) -> bool:
        """The Sec. IV-D claim for one workload."""
        return self.overflow_evictions == 0

    @property
    def elision_rate(self) -> float:
        """Fraction of baseline-equivalent sync ops elided."""
        issued = self.acquires_issued + self.releases_issued
        elided = self.acquires_elided + self.releases_elided
        total = issued + elided
        return elided / total if total else 1.0

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-serializable dump (for the engine's cache)."""
        return {
            "workload": self.workload,
            "num_kernels": int(self.num_kernels),
            "occupancy": [int(n) for n in self.occupancy],
            "peak_entries": int(self.peak_entries),
            "capacity": int(self.capacity),
            "overflow_evictions": int(self.overflow_evictions),
            "acquires_issued": int(self.acquires_issued),
            "releases_issued": int(self.releases_issued),
            "acquires_elided": int(self.acquires_elided),
            "releases_elided": int(self.releases_elided),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TableOccupancyProfile":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            workload=data["workload"],
            num_kernels=int(data["num_kernels"]),
            occupancy=[int(n) for n in data["occupancy"]],
            peak_entries=int(data["peak_entries"]),
            capacity=int(data["capacity"]),
            overflow_evictions=int(data["overflow_evictions"]),
            acquires_issued=int(data["acquires_issued"]),
            releases_issued=int(data["releases_issued"]),
            acquires_elided=int(data["acquires_elided"]),
            releases_elided=int(data["releases_elided"]),
        )


def profile_table_occupancy(workload: Workload,
                            config: GPUConfig) -> TableOccupancyProfile:
    """Replay ``workload`` through the elision engine and profile it."""
    table = ChipletCoherenceTable(
        num_chiplets=config.num_chiplets,
        structs_per_kernel=config.table_structs_per_kernel,
        kernel_window=config.table_kernel_window)
    engine = ElisionEngine(table)
    scheduler = WGScheduler(config.num_chiplets)
    profile = TableOccupancyProfile(workload=workload.name,
                                    num_kernels=workload.num_kernels,
                                    capacity=table.capacity)
    for kernel_id, kernel in enumerate(workload.kernels):
        num_logical = min(
            config.num_chiplets if kernel.chiplet_mask is None
            else len(kernel.chiplet_mask),
            kernel.num_wgs)
        packet = kernel.packet(kernel_id, max(1, num_logical))
        placement = scheduler.place(packet)
        outcome = engine.process_launch(packet, placement)
        profile.occupancy.append(len(table))
        profile.acquires_issued += outcome.acquires_issued
        profile.releases_issued += outcome.releases_issued
        profile.acquires_elided += outcome.acquires_elided
        profile.releases_elided += outcome.releases_elided
    profile.peak_entries = table.peak_entries
    profile.overflow_evictions = table.overflow_evictions
    return profile


def profile_suite(config: GPUConfig,
                  names: "List[str] | None" = None
                  ) -> Dict[str, TableOccupancyProfile]:
    """Profile every (or the given) Table II workload."""
    from repro.workloads.suite import WORKLOAD_NAMES, build_workload
    out: Dict[str, TableOccupancyProfile] = {}
    for name in (names or WORKLOAD_NAMES):
        out[name] = profile_table_occupancy(build_workload(name, config),
                                            config)
    return out
