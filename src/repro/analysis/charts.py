"""Terminal bar charts for the figure harnesses.

The paper's Figs. 8-10 are grouped bar charts; these render as
fixed-width Unicode bars so ``python -m repro.experiments figN`` can show
the figure's *shape* directly in a terminal, alongside the numeric table.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

FULL = "█"
PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` as a bar of at most ``width`` cells."""
    if value < 0:
        raise ValueError(f"bar values must be >= 0, got {value}")
    cells = value / scale * width
    whole = int(cells)
    if whole >= width:
        return FULL * width
    fraction = cells - whole
    partial = PARTIAL[int(fraction * 8)] if fraction > 0 else ""
    return (FULL * whole + partial).rstrip()


def bar_chart(values: Mapping[str, float], title: str = "",
              width: int = 40, reference: Optional[float] = None) -> str:
    """One bar per labeled value, with an optional reference line value
    (e.g. 1.0 for Baseline-normalized charts)."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    label_w = max(len(label) for label in values)
    top = max(list(values.values())
              + ([reference] if reference is not None else []))
    scale = top if top > 0 else 1.0
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = _bar(value, scale, width)
        mark = ""
        if reference is not None:
            ref_cell = int(reference / scale * width)
            if ref_cell < width and len(bar) <= ref_cell:
                bar = bar.ljust(ref_cell) + "|"
            mark = ""
        lines.append(f"{label:<{label_w}} {bar} {value:.3f}{mark}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      title: str = "", width: int = 36,
                      reference: Optional[float] = 1.0) -> str:
    """Fig. 8-style chart: one group per workload, one bar per config."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    label_w = max(len(name) for per in groups.values() for name in per)
    group_w = max(len(g) for g in groups)
    top = max(v for per in groups.values() for v in per.values())
    if reference is not None:
        top = max(top, reference)
    scale = top if top > 0 else 1.0
    lines: List[str] = [title] if title else []
    for group, per in groups.items():
        for i, (name, value) in enumerate(per.items()):
            head = group if i == 0 else ""
            lines.append(f"{head:<{group_w}}  {name:<{label_w}} "
                         f"{_bar(value, scale, width):<{width}} {value:.3f}")
    if reference is not None:
        lines.append(f"{'':<{group_w}}  {'ref':<{label_w}} "
                     f"{'·' * int(reference / scale * width)}▏ "
                     f"{reference:.3f}")
    return "\n".join(lines)
