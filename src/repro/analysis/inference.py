"""Record-and-replay annotation inference (Sec. VI, Annotation Implications).

CPElide needs software hints: each kernel's data structures, their access
modes, and optionally per-chiplet ranges (Listings 1-2). The paper argues
those hints can be automated — "recent compiler and runtime work showed
that identifying such information can potentially be automated,
especially for workloads with relatively simple access patterns
(like most GPGPU workloads)", citing kernel record-and-replay [107].

This module implements that automation for the simulator:

* **record** — observe one dynamic kernel's actual per-chiplet accesses
  (the same deterministic trace the simulator will execute) and derive
  each data structure's access mode (did any access write?) and each
  chiplet's touched byte range;
* **replay** — rebuild the workload with the *inferred* annotations
  replacing the hand-written ones, so CPElide's table sees only what the
  recorder produced.

Because the inferred ranges cover exactly the observed accesses, the
replayed annotations are always safe, and
:mod:`repro.experiments.inference` shows CPElide performs identically
with them — validating the paper's claim that most programmers never
need to annotate by hand.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cp.packets import AccessMode, ArgAccess, RangeAnnotation
from repro.cp.wg_scheduler import WGScheduler
from repro.gpu.config import GPUConfig
from repro.memory.address import LINE_SIZE
from repro.workloads.base import Kernel, Workload, lines_for_arg


@dataclass(frozen=True)
class InferenceStats:
    """How the inferred annotations compare to the hand-written ones."""

    kernels: int
    args: int
    #: Args whose inferred mode matched the hand annotation.
    mode_matches: int
    #: Total bytes the hand annotations cover beyond the inferred (exact)
    #: ranges — the programmer's conservatism the recorder removes.
    hand_overcoverage_bytes: int

    @property
    def mode_accuracy(self) -> float:
        """Fraction of args whose access mode the recorder reproduced."""
        return self.mode_matches / self.args if self.args else 1.0


def record_kernel_annotations(kernel: Kernel, kernel_id: int,
                              num_logical: int) -> Tuple[ArgAccess, ...]:
    """Record one dynamic kernel and infer its packet annotations.

    The recorder sees the kernel's actual line accesses (deterministic per
    (kernel, placement)); each argument's mode comes from whether its
    sweep writes, and each logical chiplet's range is the tight byte span
    of its observed lines.
    """
    inferred: List[ArgAccess] = []
    for arg in kernel.args:
        mode = (AccessMode.RW if arg.effective_kind.name != "LOAD"
                else AccessMode.R)
        ranges: List[RangeAnnotation] = []
        for logical in range(num_logical):
            lines = lines_for_arg(arg, logical, num_logical, kernel_id)
            if not lines:
                continue
            lo = min(lines) * LINE_SIZE
            hi = (max(lines) + 1) * LINE_SIZE
            ranges.append(RangeAnnotation(lo, hi, logical))
        if not ranges:
            # The kernel never touches the structure on any chiplet at
            # this placement; keep a minimal (safe) whole-buffer label.
            inferred.append(ArgAccess(arg.buffer, mode, ranges=None))
        else:
            inferred.append(ArgAccess(arg.buffer, mode,
                                      ranges=tuple(ranges)))
    return tuple(inferred)


def replay_with_inferred_annotations(workload: Workload,
                                     config: GPUConfig) -> Workload:
    """Rebuild ``workload`` with recorded annotations on every kernel."""
    scheduler = WGScheduler(config.num_chiplets)
    kernels: List[Kernel] = []
    for kernel_id, kernel in enumerate(workload.kernels):
        probe = kernel.packet(kernel_id, 1)
        placement = scheduler.place(probe)
        num_logical = placement.num_chiplets
        annotations = record_kernel_annotations(kernel, kernel_id,
                                                num_logical)
        kernels.append(dataclasses.replace(
            kernel, explicit_annotations=annotations))
    return Workload(name=f"{workload.name}-inferred",
                    space=workload.space, kernels=kernels,
                    reuse_class=workload.reuse_class,
                    description=f"{workload.description} (inferred hints)")


def compare_annotations(workload: Workload,
                        config: GPUConfig) -> InferenceStats:
    """Measure how close the hand annotations are to the recorded ones."""
    scheduler = WGScheduler(config.num_chiplets)
    kernels = args = mode_matches = 0
    overcoverage = 0
    for kernel_id, kernel in enumerate(workload.kernels):
        probe = kernel.packet(kernel_id, 1)
        placement = scheduler.place(probe)
        num_logical = placement.num_chiplets
        hand = kernel.packet(kernel_id, num_logical).args
        inferred = record_kernel_annotations(kernel, kernel_id, num_logical)
        kernels += 1
        for h, inf in zip(hand, inferred):
            args += 1
            if h.mode is inf.mode:
                mode_matches += 1
            for logical in range(num_logical):
                h_lo, h_hi = h.range_for_logical_chiplet(logical, num_logical)
                i_lo, i_hi = inf.range_for_logical_chiplet(logical,
                                                           num_logical)
                overcoverage += max(0, (h_hi - h_lo) - (i_hi - i_lo))
    return InferenceStats(kernels=kernels, args=args,
                          mode_matches=mode_matches,
                          hand_overcoverage_bytes=overcoverage)
