"""Analysis tooling: table-occupancy profiling, sync traces, charts."""

from repro.analysis.occupancy import TableOccupancyProfile, profile_table_occupancy
from repro.analysis.sync_trace import SyncEvent, SyncTrace, trace_sync_ops
from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.inference import (
    compare_annotations,
    record_kernel_annotations,
    replay_with_inferred_annotations,
)

__all__ = [
    "TableOccupancyProfile",
    "profile_table_occupancy",
    "SyncEvent",
    "SyncTrace",
    "trace_sync_ops",
    "bar_chart",
    "grouped_bar_chart",
    "compare_annotations",
    "record_kernel_annotations",
    "replay_with_inferred_annotations",
]
