"""Synchronization-operation tracing.

Records every acquire/release a protocol issues across a run — which
kernel boundary, which chiplet, and the elision engine's reason — by
wrapping the protocol's boundary hooks. Useful for debugging workload
annotations and for inspecting CPElide's behaviour kernel by kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.coherence.base import make_protocol
from repro.cp.local_cp import SyncOpKind
from repro.gpu.config import GPUConfig
from repro.gpu.sim import SimulationResult, Simulator
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SyncEvent:
    """One sync operation at one kernel boundary."""

    kernel_index: int
    kernel_name: str
    #: "launch" (before WG dispatch) or "complete" (implicit release).
    phase: str
    kind: SyncOpKind
    chiplet: int
    reason: str

    def __str__(self) -> str:
        verb = "flush" if self.kind is SyncOpKind.RELEASE else "invalidate"
        return (f"k{self.kernel_index:<4d} {self.kernel_name:<22s} "
                f"{self.phase:<8s} {verb:<10s} chiplet {self.chiplet} "
                f"[{self.reason}]")


@dataclass
class SyncTrace:
    """All sync events of one run plus per-boundary elision tallies."""

    workload: str
    protocol: str
    events: List[SyncEvent] = field(default_factory=list)
    boundaries: int = 0
    silent_boundaries: int = 0
    result: Optional[SimulationResult] = None

    @property
    def silent_fraction(self) -> float:
        """Fraction of kernel boundaries with zero sync operations —
        CPElide's headline behaviour on iterative workloads."""
        return (self.silent_boundaries / self.boundaries
                if self.boundaries else 0.0)

    def events_for_kernel(self, kernel_index: int) -> List[SyncEvent]:
        """Events attached to one dynamic kernel."""
        return [e for e in self.events if e.kernel_index == kernel_index]

    def render(self, limit: Optional[int] = 40) -> str:
        """Human-readable trace (truncated to ``limit`` events)."""
        shown = self.events if limit is None else self.events[:limit]
        lines = [f"sync trace: {self.workload} / {self.protocol} — "
                 f"{len(self.events)} ops over {self.boundaries} boundaries "
                 f"({self.silent_fraction:.0%} silent)"]
        lines.extend(str(event) for event in shown)
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        return "\n".join(lines)


def trace_sync_ops(workload: Workload, config: GPUConfig,
                   protocol: str = "cpelide") -> SyncTrace:
    """Run ``workload`` capturing every sync op the protocol issues."""
    trace = SyncTrace(workload=workload.name, protocol=protocol)

    def recording_factory(cfg, device):
        inner = make_protocol(protocol, cfg, device)
        launch = inner.on_kernel_launch
        complete = inner.on_kernel_complete

        def on_launch(packet, placement):
            ops = launch(packet, placement)
            trace.boundaries += 1
            if not ops:
                trace.silent_boundaries += 1
            for op in ops:
                trace.events.append(SyncEvent(
                    packet.kernel_id, packet.name, "launch", op.kind,
                    op.chiplet, op.reason))
            return ops

        def on_complete(packet, placement):
            ops = complete(packet, placement)
            if ops:
                # A boundary counted silent at launch that releases at
                # completion (the Baseline) is not silent after all.
                if not trace.events_for_kernel(packet.kernel_id):
                    trace.silent_boundaries -= 1
            for op in ops:
                trace.events.append(SyncEvent(
                    packet.kernel_id, packet.name, "complete", op.kind,
                    op.chiplet, op.reason))
            return ops

        inner.on_kernel_launch = on_launch
        inner.on_kernel_complete = on_complete
        return inner

    trace.result = Simulator(config, recording_factory).run(workload)
    return trace
