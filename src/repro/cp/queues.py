"""GPU streams and hardware compute queues.

GPUs support multiple hardware queues to manage independent work submitted
asynchronously with streams (Sec. II-B): typically each stream maps to one
queue, each queue holds kernels from that stream in order, and the CP
maintains intra-stream inter-kernel dependencies while executing different
streams concurrently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cp.packets import KernelPacket


@dataclass
class Stream:
    """A software stream: an ordered sequence of kernels.

    Attributes:
        stream_id: Dense id.
        chiplet_mask: Chiplets this stream's kernels may use (None = all);
            set via the ``hipSetDevice``-style binding of Sec. III-B.
    """

    stream_id: int
    chiplet_mask: Optional[Tuple[int, ...]] = None


class HardwareQueue:
    """One in-order hardware compute queue (holds kernels of one stream)."""

    def __init__(self, queue_id: int, stream_id: int) -> None:
        self.queue_id = queue_id
        self.stream_id = stream_id
        self._pending: Deque[KernelPacket] = deque()

    def enqueue(self, packet: KernelPacket) -> None:
        """Append a kernel packet (intra-stream order preserved)."""
        if packet.stream_id != self.stream_id:
            raise ValueError(
                f"packet from stream {packet.stream_id} enqueued on queue of "
                f"stream {self.stream_id}")
        self._pending.append(packet)

    def head(self) -> Optional[KernelPacket]:
        """Peek the oldest pending kernel."""
        return self._pending[0] if self._pending else None

    def pop(self) -> KernelPacket:
        """Remove and return the oldest pending kernel."""
        return self._pending.popleft()

    def __len__(self) -> int:
        return len(self._pending)


class QueueScheduler:
    """Maps streams onto hardware queues and selects the next kernel.

    Kernels within a queue execute in order; across queues the scheduler
    round-robins (different streams may execute concurrently, Sec. II-B).
    """

    def __init__(self, num_queues: int = 256) -> None:
        if num_queues <= 0:
            raise ValueError(f"num_queues must be positive, got {num_queues}")
        self.num_queues = num_queues
        self._queues: Dict[int, HardwareQueue] = {}
        self._rr: List[int] = []
        self._rr_pos = 0

    def queue_for_stream(self, stream_id: int) -> HardwareQueue:
        """Return (creating on demand) the hardware queue for a stream."""
        queue = self._queues.get(stream_id)
        if queue is None:
            if len(self._queues) >= self.num_queues:
                raise RuntimeError(
                    f"out of hardware queues ({self.num_queues} in use)")
            queue = HardwareQueue(queue_id=len(self._queues), stream_id=stream_id)
            self._queues[stream_id] = queue
            self._rr.append(stream_id)
        return queue

    def submit(self, packet: KernelPacket) -> None:
        """Enqueue a packet on its stream's queue."""
        self.queue_for_stream(packet.stream_id).enqueue(packet)

    def next_kernel(self) -> Optional[KernelPacket]:
        """Pop the next ready kernel, round-robining across queues."""
        if not self._rr:
            return None
        for _ in range(len(self._rr)):
            stream_id = self._rr[self._rr_pos]
            self._rr_pos = (self._rr_pos + 1) % len(self._rr)
            queue = self._queues[stream_id]
            if len(queue):
                return queue.pop()
        return None

    @property
    def pending(self) -> int:
        """Total kernels waiting across all queues."""
        return sum(len(q) for q in self._queues.values())
