"""The proposed global command processor (Fig. 4b).

The global CP acts as the interface with the host, dispatches work across
chiplets, and — in CPElide — houses the Chiplet Coherence Table and issues
the per-chiplet acquires and releases (Sec. III-B). The launch protocol
(Sec. III-C) is:

1. a kernel reaches the head of a hardware queue in the packet processor;
2. before dispatching WGs, the global CP inspects the kernel's data
   structures against the coherence protocol (one table check per kernel);
3. any required acquire/release operations are sent over the crossbar to
   the local CPs, which apply them to their L1/L2 caches;
4. the global CP counts ACKs; only once all are received does it send the
   "launch enable" message, so these messages are on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.cp.packets import KernelPacket
from repro.cp.queues import QueueScheduler
from repro.cp.wg_scheduler import Placement, WGScheduler
from repro.cp.local_cp import SyncAck, SyncOp

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.coherence.base import CoherenceProtocol
    from repro.gpu.config import GPUConfig
    from repro.gpu.device import Device


@dataclass
class LaunchDecision:
    """Everything that happened at one kernel launch boundary.

    Attributes:
        packet: The launched kernel.
        placement: Chiplet placement chosen by the WG scheduler.
        launch_ops: Sync ops the protocol issued before launch.
        launch_acks: Their ACKs (line volumes moved).
        cp_overhead_cycles: GPU cycles of CP-side critical path: dispatch
            latency, protocol table operations, crossbar traversals, and
            ACK gathering. Excludes cache flush/invalidate service time,
            which the timing model computes from the ACK line volumes.
    """

    packet: KernelPacket
    placement: Placement
    launch_ops: List[SyncOp] = field(default_factory=list)
    launch_acks: List[SyncAck] = field(default_factory=list)
    cp_overhead_cycles: float = 0.0

    @property
    def lines_flushed(self) -> int:
        """Dirty lines written back by launch-time releases."""
        return sum(a.lines_flushed for a in self.launch_acks)

    @property
    def lines_invalidated(self) -> int:
        """Lines dropped by launch-time acquires."""
        return sum(a.lines_invalidated for a in self.launch_acks)


@dataclass
class CompletionRecord:
    """Sync activity at a kernel's completion (Baseline's implicit release)."""

    packet: KernelPacket
    ops: List[SyncOp] = field(default_factory=list)
    acks: List[SyncAck] = field(default_factory=list)

    @property
    def lines_flushed(self) -> int:
        """Dirty lines written back by completion-time releases."""
        return sum(a.lines_flushed for a in self.acks)

    @property
    def lines_invalidated(self) -> int:
        """Lines dropped by completion-time acquires."""
        return sum(a.lines_invalidated for a in self.acks)


class GlobalCP:
    """Global CP: packet processor, queue scheduler, WG dispatch, sync."""

    def __init__(self, config: "GPUConfig", device: "Device",
                 protocol: "CoherenceProtocol",
                 wg_scheduler: Optional[WGScheduler] = None) -> None:
        self.config = config
        self.device = device
        self.protocol = protocol
        self.queue_scheduler = QueueScheduler(config.num_compute_queues)
        self.wg_scheduler = wg_scheduler or WGScheduler(config.num_chiplets)
        self.kernels_launched = 0

    # ------------------------------------------------------------------

    def submit(self, packet: KernelPacket) -> None:
        """Accept a packet from the runtime into the packet processor."""
        self.queue_scheduler.submit(packet)

    def launch_next(self) -> Optional[LaunchDecision]:
        """Launch the next ready kernel, performing pre-launch sync."""
        packet = self.queue_scheduler.next_kernel()
        if packet is None:
            return None
        placement = self.wg_scheduler.place(packet)
        tracer = self.device.tracer
        if tracer.enabled:
            # Before the protocol hook, so the launch's table activity
            # and sync ops nest inside this kernel's trace scope.
            tracer.kernel_launch(name=packet.name, index=packet.kernel_id,
                                 stream=packet.stream_id,
                                 chiplets=placement.chiplets)
        ops = self.protocol.on_kernel_launch(packet, placement)
        acks = self._execute_ops(ops, boundary="launch")
        overhead = self._cp_overhead_cycles(packet, ops)
        self.kernels_launched += 1
        return LaunchDecision(packet=packet, placement=placement,
                              launch_ops=ops, launch_acks=acks,
                              cp_overhead_cycles=overhead)

    def complete(self, packet: KernelPacket,
                 placement: Placement) -> CompletionRecord:
        """Run the protocol's kernel-completion hook (implicit release)."""
        ops = self.protocol.on_kernel_complete(packet, placement)
        acks = self._execute_ops(ops, boundary="completion")
        return CompletionRecord(packet=packet, ops=ops, acks=acks)

    # ------------------------------------------------------------------

    def _execute_ops(self, ops: List[SyncOp],
                     boundary: str = "launch") -> List[SyncAck]:
        """Send sync ops to the local CPs and gather their ACKs."""
        acks: List[SyncAck] = []
        for op in ops:
            acks.append(self.device.local_cps[op.chiplet].execute(
                op, boundary=boundary))
        return acks

    def _cp_overhead_cycles(self, packet: KernelPacket,
                            ops: List[SyncOp]) -> float:
        """CP-side critical-path cycles for this launch.

        All configurations pay the CP dispatch latency (2 us, Sec. IV-B),
        but GPUs enqueue kernels ahead of execution so dispatch is
        pipelined behind the previous kernel for all but the first kernel.
        CPElide additionally pays its table-operation time (6 us measured,
        Sec. IV-B, likewise hidden after the first kernel) and the
        crossbar round trips for sync ops and ACKs, which are on the
        critical path whenever ops are issued.
        """
        cp_to_gpu = self.config.gpu_clock_hz / self.config.cp_clock_hz
        dispatch = (self.config.cp_dispatch_cycles
                    if self.kernels_launched == 0 else 0.0)
        # Dispatch and the protocol's table operation proceed in parallel
        # on the CP (the packet processor and the table engine are
        # independent units), so the first launch pays the longer of the
        # two, not their sum.
        cycles = max(dispatch, self.protocol.launch_overhead_cycles(packet))
        if ops:
            targets = {op.chiplet for op in ops}
            if len(targets) >= self.config.num_chiplets:
                xbar = self.device.cp_xbar.broadcast()
            else:
                xbar = self.device.cp_xbar.unicast(len(targets))
            xbar += self.device.cp_xbar.gather_acks(sorted(targets))
            # Launch-enable message back to the local CPs.
            xbar += self.device.cp_xbar.broadcast()
            cycles += xbar * cp_to_gpu * self.config.effective_overhead_scale
        return cycles
