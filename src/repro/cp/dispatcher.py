"""Local CP work-group dispatch and CU occupancy (Sec. II-B, Table I).

Each chiplet's local CP round-robins its WG group onto the chiplet's CUs.
How many WGs fit concurrently on a CU — the *occupancy* — is bounded by
Table I's resources: 4 SIMD units x 10 wavefronts per SIMD, a 256 KB
vector register file and 12.5 KB scalar register file per CU, and 64 KB
of LDS per CU. Occupancy determines both the effective compute
parallelism and the memory-level parallelism available to hide latency
(fewer resident wavefronts = fewer outstanding loads).

Kernels that declare no resource usage get full occupancy, so the model
is neutral unless a workload opts in (e.g. register- or LDS-hungry
kernels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.gpu.config import GPUConfig

#: SIMD lane width (wavefront size).
WAVEFRONT_LANES = 64


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource declaration (the queue-entry fields the WG
    scheduler reads: thread dimensions, register usage, scratchpad size —
    Sec. II-B).

    Attributes:
        vgprs_per_thread: Vector registers per thread (lane).
        sgprs_per_wavefront: Scalar registers per wavefront.
        lds_bytes_per_wg: LDS (scratchpad) allocated per work-group.
        wavefronts_per_wg: Wavefronts in one work-group.
    """

    vgprs_per_thread: int = 24
    sgprs_per_wavefront: int = 32
    lds_bytes_per_wg: int = 0
    wavefronts_per_wg: int = 4

    def __post_init__(self) -> None:
        if self.vgprs_per_thread <= 0 or self.sgprs_per_wavefront <= 0:
            raise ValueError("register usage must be positive")
        if self.wavefronts_per_wg <= 0:
            raise ValueError("wavefronts_per_wg must be positive")
        if self.lds_bytes_per_wg < 0:
            raise ValueError("lds_bytes_per_wg must be >= 0")


#: Neutral default: fits the full 40-wavefront occupancy of Table I.
DEFAULT_RESOURCES = KernelResources()


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy analysis of one kernel on one CU."""

    max_wavefronts: int         # hardware bound (SIMD x WF/SIMD)
    vgpr_limited: int
    sgpr_limited: int
    lds_limited: int
    wg_granular: int            # after rounding down to whole WGs

    @property
    def wavefronts(self) -> int:
        """Resident wavefronts per CU."""
        return self.wg_granular

    @property
    def fraction(self) -> float:
        """Occupancy as a fraction of the hardware maximum."""
        return self.wavefronts / self.max_wavefronts if self.max_wavefronts else 0.0


class LocalDispatcher:
    """One chiplet's WG-to-CU dispatcher."""

    def __init__(self, config: "GPUConfig") -> None:
        self.config = config
        self.max_wf_per_cu = config.simd_per_cu * config.max_wf_per_simd
        # Table I: 256 KB vector / 12.5 KB scalar register file per CU.
        self.vgpr_file_bytes = 256 * 1024
        self.sgpr_file_bytes = int(12.5 * 1024)

    def occupancy(self, resources: KernelResources) -> OccupancyReport:
        """Resident wavefronts per CU for a kernel's resource usage."""
        vgpr_bytes_per_wf = (resources.vgprs_per_thread * WAVEFRONT_LANES * 4)
        vgpr_limited = self.vgpr_file_bytes // vgpr_bytes_per_wf
        sgpr_limited = self.sgpr_file_bytes // (resources.sgprs_per_wavefront * 4)
        if resources.lds_bytes_per_wg > 0:
            wgs_by_lds = self.config.lds_size // resources.lds_bytes_per_wg
            lds_limited = wgs_by_lds * resources.wavefronts_per_wg
        else:
            lds_limited = self.max_wf_per_cu
        raw = min(self.max_wf_per_cu, vgpr_limited, sgpr_limited, lds_limited)
        # WGs are indivisible: round down to whole work-groups, but a CU
        # always runs at least one WG (it may monopolize the CU).
        whole_wgs = max(1, raw // resources.wavefronts_per_wg)
        wg_granular = min(raw if raw > 0 else resources.wavefronts_per_wg,
                          whole_wgs * resources.wavefronts_per_wg)
        return OccupancyReport(
            max_wavefronts=self.max_wf_per_cu,
            vgpr_limited=vgpr_limited,
            sgpr_limited=sgpr_limited,
            lds_limited=lds_limited,
            wg_granular=max(resources.wavefronts_per_wg, wg_granular)
            if raw <= 0 else wg_granular,
        )

    def dispatch_rounds(self, num_wgs: int,
                        resources: KernelResources) -> int:
        """Round-robin dispatch waves needed to retire ``num_wgs`` WGs."""
        if num_wgs <= 0:
            raise ValueError(f"num_wgs must be positive, got {num_wgs}")
        report = self.occupancy(resources)
        wgs_per_cu = max(1, report.wavefronts // resources.wavefronts_per_wg)
        concurrent = wgs_per_cu * self.config.cus_per_chiplet
        return math.ceil(num_wgs / concurrent)
