"""Per-chiplet local command processors.

Modern chiplet GPUs already have per-chiplet CPs handling local scheduling
(Sec. II-B). The paper's redesign (Fig. 4b) keeps local scheduling there
and additionally has the local CPs (a) execute the acquire/release
requests the global CP sends across the crossbar and (b) acknowledge their
completion so the global CP's ACK counter can release the next kernel's
WGs (Sec. III-C, Fig. 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpu.device import Device


class SyncOpKind(enum.Enum):
    """Synchronization operations a local CP can execute on its L2."""

    #: Implicit acquire: invalidate the chiplet's L2 (whole cache; the
    #: global CP cannot issue physical range operations, Sec. VI).
    ACQUIRE = "acquire"
    #: Implicit release: write back all dirty L2 data, retaining clean
    #: copies (Sec. III-B, Lazy Acquire/Release).
    RELEASE = "release"


@dataclass(frozen=True)
class SyncOp:
    """One acquire or release targeted at one chiplet.

    Attributes:
        kind: Acquire (invalidate) or release (flush).
        chiplet: Target chiplet id.
        reason: Human-readable provenance for diagnostics (e.g. which
            buffer transition generated the op).
        ranges: Optional byte ranges to restrict the operation to. Plain
            CPElide always operates on the whole cache (Sec. VI: software
            hints are virtual but L2s are physical); the fine-grained
            hardware range-based flush extension populates this field.
    """

    kind: SyncOpKind
    chiplet: int
    reason: str = ""
    ranges: "Optional[Tuple[Tuple[int, int], ...]]" = None


@dataclass(frozen=True)
class SyncAck:
    """Acknowledgment a local CP returns after executing a sync op.

    Attributes:
        op: The executed operation.
        lines_flushed: Dirty lines written back (releases).
        lines_invalidated: Lines dropped (acquires).
    """

    op: SyncOp
    lines_flushed: int = 0
    lines_invalidated: int = 0


class LocalCP:
    """The local CP of one chiplet.

    Executes sync ops against the chiplet's L2 through the device (which
    owns the caches and accounts traffic), and models the local dispatch
    path: the local CP will not launch WGs from the next kernel until the
    global CP's "launch enable" message arrives (Sec. III-C).
    """

    def __init__(self, chiplet_id: int, device: "Device") -> None:
        self.chiplet_id = chiplet_id
        self.device = device
        self.ops_executed = 0

    def execute(self, op: SyncOp, boundary: str = "launch") -> SyncAck:
        """Execute ``op`` on this chiplet's L2 and return the ACK.

        ``boundary`` labels the kernel boundary the op belongs to
        (``launch``, ``completion``, or ``run-end``) for the trace; it
        has no effect on the operation itself.
        """
        if op.chiplet != self.chiplet_id:
            raise ValueError(
                f"op for chiplet {op.chiplet} routed to local CP {self.chiplet_id}")
        self.ops_executed += 1
        if op.kind is SyncOpKind.RELEASE:
            if op.ranges is not None:
                flushed = self.device.flush_l2_ranges(self.chiplet_id, op.ranges)
            else:
                flushed = self.device.flush_l2(self.chiplet_id)
            ack = SyncAck(op=op, lines_flushed=flushed)
        elif op.ranges is not None:
            invalidated = self.device.invalidate_l2_ranges(self.chiplet_id,
                                                           op.ranges)
            ack = SyncAck(op=op, lines_invalidated=invalidated)
        else:
            invalidated = self.device.invalidate_l2(self.chiplet_id)
            ack = SyncAck(op=op, lines_invalidated=invalidated)
        tracer = self.device.tracer
        if tracer.enabled:
            tracer.sync_op(kind=op.kind.value, chiplet=op.chiplet,
                           reason=op.reason,
                           lines_flushed=ack.lines_flushed,
                           lines_invalidated=ack.lines_invalidated,
                           boundary=boundary)
        return ack
