"""Locality-aware WG scheduling (complementary to CPElide).

Sec. VII: intelligent schedulers like LADM [64] "could be used in
conjunction with CPElide, which has detailed information about where data
is being accessed and tight coupling with the WG scheduler". This module
implements the simplest such scheduler: kernels that use *fewer chiplets
than the device has* (reductions, small grids, stream-restricted work)
are steered toward the chiplets whose L2s already hold their data,
instead of always filling chiplets 0..k-1.

Full-width kernels are untouched — static kernel-wide partitioning over
all chiplets is already placement-optimal under first-touch homes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cp.packets import KernelPacket
from repro.cp.wg_scheduler import Placement, WGScheduler


class LocalityAwareWGScheduler(WGScheduler):
    """Static partitioning with producer-affinity for narrow kernels.

    Keeps a per-buffer history of which chiplets last touched each data
    structure (most-recent placement order). When a kernel cannot use
    every chiplet, candidates are ranked by how much of the kernel's data
    they recently touched.
    """

    def __init__(self, num_chiplets: int) -> None:
        super().__init__(num_chiplets)
        #: buffer base address -> chiplets that last touched it.
        self._affinity: Dict[int, Tuple[int, ...]] = {}

    def place(self, packet: KernelPacket) -> Placement:
        """Place the kernel, steering narrow kernels to hot chiplets."""
        placement = super().place(packet)
        if (placement.num_chiplets < self.num_chiplets
                and packet.chiplet_mask is None):
            preferred = self._ranked_candidates(packet)
            if preferred:
                # Pad with the remaining chiplets so narrow-but-multi
                # kernels still get enough targets.
                pool = preferred + [c for c in range(self.num_chiplets)
                                    if c not in preferred]
                chosen = pool[:placement.num_chiplets]
                placement = Placement(
                    chiplets=tuple(chosen),
                    wg_counts=placement.wg_counts)
        self._record(packet, placement)
        return placement

    # ------------------------------------------------------------------

    def _ranked_candidates(self, packet: KernelPacket) -> List[int]:
        """Chiplets ranked by affinity to the kernel's data structures."""
        scores = [0] * self.num_chiplets
        seen = False
        for arg in packet.args:
            holders = self._affinity.get(arg.buffer.base)
            if holders is None:
                continue
            seen = True
            for chiplet in holders:
                # Every recent holder gets one affinity credit per data
                # structure it holds.
                scores[chiplet] += 1
        if not seen:
            return []
        order = sorted(range(self.num_chiplets),
                       key=lambda c: (-scores[c], c))
        return [c for c in order if scores[c] > 0] or order

    def _record(self, packet: KernelPacket, placement: Placement) -> None:
        for arg in packet.args:
            self._affinity[arg.buffer.base] = placement.chiplets

    # ------------------------------------------------------------------
    # Memoization support: the affinity history is behavioral state (it
    # steers future placements) but is read only through `.get`, so its
    # dict order is irrelevant — a sorted digest and a plain dict copy
    # capture it exactly.

    def memo_digest(self) -> bytes:
        import hashlib

        return hashlib.blake2b(
            repr(sorted(self._affinity.items())).encode(),
            digest_size=16).digest()

    def memo_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        return dict(self._affinity)

    def memo_restore(self, snapshot: Dict[int, Tuple[int, ...]]) -> None:
        self._affinity = dict(snapshot)
