"""Kernel packets and data-structure access metadata.

The GPU driver/runtime enqueues each kernel as a packet holding thread
dimensions and pointers to kernel arguments (Sec. II-B). CPElide extends
the packet with per-argument access modes (Listing 1,
``hipSetAccessMode``) and optionally per-chiplet address ranges
(Listing 2, ``hipSetAccessModeRange``); the global CP's packet processor
reads this metadata to drive the Chiplet Coherence Table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.memory.address import Buffer


class AccessMode(enum.Enum):
    """Data-structure access mode labels (Sec. III-B).

    Monolithic GPUs generally only need ``R`` and ``RW`` labels; chiplet
    GPUs additionally need to know *where* accesses are scheduled, which
    the WG scheduler supplies at dispatch time.
    """

    R = "R"
    RW = "R/W"

    @property
    def writes(self) -> bool:
        """Whether this mode can modify the data structure."""
        return self is AccessMode.RW


@dataclass(frozen=True)
class RangeAnnotation:
    """A ``(start, end, logical_chiplet)`` range from Listing 2.

    ``logical_chiplet`` indexes into the set of chiplets the kernel is
    scheduled on (the programmer knows how many chiplets the kernel will
    use, not which physical ones — Listing 2's caption).
    """

    start: int
    end: int
    logical_chiplet: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"range end ({self.end:#x}) must exceed start ({self.start:#x})")
        if self.logical_chiplet < 0:
            raise ValueError(
                f"logical_chiplet must be >= 0, got {self.logical_chiplet}")


@dataclass(frozen=True)
class ArgAccess:
    """One kernel argument's access annotation.

    Attributes:
        buffer: The data structure the argument points to.
        mode: ``R`` or ``R/W`` (from ``hipSetAccessMode``).
        ranges: Optional finer-grained per-logical-chiplet byte ranges
            (from ``hipSetAccessModeRange``). ``None`` means the whole
            buffer may be touched by every scheduled chiplet.
    """

    buffer: Buffer
    mode: AccessMode
    ranges: Optional[Tuple[RangeAnnotation, ...]] = None

    def range_for_logical_chiplet(self, logical: int,
                                  num_logical: int) -> Tuple[int, int]:
        """Byte range logical chiplet ``logical`` touches.

        Falls back to an even contiguous split when no explicit range
        annotation was provided (matching static kernel-wide WG
        partitioning over a linearly-indexed buffer).
        """
        if self.ranges is not None:
            lo = None
            hi = None
            for r in self.ranges:
                if r.logical_chiplet == logical:
                    lo = r.start if lo is None else min(lo, r.start)
                    hi = r.end if hi is None else max(hi, r.end)
            if lo is None or hi is None:
                # This chiplet does not touch the buffer at all.
                return (self.buffer.base, self.buffer.base)
            return (lo, hi)
        return self.buffer.byte_range_of_slice(logical, num_logical)


@dataclass(frozen=True)
class KernelPacket:
    """An AQL-like packet describing one kernel dispatch (Sec. II-B).

    Attributes:
        kernel_id: Dense dynamic-kernel index within the run.
        name: Kernel name (for reports).
        stream_id: GPU stream the kernel was enqueued on.
        num_wgs: Work-group count (drives partitioning granularity).
        args: Access annotations for every global-memory data structure
            the kernel touches.
        chiplet_mask: Optional restriction of which chiplets may run the
            kernel (multi-stream workloads bind streams to chiplet
            subsets via ``hipSetDevice``, Sec. III-B).
    """

    kernel_id: int
    name: str
    stream_id: int
    num_wgs: int
    args: Tuple[ArgAccess, ...]
    chiplet_mask: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.num_wgs <= 0:
            raise ValueError(f"kernel {self.name!r}: num_wgs must be positive")

    def written_buffers(self) -> Sequence[Buffer]:
        """Buffers this kernel may modify."""
        return [a.buffer for a in self.args if a.mode.writes]

    def read_only_buffers(self) -> Sequence[Buffer]:
        """Buffers this kernel only reads."""
        return [a.buffer for a in self.args if not a.mode.writes]
