"""GPU driver / runtime front end (Sec. II-B).

Once a user has written their GPU program, the underlying driver and
runtime create software queues and enqueue the program's kernels — along
with memory management and inter-kernel synchronization — as packets; the
CP's packet processor then maps each packet onto a hardware compute queue.
This module models that software side: per-stream software queues of
AQL-style packets, doorbell submission into the global CP, and the
dense dynamic-kernel numbering the rest of the system keys on.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.cp.packets import KernelPacket
from repro.workloads.base import Kernel

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.cp.global_cp import GlobalCP
    from repro.gpu.config import GPUConfig


class PacketKind(enum.Enum):
    """Software-queue packet types (AQL-like)."""

    KERNEL_DISPATCH = "kernel_dispatch"
    BARRIER = "barrier"


@dataclass(frozen=True)
class SoftwarePacket:
    """One entry in a driver software queue."""

    kind: PacketKind
    kernel: Optional[KernelPacket] = None

    def __post_init__(self) -> None:
        if self.kind is PacketKind.KERNEL_DISPATCH and self.kernel is None:
            raise ValueError("a dispatch packet needs a kernel")


class SoftwareQueue:
    """A driver-side queue for one stream (ring buffer + doorbell)."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._ring: Deque[SoftwarePacket] = deque()
        self.doorbell_rings = 0

    def push(self, packet: SoftwarePacket) -> None:
        """Write one packet into the ring."""
        self._ring.append(packet)

    def ring_doorbell(self) -> List[SoftwarePacket]:
        """Signal the CP: hand over everything written so far."""
        self.doorbell_rings += 1
        drained = list(self._ring)
        self._ring.clear()
        return drained

    def __len__(self) -> int:
        return len(self._ring)


class GPUDriver:
    """The software stack between an application and the global CP.

    Responsibilities modeled:

    * dense dynamic-kernel numbering (``kernel_id``),
    * building each dispatch packet with its Sec. III-B access-mode /
      range metadata (from the :class:`~repro.workloads.base.KernelArg`
      annotations),
    * per-stream software queues with doorbell submission to the CP.
    """

    def __init__(self, config: "GPUConfig") -> None:
        self.config = config
        self._queues: Dict[int, SoftwareQueue] = {}
        self._next_kernel_id = 0
        self.kernels_enqueued = 0

    def queue_for_stream(self, stream_id: int) -> SoftwareQueue:
        """Return (creating on demand) the stream's software queue."""
        queue = self._queues.get(stream_id)
        if queue is None:
            queue = SoftwareQueue(stream_id)
            self._queues[stream_id] = queue
        return queue

    def enqueue_kernel(self, kernel: Kernel) -> KernelPacket:
        """Build the kernel's packet and enqueue it on its stream."""
        num_logical = self._expected_logical(kernel)
        packet = kernel.packet(self._next_kernel_id, num_logical)
        self._next_kernel_id += 1
        self.kernels_enqueued += 1
        self.queue_for_stream(kernel.stream_id).push(
            SoftwarePacket(PacketKind.KERNEL_DISPATCH, kernel=packet))
        return packet

    def submit(self, global_cp: "GlobalCP") -> int:
        """Ring every doorbell, handing pending packets to the CP.

        Returns the number of kernel dispatches submitted.
        """
        submitted = 0
        for queue in self._queues.values():
            for packet in queue.ring_doorbell():
                if packet.kind is PacketKind.KERNEL_DISPATCH:
                    global_cp.submit(packet.kernel)
                    submitted += 1
        return submitted

    def _expected_logical(self, kernel: Kernel) -> int:
        """Chiplets the WG scheduler will use (for range annotations)."""
        if kernel.chiplet_mask is not None:
            candidates = len([c for c in kernel.chiplet_mask
                              if c < self.config.num_chiplets])
        else:
            candidates = self.config.num_chiplets
        return max(1, min(candidates, kernel.num_wgs))
