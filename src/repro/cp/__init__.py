"""Command processor (CP) substrate.

The CP is the programmable embedded microprocessor that interfaces between
the software stack and the GPU hardware (Sec. II-B). This package models
the pieces the paper describes and modifies:

* kernel packets with data-structure metadata (:mod:`repro.cp.packets`),
* software streams mapped onto hardware compute queues
  (:mod:`repro.cp.queues`),
* the queue scheduler and the WG scheduler with static kernel-wide
  partitioning (:mod:`repro.cp.wg_scheduler`),
* per-chiplet local CPs (:mod:`repro.cp.local_cp`) and the proposed
  global CP (:mod:`repro.cp.global_cp`) that hosts CPElide.
"""

from repro.cp.packets import AccessMode, ArgAccess, KernelPacket, RangeAnnotation
from repro.cp.queues import HardwareQueue, QueueScheduler, Stream
from repro.cp.wg_scheduler import Placement, WGScheduler
from repro.cp.local_cp import LocalCP, SyncAck, SyncOp, SyncOpKind
from repro.cp.global_cp import GlobalCP, LaunchDecision

__all__ = [
    "AccessMode",
    "ArgAccess",
    "KernelPacket",
    "RangeAnnotation",
    "HardwareQueue",
    "QueueScheduler",
    "Stream",
    "Placement",
    "WGScheduler",
    "LocalCP",
    "SyncAck",
    "SyncOp",
    "SyncOpKind",
    "GlobalCP",
    "LaunchDecision",
]
