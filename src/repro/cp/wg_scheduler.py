"""Work-group scheduler: static kernel-wide partitioning.

Sec. IV-C1: a kernel's WGs are divided into contiguous groups, one group
per chiplet; each chiplet's local CP then round-robins its group onto the
chiplet's CUs. The placement — which chiplets a kernel runs on and what
fraction of its WGs each receives — is exactly the scheduling information
CPElide's global CP combines with the packet's access annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cp.packets import KernelPacket


@dataclass(frozen=True)
class Placement:
    """Where a kernel's WGs were scheduled.

    Attributes:
        chiplets: Physical chiplet ids the kernel runs on, in logical
            order (logical chiplet *i* of the range annotations maps to
            ``chiplets[i]``).
        wg_counts: WGs assigned to each chiplet (parallel to ``chiplets``).
    """

    chiplets: Tuple[int, ...]
    wg_counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.chiplets) != len(self.wg_counts):
            raise ValueError("chiplets and wg_counts must have equal length")
        if not self.chiplets:
            raise ValueError("a placement must use at least one chiplet")

    @property
    def num_chiplets(self) -> int:
        """How many chiplets the kernel uses."""
        return len(self.chiplets)

    @property
    def total_wgs(self) -> int:
        """Total WGs placed."""
        return sum(self.wg_counts)

    def share_of(self, chiplet: int) -> float:
        """Fraction of the kernel's WGs running on ``chiplet``."""
        total = self.total_wgs
        for c, n in zip(self.chiplets, self.wg_counts):
            if c == chiplet:
                return n / total
        return 0.0

    def logical_of(self, chiplet: int) -> Optional[int]:
        """Logical index of physical ``chiplet`` within this placement."""
        for logical, c in enumerate(self.chiplets):
            if c == chiplet:
                return logical
        return None


class WGScheduler:
    """Static kernel-wide WG partitioning across chiplets (Sec. IV-C1)."""

    def __init__(self, num_chiplets: int) -> None:
        if num_chiplets <= 0:
            raise ValueError(f"num_chiplets must be positive, got {num_chiplets}")
        self.num_chiplets = num_chiplets

    def place(self, packet: KernelPacket) -> Placement:
        """Partition a kernel's WGs into contiguous per-chiplet groups.

        Kernels with fewer WGs than chiplets occupy only the first
        ``num_wgs`` chiplets; stream-restricted kernels use only their
        stream's chiplet mask.
        """
        candidates: Sequence[int]
        if packet.chiplet_mask is not None:
            candidates = [c for c in packet.chiplet_mask if c < self.num_chiplets]
            if not candidates:
                raise ValueError(
                    f"kernel {packet.name!r}: chiplet mask {packet.chiplet_mask} "
                    f"selects no chiplet below {self.num_chiplets}")
        else:
            candidates = list(range(self.num_chiplets))
        used = min(len(candidates), packet.num_wgs)
        chiplets = tuple(candidates[:used])
        counts: List[int] = []
        for i in range(used):
            lo = (packet.num_wgs * i) // used
            hi = (packet.num_wgs * (i + 1)) // used
            counts.append(hi - lo)
        return Placement(chiplets=chiplets, wg_counts=tuple(counts))
