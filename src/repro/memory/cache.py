"""Set-associative cache model with LRU replacement.

Used for the per-chiplet L2 caches and the banked shared L3 (Table I).
The model operates on *global line indices* (``byte_addr // LINE_SIZE``)
rather than byte addresses, because every structure in the simulator works
at line granularity.

Supported behaviours needed by the three evaluated protocols:

* write-back with write-allocate (Baseline/CPElide L2s, Table I),
* write-through (HMG L2 variant, Sec. IV-C),
* bulk invalidate (implicit acquire) and bulk flush (implicit release),
  where a flush *retains a clean copy* of each written-back line
  (Sec. III-B, "Lazy Acquire/Release": "when a fully dirty line is written
  back, the cache retains a clean copy of the line"),
* per-line invalidation (HMG directory-eviction invalidations).
"""

from __future__ import annotations

import enum
import hashlib
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class WritePolicy(enum.Enum):
    """L2 write policy (Table I / Sec. IV-C)."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


@dataclass
class CacheStats:
    """Per-cache event counters."""

    hits: int = 0
    misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    lines_flushed: int = 0
    lines_invalidated: int = 0
    flush_ops: int = 0
    invalidate_ops: int = 0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into ``self``."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def counter_tuple(self) -> Tuple[int, ...]:
        """The counters as a flat tuple, in field order.

        The memoization layer records a kernel's contribution as the
        difference of two of these tuples and replays it with
        :meth:`apply_delta`.
        """
        return tuple(getattr(self, name) for name in self.__dataclass_fields__)

    def delta_since(self, before: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-field difference between the current counters and a
        :meth:`counter_tuple` taken earlier."""
        return tuple(now - then
                     for now, then in zip(self.counter_tuple(), before))

    def apply_delta(self, delta: Tuple[int, ...]) -> None:
        """Add a :meth:`delta_since` tuple onto the counters."""
        for name, diff in zip(self.__dataclass_fields__, delta):
            if diff:
                setattr(self, name, getattr(self, name) + diff)


@dataclass(frozen=True)
class Eviction:
    """A line evicted by an insertion: ``(line, was_dirty)``."""

    line: int
    dirty: bool


@dataclass
class RunResult:
    """Outcome of one :meth:`SetAssocCache.access_run` bulk access.

    ``hits``/``misses`` count *first* accesses only (the read of a
    read-modify-write run always hits on its own write and is folded
    into the stats, not reported here), matching what a per-line caller
    would observe from each line's first ``access()``.

    ``events`` lists one ``(line, victim_line, victim_dirty)`` triple per
    missing line, ascending by line — exactly the order a per-line sweep
    would produce the misses in, with each miss's capacity victim (or
    ``None``) attached. It is ``None`` when ``uniform_miss`` is set:
    every line missed and no eviction occurred, so the miss stream is
    simply the run itself and the caller may recurse with another bulk
    operation instead of replaying events.
    """

    hits: int
    misses: int
    events: Optional[List[Tuple[int, Optional[int], bool]]]
    uniform_miss: bool = False

    @property
    def all_hit(self) -> bool:
        """Whether every first access hit."""
        return self.misses == 0


@dataclass
class BulkResult:
    """Outcome of one unified ``bulk_*`` cache operation.

    Every bulk operation (:meth:`SetAssocCache.bulk_access`,
    :meth:`~SetAssocCache.bulk_fill`, :meth:`~SetAssocCache.bulk_serve`,
    :meth:`~SetAssocCache.bulk_flush`,
    :meth:`~SetAssocCache.bulk_invalidate`) returns this one shape; the
    fields an operation does not produce keep their zero/empty defaults.

    Attributes:
        hits: First-access hits (``bulk_access``/``bulk_serve``).
        misses: First-access misses.
        lines: The operation's ordered primary line payload — missed
            lines for ``bulk_serve``, written-back lines for
            ``bulk_flush``, dirty dropped lines for ``bulk_invalidate``.
        evictions: Capacity evictions in occurrence order
            (``bulk_fill``), or the *dirty* victims of the demand
            accesses (``bulk_serve``).
        fill_evictions: Dirty victims of the victim-writeback fills a
            ``bulk_serve`` performed (attributed differently from
            :attr:`evictions` by the device).
        writebacks: Lines written back by the operation.
        dropped: Lines dropped by a ``bulk_invalidate``.
        events: Ordered ``(line, victim_line, victim_dirty)`` miss
            stream of a ``bulk_access`` (``None`` when
            :attr:`uniform_miss` is set — the stream is the run itself).
        uniform_miss: Every line missed with no eviction; the caller may
            recurse with another bulk operation instead of replaying
            events.
    """

    hits: int = 0
    misses: int = 0
    lines: List[int] = field(default_factory=list)
    evictions: List[Eviction] = field(default_factory=list)
    fill_evictions: List[Eviction] = field(default_factory=list)
    writebacks: int = 0
    dropped: int = 0
    events: Optional[List[Tuple[int, Optional[int], bool]]] = None
    uniform_miss: bool = False

    @property
    def all_hit(self) -> bool:
        """Whether every first access hit."""
        return self.misses == 0


def _warn_legacy_bulk(old: str, new: str) -> None:
    """One :class:`DeprecationWarning` per legacy bulk-op call site."""
    warnings.warn(
        f"SetAssocCache.{old}() is deprecated; use the keyword-only "
        f"{new}() returning a BulkResult instead",
        DeprecationWarning, stacklevel=3)


class SetAssocCache:
    """An LRU set-associative cache of line indices.

    Args:
        size_bytes: Total capacity in bytes.
        assoc: Associativity (ways per set).
        line_size: Line size in bytes (default 64, Table I).
        policy: Write policy for stores.
        name: Identifier used in diagnostics.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64,
                 policy: WritePolicy = WritePolicy.WRITE_BACK,
                 name: str = "cache") -> None:
        if size_bytes <= 0:
            raise ValueError(f"{name}: size must be positive, got {size_bytes}")
        if assoc <= 0:
            raise ValueError(f"{name}: associativity must be positive, got {assoc}")
        num_lines = max(1, size_bytes // line_size)
        # Clamp associativity for tiny (test-scale) caches.
        self.assoc = min(assoc, num_lines)
        self.num_sets = max(1, num_lines // self.assoc)
        self.line_size = line_size
        self.policy = policy
        self.name = name
        self.stats = CacheStats()
        # set index -> OrderedDict mapping line -> dirty flag (LRU order:
        # least recently used first).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        # Resident-line count, maintained incrementally by every mutator
        # so emptiness/occupancy checks are O(1) on the bulk fast paths.
        self._resident = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        idx = line % self.num_sets
        cset = self._sets.get(idx)
        if cset is None:
            cset = OrderedDict()
            self._sets[idx] = cset
        return cset

    def lookup(self, line: int) -> bool:
        """Return whether ``line`` is resident, without touching LRU state."""
        cset = self._sets.get(line % self.num_sets)
        return cset is not None and line in cset

    def run_fully_resident(self, start: int, count: int) -> bool:
        """Whether every line in ``[start, start + count)`` is resident.

        A pure residency probe (no LRU refresh, no stats) used by bulk
        fast paths to prove an :meth:`access_run` will be all-hit before
        committing to it.
        """
        if count <= 0:
            return True
        if self._resident < count:
            return False
        ns = self.num_sets
        sets = self._sets
        end = start + count
        if count < ns:
            for line in range(start, end):
                cset = sets.get(line % ns)
                if cset is None or line not in cset:
                    return False
            return True
        for idx in range(ns):
            first = start + ((idx - start) % ns)
            k = 1 + (end - 1 - first) // ns
            cset = sets.get(idx)
            if cset is None or len(cset) < k:
                return False
            for line in range(first, first + (k - 1) * ns + 1, ns):
                if line not in cset:
                    return False
        return True

    def access(self, line: int, is_write: bool) -> Tuple[bool, Optional[Eviction]]:
        """Perform a demand access; allocate on miss.

        Returns ``(hit, eviction)`` where ``eviction`` describes the victim
        line if the allocation displaced one. Under
        :attr:`WritePolicy.WRITE_THROUGH`, stores never mark the resident
        copy dirty (the write is propagated by the caller).
        """
        cset = self._set_of(line)
        dirty = cset.pop(line, None)
        if dirty is not None:
            hit = True
            evicted = None
            new_dirty = dirty or (is_write and self.policy is WritePolicy.WRITE_BACK)
        else:
            hit = False
            evicted = None
            if len(cset) >= self.assoc:
                victim, victim_dirty = cset.popitem(last=False)
                evicted = Eviction(victim, victim_dirty)
                self.stats.evictions += 1
                if victim_dirty:
                    self.stats.dirty_evictions += 1
            new_dirty = is_write and self.policy is WritePolicy.WRITE_BACK
            if evicted is None:
                self._resident += 1
        cset[line] = new_dirty
        if hit:
            self.stats.hits += 1
            if is_write:
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
        else:
            self.stats.misses += 1
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
        return hit, evicted

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert ``line`` without counting a demand access (e.g. a refill
        performed on behalf of a remote requester). Returns any eviction."""
        cset = self._set_of(line)
        prev = cset.pop(line, None)
        evicted = None
        if prev is None:
            if len(cset) >= self.assoc:
                victim, victim_dirty = cset.popitem(last=False)
                evicted = Eviction(victim, victim_dirty)
                self.stats.evictions += 1
                if victim_dirty:
                    self.stats.dirty_evictions += 1
            else:
                self._resident += 1
        cset[line] = dirty or bool(prev)
        return evicted

    def _fill_many(self, lines, dirty: bool = False) -> List[Eviction]:
        """Bulk :meth:`fill` over an iterable of lines, in order.

        Returns the evictions in occurrence order (callers absorb them
        after the fact; eviction handling only touches order-free
        counters, so deferring it is bit-identical to per-line fills).
        """
        ns = self.num_sets
        assoc = self.assoc
        sets = self._sets
        stats = self.stats
        evictions: List[Eviction] = []
        resident = self._resident
        for line in lines:
            idx = line % ns
            cset = sets.get(idx)
            if cset is None:
                cset = OrderedDict()
                sets[idx] = cset
            prev = cset.pop(line, None)
            if prev is None:
                if len(cset) >= assoc:
                    victim, victim_dirty = cset.popitem(last=False)
                    evictions.append(Eviction(victim, victim_dirty))
                    stats.evictions += 1
                    if victim_dirty:
                        stats.dirty_evictions += 1
                else:
                    resident += 1
            cset[line] = dirty or bool(prev)
        self._resident = resident
        return evictions

    # ------------------------------------------------------------------
    # Bulk (run) operations
    # ------------------------------------------------------------------
    #
    # These are bit-exact aggregations of the per-line primitives over a
    # contiguous line interval: the resulting cache state (residency, LRU
    # order, dirty flags) and `CacheStats` are identical to issuing the
    # per-line calls in ascending line order, but sets whose occupancy
    # permits it are processed in O(assoc) instead of O(lines). The
    # differential tests in tests/test_cache_runs.py and
    # tests/test_batched_equivalence.py enforce the equivalence.

    def _access_run(self, start: int, count: int, do_load: bool,
                    do_store: bool) -> RunResult:
        """Demand-access every line in ``[start, start + count)``.

        Equivalent to, for each line in ascending order: an
        ``access(line, False)`` if ``do_load``, then an
        ``access(line, True)`` if ``do_store`` (the read-modify-write
        composition ``lines_for_arg`` traces produce). Lines in a run are
        distinct, so a run's second (store) access always hits.
        """
        if count <= 0:
            return RunResult(0, 0, [])
        if not (do_load or do_store):
            raise ValueError("access_run requires do_load and/or do_store")
        ns = self.num_sets
        assoc = self.assoc
        end = start + count
        store_dirty = do_store and self.policy is WritePolicy.WRITE_BACK
        sets = self._sets
        if (self._resident == 0 and count >= ns
                and (count + ns - 1) // ns <= assoc):
            # Totally cold cache — the steady state right after an
            # implicit acquire. Every line fills an empty way, so the
            # outcome is a uniform miss by construction: build each set's
            # contents in one shot, no probes, events, or sort.
            for idx in range(ns):
                first = start + ((idx - start) % ns)
                k = 1 + (end - 1 - first) // ns
                sets[idx] = OrderedDict.fromkeys(
                    range(first, first + (k - 1) * ns + 1, ns), store_dirty)
            self._resident = count
            self._run_stats(0, count, 0, 0, do_load, do_store, count)
            return RunResult(0, count, None, uniform_miss=True)
        hits = 0
        evictions = 0
        dirty_evictions = 0
        events: List[Tuple[int, Optional[int], bool]] = []
        append = events.append
        # Sets where every line cold-filled an empty way: their events are
        # reconstructible ((line, None, False) each), so materialization
        # is deferred until we know the run is not a uniform miss.
        pure_segs: List[Tuple[int, int]] = []
        if count < 2 * ns:
            # At most two run lines per set, so per-set batching cannot
            # amortize its framing: use a straight per-line walk, already
            # in ascending event order. Try an
            # optimistic all-hit pass first — the prefix moves (and dirty
            # marks) a failed attempt leaves behind are exactly what the
            # classifying walk's leading hits would redo, so falling
            # through stays bit-identical.
            sets_get = sets.get
            try:
                if store_dirty:
                    for line in range(start, end):
                        cset = sets_get(line % ns)
                        cset.move_to_end(line)
                        cset[line] = True
                else:
                    for line in range(start, end):
                        sets_get(line % ns).move_to_end(line)
                hits = count
            except (KeyError, AttributeError):
                # Some line missed (or its set doesn't exist yet):
                # reclassify the whole run per line.
                for line in range(start, end):
                    idx = line % ns
                    cset = sets_get(idx)
                    if cset is not None:
                        if line in cset:
                            hits += 1
                            cset.move_to_end(line)
                            if store_dirty:
                                cset[line] = True
                            continue
                    else:
                        cset = OrderedDict()
                        sets[idx] = cset
                    if len(cset) >= assoc:
                        victim, victim_dirty = cset.popitem(last=False)
                        evictions += 1
                        if victim_dirty:
                            dirty_evictions += 1
                        append((line, victim, victim_dirty))
                    else:
                        append((line, None, False))
                    cset[line] = store_dirty
        else:
            # Sets whose first run line is below `split` hold one extra
            # run line; iterating by `first` makes the per-set index
            # arithmetic a single modulo.
            k_lo, r = divmod(count, ns)
            split = start + r
            sets_get = sets.get
            for first in range(start, start + ns):
                k = k_lo + 1 if first < split else k_lo
                set_end = first + (k - 1) * ns + 1
                idx = first % ns
                cset = sets_get(idx)
                if cset is None:
                    cset = OrderedDict()
                    sets[idx] = cset
                rng = range(first, set_end, ns)
                if len(cset) >= k:
                    # Optimistic all-resident fast path: refresh LRU in
                    # run order, bailing out at the first missing line.
                    # The prefix moves (and dirty marks) a failed attempt
                    # leaves behind are exactly what the per-line replay's
                    # leading hits would have done, so falling through to
                    # the classified paths below stays bit-identical.
                    try:
                        if store_dirty:
                            move = cset.move_to_end
                            for line in rng:
                                move(line)
                                cset[line] = True
                        else:
                            # Consume the map purely for move_to_end's
                            # side effect (always-None, so any() never
                            # short-circuits): a C-speed LRU refresh with
                            # no result list.
                            any(map(cset.move_to_end, rng))
                        hits += k
                        continue
                    except KeyError:
                        pass
                res_n = sum(map(cset.__contains__, rng)) if cset else 0
                if res_n == 0:
                    if k <= assoc - len(cset):
                        # Pure cold fill: every miss lands in an empty way.
                        cset.update(dict.fromkeys(rng, store_dirty))
                        pure_segs.append((first, set_end))
                    else:
                        e, de = self._run_spill_set(cset, first, set_end,
                                                    store_dirty, events)
                        evictions += e
                        dirty_evictions += de
                else:
                    h, e, de = self._run_mixed_set(cset, first, set_end,
                                                   store_dirty, events)
                    hits += h
                    evictions += e
                    dirty_evictions += de
        misses = count - hits
        self._resident += misses - evictions
        self._run_stats(hits, misses, evictions, dirty_evictions,
                        do_load, do_store, count)
        if hits == 0 and evictions == 0:
            return RunResult(0, misses, None, uniform_miss=True)
        for first, set_end in pure_segs:
            for line in range(first, set_end, ns):
                append((line, None, False))
        if len(events) > 1:
            # Lines are distinct, so lexicographic tuple order == line
            # order and the None victims never get compared.
            events.sort()
        return RunResult(hits, misses, events)

    def _run_stats(self, hits: int, misses: int, evictions: int,
                   dirty_evictions: int, do_load: bool, do_store: bool,
                   count: int) -> None:
        """Fold one run's aggregate outcome into :attr:`stats`."""
        stats = self.stats
        if do_load:
            stats.read_hits += hits
            stats.read_misses += misses
        else:
            stats.write_hits += hits
            stats.write_misses += misses
        total_hits = hits
        if do_load and do_store:
            # The store after each load hits the just-filled line.
            stats.write_hits += count
            total_hits += count
        stats.hits += total_hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions

    def _run_spill_set(self, cset: "OrderedDict[int, bool]", first: int,
                       set_end: int, store_dirty: bool,
                       events: List[Tuple[int, Optional[int], bool]]
                       ) -> Tuple[int, int]:
        """One set's run slice when no run line is resident and the fill
        overflows the free ways: every access misses, and the victim
        sequence is fully determined — the first ``free`` misses fill
        empty ways, the next displace the initial residents in LRU order,
        and once the set is run-only each miss displaces the run line
        ``assoc`` insertions back. Returns ``(evictions, dirty)``."""
        ns = self.num_sets
        assoc = self.assoc
        free = assoc - len(cset)
        displaced = [cset.popitem(last=False)
                     for _ in range(min((set_end - first - 1) // ns + 1 - free,
                                        len(cset)))]
        evictions = 0
        dirty_evictions = 0
        i = 0
        for line in range(first, set_end, ns):
            if i < free:
                events.append((line, None, False))
            elif i < assoc:
                victim, victim_dirty = displaced[i - free]
                events.append((line, victim, victim_dirty))
                evictions += 1
                if victim_dirty:
                    dirty_evictions += 1
            else:
                victim = line - assoc * ns
                del cset[victim]
                events.append((line, victim, store_dirty))
                evictions += 1
                if store_dirty:
                    dirty_evictions += 1
            cset[line] = store_dirty
            i += 1
        return evictions, dirty_evictions

    def _run_mixed_set(self, cset: "OrderedDict[int, bool]", first: int,
                       set_end: int, store_dirty: bool,
                       events: List[Tuple[int, Optional[int], bool]]
                       ) -> Tuple[int, int, int]:
        """One set's run slice under mixed residency: an earlier miss may
        displace a later run line before its access (turning its hit into
        a miss), so replay per line. Returns ``(hits, evictions, dirty)``."""
        ns = self.num_sets
        assoc = self.assoc
        hits = 0
        evictions = 0
        dirty_evictions = 0
        for line in range(first, set_end, ns):
            prev = cset.pop(line, None)
            if prev is not None:
                hits += 1
                cset[line] = prev or store_dirty
                continue
            if len(cset) >= assoc:
                victim, victim_dirty = cset.popitem(last=False)
                evictions += 1
                if victim_dirty:
                    dirty_evictions += 1
                events.append((line, victim, victim_dirty))
            else:
                events.append((line, None, False))
            cset[line] = store_dirty
        return hits, evictions, dirty_evictions

    def _serve_miss_seq(self, events) -> Tuple[List[int], List[int],
                                               List[int], int]:
        """Apply an ordered L2 miss/victim event stream to this cache.

        For each ``(line, victim_line, victim_dirty)`` event this
        performs a read ``access(line)`` followed, if the victim was
        dirty, by a ``fill(victim_line, dirty=True)`` — the exact
        operation sequence the device's per-line miss service replays
        against the L3, with the per-event call overhead folded into one
        loop. Returns ``(missed_lines, access_dirty_victims,
        fill_dirty_victims, writebacks)``: the lines that missed (in
        order), the dirty lines this cache evicted during the accesses
        and during the fills respectively (callers attribute the two
        differently), and the number of victim writebacks performed.
        """
        ns = self.num_sets
        assoc = self.assoc
        sets = self._sets
        hits = 0
        evictions = 0
        dirty_evictions = 0
        writebacks = 0
        missed: List[int] = []
        access_devs: List[int] = []
        fill_devs: List[int] = []
        resident = self._resident
        for line, victim, victim_dirty in events:
            cset = sets.get(line % ns)
            if cset is None:
                cset = OrderedDict()
                sets[line % ns] = cset
            prev = cset.pop(line, None)
            if prev is not None:
                hits += 1
                cset[line] = prev
            else:
                missed.append(line)
                if len(cset) >= assoc:
                    v, vd = cset.popitem(last=False)
                    evictions += 1
                    if vd:
                        dirty_evictions += 1
                        access_devs.append(v)
                else:
                    resident += 1
                cset[line] = False
            if victim_dirty:
                writebacks += 1
                cset = sets.get(victim % ns)
                if cset is None:
                    cset = OrderedDict()
                    sets[victim % ns] = cset
                prev = cset.pop(victim, None)
                if prev is None:
                    if len(cset) >= assoc:
                        v, vd = cset.popitem(last=False)
                        evictions += 1
                        if vd:
                            dirty_evictions += 1
                            fill_devs.append(v)
                    else:
                        resident += 1
                cset[victim] = True
        self._resident = resident
        stats = self.stats
        n_miss = len(missed)
        stats.hits += hits
        stats.read_hits += hits
        stats.misses += n_miss
        stats.read_misses += n_miss
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        return missed, access_devs, fill_devs, writebacks

    def _flush_run(self, start: int, count: int) -> List[int]:
        """Bulk :meth:`flush_line` over ``[start, start + count)``.

        Returns the written-back lines in ascending order — the order a
        per-line ascending walk would write them back in.
        """
        end = start + count
        flushed: List[int] = []
        if count >= self.num_sets:
            for cset in self._sets.values():
                for line, dirty in cset.items():
                    if dirty and start <= line < end:
                        flushed.append(line)
            flushed.sort()
            for line in flushed:
                self._sets[line % self.num_sets][line] = False
        else:
            for line in range(start, end):
                cset = self._sets.get(line % self.num_sets)
                if cset is not None and cset.get(line, False):
                    cset[line] = False
                    flushed.append(line)
        self.stats.lines_flushed += len(flushed)
        return flushed

    def _invalidate_run(self, start: int, count: int) -> Tuple[int, List[int]]:
        """Bulk :meth:`invalidate_line` over ``[start, start + count)``.

        Returns ``(lines_dropped, dirty_lines)`` with the dirty lines in
        ascending order so the caller can write them back in the same
        sequence a per-line walk would.
        """
        end = start + count
        dropped = 0
        dirty_lines: List[int] = []
        if count >= self.num_sets:
            found: List[Tuple[int, bool]] = []
            for cset in self._sets.values():
                for line, dirty in cset.items():
                    if start <= line < end:
                        found.append((line, dirty))
            for line, dirty in found:
                del self._sets[line % self.num_sets][line]
                if dirty:
                    dirty_lines.append(line)
            dropped = len(found)
            dirty_lines.sort()
        else:
            for line in range(start, end):
                cset = self._sets.get(line % self.num_sets)
                if cset is None:
                    continue
                dirty = cset.pop(line, None)
                if dirty is None:
                    continue
                dropped += 1
                if dirty:
                    dirty_lines.append(line)
        self._resident -= dropped
        self.stats.lines_invalidated += dropped
        return dropped, dirty_lines

    # ------------------------------------------------------------------
    # Unified bulk-op API
    # ------------------------------------------------------------------
    #
    # One keyword-only signature shape per operation, all returning a
    # shared :class:`BulkResult`. This is the documented protocol both
    # cache cores (this dict-backed reference and the numpy core in
    # :mod:`repro.memory.npcache`) implement; the historical five-shape
    # methods below survive as deprecated shims.

    def bulk_access(self, *, start: int, count: int, load: bool,
                    store: bool) -> BulkResult:
        """Demand-access every line in ``[start, start + count)``.

        Per line, in ascending order: an ``access(line, False)`` if
        ``load``, then an ``access(line, True)`` if ``store`` (the
        read-modify-write composition ``lines_for_arg`` traces produce).
        """
        res = self._access_run(start, count, load, store)
        return BulkResult(hits=res.hits, misses=res.misses,
                          events=res.events, uniform_miss=res.uniform_miss)

    def bulk_fill(self, *, lines, dirty: bool = False) -> BulkResult:
        """Bulk :meth:`fill` over an iterable of lines, in order.

        :attr:`BulkResult.evictions` holds the capacity evictions in
        occurrence order.
        """
        return BulkResult(evictions=self._fill_many(lines, dirty))

    def bulk_serve(self, *, events) -> BulkResult:
        """Apply an ordered L2 miss/victim event stream to this cache.

        For each ``(line, victim_line, victim_dirty)`` event: a read
        ``access(line)`` followed, if the victim was dirty, by a
        ``fill(victim_line, dirty=True)``. :attr:`BulkResult.lines` holds
        the missed lines in order; :attr:`BulkResult.evictions` /
        :attr:`BulkResult.fill_evictions` the dirty victims of the
        accesses and of the victim fills respectively (callers attribute
        the two differently); :attr:`BulkResult.writebacks` the victim
        writebacks performed.
        """
        missed, access_devs, fill_devs, writebacks = (
            self._serve_miss_seq(events))
        return BulkResult(
            hits=len(events) - len(missed), misses=len(missed),
            lines=missed,
            evictions=[Eviction(line, True) for line in access_devs],
            fill_evictions=[Eviction(line, True) for line in fill_devs],
            writebacks=writebacks)

    def bulk_flush(self, *, start: Optional[int] = None,
                   count: Optional[int] = None) -> BulkResult:
        """Write back dirty lines, retaining clean copies.

        With no arguments this is the whole-cache implicit release
        (:meth:`flush_dirty`); with ``start``/``count`` it flushes only
        ``[start, start + count)``. :attr:`BulkResult.lines` holds the
        written-back lines in the order a per-line walk would emit them.
        """
        if start is None:
            if count is not None:
                raise ValueError("bulk_flush: count requires start")
            flushed = self.flush_dirty()
        else:
            if count is None:
                raise ValueError("bulk_flush: start requires count")
            flushed = self._flush_run(start, count)
        return BulkResult(lines=flushed, writebacks=len(flushed))

    def bulk_invalidate(self, *, start: Optional[int] = None,
                        count: Optional[int] = None) -> BulkResult:
        """Drop resident lines (implicit acquire).

        With no arguments this drops everything (:meth:`invalidate_all`);
        with ``start``/``count`` only ``[start, start + count)``.
        :attr:`BulkResult.dropped` counts the dropped lines;
        :attr:`BulkResult.lines` holds the dirty ones (ascending for
        ranges, walk order for the whole cache) that the caller must
        write back for safety.
        """
        if start is None:
            if count is not None:
                raise ValueError("bulk_invalidate: count requires start")
            dropped, dirty_lines = self.invalidate_all()
        else:
            if count is None:
                raise ValueError("bulk_invalidate: start requires count")
            dropped, dirty_lines = self._invalidate_run(start, count)
        return BulkResult(dropped=dropped, lines=dirty_lines)

    # ------------------------------------------------------------------
    # Deprecated bulk-op shims (pre-BulkResult shapes)
    # ------------------------------------------------------------------

    def access_run(self, start: int, count: int, do_load: bool,
                   do_store: bool) -> RunResult:
        """Deprecated: use :meth:`bulk_access`."""
        _warn_legacy_bulk("access_run", "bulk_access")
        res = self._access_run(start, count, do_load, do_store)
        return res

    def fill_many(self, lines, dirty: bool = False) -> List[Eviction]:
        """Deprecated: use :meth:`bulk_fill`."""
        _warn_legacy_bulk("fill_many", "bulk_fill")
        return self._fill_many(lines, dirty)

    def serve_miss_seq(self, events) -> Tuple[List[int], List[int],
                                              List[int], int]:
        """Deprecated: use :meth:`bulk_serve`."""
        _warn_legacy_bulk("serve_miss_seq", "bulk_serve")
        return self._serve_miss_seq(events)

    def flush_run(self, start: int, count: int) -> List[int]:
        """Deprecated: use :meth:`bulk_flush`."""
        _warn_legacy_bulk("flush_run", "bulk_flush")
        return self._flush_run(start, count)

    def invalidate_run(self, start: int, count: int) -> Tuple[int, List[int]]:
        """Deprecated: use :meth:`bulk_invalidate`."""
        _warn_legacy_bulk("invalidate_run", "bulk_invalidate")
        return self._invalidate_run(start, count)

    # ------------------------------------------------------------------
    # Synchronization operations (implicit acquire / release)
    # ------------------------------------------------------------------

    def flush_dirty(self) -> List[int]:
        """Write back every dirty line, *retaining clean copies*.

        This is an implicit release over the whole cache (the global CP
        cannot issue physical range flushes, Sec. VI). Returns the list of
        written-back lines so the caller can account L2->L3 traffic.
        """
        flushed: List[int] = []
        for cset in self._sets.values():
            dirty_here = [line for line, dirty in cset.items() if dirty]
            for line in dirty_here:
                cset[line] = False
            flushed.extend(dirty_here)
        self.stats.flush_ops += 1
        self.stats.lines_flushed += len(flushed)
        return flushed

    def invalidate_all(self) -> Tuple[int, List[int]]:
        """Drop every resident line (implicit acquire over the whole cache).

        Returns ``(num_dropped, dirty_lines)``; dirty lines must be written
        back by the caller before the drop is safe, so they are reported.
        """
        dropped = 0
        dirty_lines: List[int] = []
        for cset in self._sets.values():
            dirty_lines.extend(line for line, dirty in cset.items() if dirty)
            dropped += len(cset)
            cset.clear()
        self._resident = 0
        self.stats.invalidate_ops += 1
        self.stats.lines_invalidated += dropped
        return dropped, dirty_lines

    def invalidate_line(self, line: int) -> Tuple[bool, bool]:
        """Drop a single line. Returns ``(was_present, was_dirty)``."""
        cset = self._sets.get(line % self.num_sets)
        if cset is None:
            return False, False
        dirty = cset.pop(line, None)
        if dirty is None:
            return False, False
        self._resident -= 1
        self.stats.lines_invalidated += 1
        return True, dirty

    def flush_line(self, line: int) -> bool:
        """Write back a single line if dirty (retaining a clean copy).

        Returns whether a writeback occurred.
        """
        cset = self._sets.get(line % self.num_sets)
        if cset is None or not cset.get(line, False):
            return False
        cset[line] = False
        self.stats.lines_flushed += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident (maintained incrementally;
        tests assert it against a full walk of the sets)."""
        return self._resident

    @property
    def dirty_lines(self) -> int:
        """Number of lines currently dirty."""
        return sum(1 for cset in self._sets.values() for d in cset.values() if d)

    def is_dirty(self, line: int) -> bool:
        """Whether ``line`` is resident and dirty."""
        cset = self._sets.get(line % self.num_sets)
        return bool(cset) and cset.get(line, False)

    def iter_lines(self):
        """Yield every resident ``(line, dirty)`` pair.

        A pure read (no LRU refresh, no stats) — the sanitizer walks the
        caches between kernels and must not perturb replacement state.
        Callers must not mutate the cache while iterating.
        """
        for cset in self._sets.values():
            yield from cset.items()

    @property
    def capacity_lines(self) -> int:
        """Total capacity in lines."""
        return self.num_sets * self.assoc

    # ------------------------------------------------------------------
    # Memoization support (state digest + snapshot/restore)
    # ------------------------------------------------------------------
    #
    # The memo trace path (src/repro/gpu/memo.py) keys kernel outcomes on
    # the *behavioral* cache state: which sets exist (in creation order —
    # `flush_dirty`/`invalidate_all` iterate `_sets` in that order, which
    # fixes writeback order and hence L3 fill order), each set's lines in
    # LRU order, and their dirty flags. `CacheStats` is cumulative
    # diagnostics, not behavior, so it is carried as a counter delta
    # instead of being part of the digest.

    def memo_state(self) -> tuple:
        """The behavioral state as an immutable canonical structure."""
        return (tuple((idx, tuple(cset.items()))
                      for idx, cset in self._sets.items()),
                self._resident)

    def memo_digest(self) -> bytes:
        """A 128-bit digest of :meth:`memo_state`.

        Deterministic across processes (no reliance on ``hash()``), and a
        pure function of the behavioral state: equal states hash equal.
        """
        return hashlib.blake2b(repr(self.memo_state()).encode(),
                               digest_size=16).digest()

    def memo_snapshot(self) -> tuple:
        """A snapshot suitable for :meth:`memo_restore`.

        The snapshot shares no structure with the cache and is treated
        as immutable by all holders (restore copies, never installs), so
        it can be stored in a cross-run memo table and restored any
        number of times. Sets are kept as ``OrderedDict`` copies rather
        than item tuples: ``OrderedDict.copy`` makes restore a C-level
        copy per set, which is what puts memo-hit replay ahead of
        re-walking the trace.
        """
        return ({idx: cset.copy() for idx, cset in self._sets.items()},
                self._resident)

    def memo_restore(self, snapshot: tuple) -> None:
        """Restore the behavioral state captured by :meth:`memo_snapshot`.

        Copies the set dictionaries (plain dict insertion order
        reproduces the recorded creation order; each ``OrderedDict``
        copy reproduces the recorded LRU order), leaving :attr:`stats`
        alone — counters are replayed separately as deltas.
        """
        sets_state, resident = snapshot
        self._sets = {idx: cset.copy() for idx, cset in sets_state.items()}
        self._resident = resident

    def __repr__(self) -> str:
        return (f"SetAssocCache({self.name}, {self.capacity_lines} lines, "
                f"{self.assoc}-way, {self.policy.value})")
