"""Set-associative cache model with LRU replacement.

Used for the per-chiplet L2 caches and the banked shared L3 (Table I).
The model operates on *global line indices* (``byte_addr // LINE_SIZE``)
rather than byte addresses, because every structure in the simulator works
at line granularity.

Supported behaviours needed by the three evaluated protocols:

* write-back with write-allocate (Baseline/CPElide L2s, Table I),
* write-through (HMG L2 variant, Sec. IV-C),
* bulk invalidate (implicit acquire) and bulk flush (implicit release),
  where a flush *retains a clean copy* of each written-back line
  (Sec. III-B, "Lazy Acquire/Release": "when a fully dirty line is written
  back, the cache retains a clean copy of the line"),
* per-line invalidation (HMG directory-eviction invalidations).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class WritePolicy(enum.Enum):
    """L2 write policy (Table I / Sec. IV-C)."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


@dataclass
class CacheStats:
    """Per-cache event counters."""

    hits: int = 0
    misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    lines_flushed: int = 0
    lines_invalidated: int = 0
    flush_ops: int = 0
    invalidate_ops: int = 0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into ``self``."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class Eviction:
    """A line evicted by an insertion: ``(line, was_dirty)``."""

    line: int
    dirty: bool


class SetAssocCache:
    """An LRU set-associative cache of line indices.

    Args:
        size_bytes: Total capacity in bytes.
        assoc: Associativity (ways per set).
        line_size: Line size in bytes (default 64, Table I).
        policy: Write policy for stores.
        name: Identifier used in diagnostics.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64,
                 policy: WritePolicy = WritePolicy.WRITE_BACK,
                 name: str = "cache") -> None:
        if size_bytes <= 0:
            raise ValueError(f"{name}: size must be positive, got {size_bytes}")
        if assoc <= 0:
            raise ValueError(f"{name}: associativity must be positive, got {assoc}")
        num_lines = max(1, size_bytes // line_size)
        # Clamp associativity for tiny (test-scale) caches.
        self.assoc = min(assoc, num_lines)
        self.num_sets = max(1, num_lines // self.assoc)
        self.line_size = line_size
        self.policy = policy
        self.name = name
        self.stats = CacheStats()
        # set index -> OrderedDict mapping line -> dirty flag (LRU order:
        # least recently used first).
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        idx = line % self.num_sets
        cset = self._sets.get(idx)
        if cset is None:
            cset = OrderedDict()
            self._sets[idx] = cset
        return cset

    def lookup(self, line: int) -> bool:
        """Return whether ``line`` is resident, without touching LRU state."""
        cset = self._sets.get(line % self.num_sets)
        return cset is not None and line in cset

    def access(self, line: int, is_write: bool) -> Tuple[bool, Optional[Eviction]]:
        """Perform a demand access; allocate on miss.

        Returns ``(hit, eviction)`` where ``eviction`` describes the victim
        line if the allocation displaced one. Under
        :attr:`WritePolicy.WRITE_THROUGH`, stores never mark the resident
        copy dirty (the write is propagated by the caller).
        """
        cset = self._set_of(line)
        dirty = cset.pop(line, None)
        if dirty is not None:
            hit = True
            evicted = None
            new_dirty = dirty or (is_write and self.policy is WritePolicy.WRITE_BACK)
        else:
            hit = False
            evicted = None
            if len(cset) >= self.assoc:
                victim, victim_dirty = cset.popitem(last=False)
                evicted = Eviction(victim, victim_dirty)
                self.stats.evictions += 1
                if victim_dirty:
                    self.stats.dirty_evictions += 1
            new_dirty = is_write and self.policy is WritePolicy.WRITE_BACK
        cset[line] = new_dirty
        if hit:
            self.stats.hits += 1
            if is_write:
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
        else:
            self.stats.misses += 1
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
        return hit, evicted

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert ``line`` without counting a demand access (e.g. a refill
        performed on behalf of a remote requester). Returns any eviction."""
        cset = self._set_of(line)
        prev = cset.pop(line, None)
        evicted = None
        if prev is None and len(cset) >= self.assoc:
            victim, victim_dirty = cset.popitem(last=False)
            evicted = Eviction(victim, victim_dirty)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
        cset[line] = dirty or bool(prev)
        return evicted

    # ------------------------------------------------------------------
    # Synchronization operations (implicit acquire / release)
    # ------------------------------------------------------------------

    def flush_dirty(self) -> List[int]:
        """Write back every dirty line, *retaining clean copies*.

        This is an implicit release over the whole cache (the global CP
        cannot issue physical range flushes, Sec. VI). Returns the list of
        written-back lines so the caller can account L2->L3 traffic.
        """
        flushed: List[int] = []
        for cset in self._sets.values():
            for line, dirty in cset.items():
                if dirty:
                    cset[line] = False
                    flushed.append(line)
        self.stats.flush_ops += 1
        self.stats.lines_flushed += len(flushed)
        return flushed

    def invalidate_all(self) -> Tuple[int, List[int]]:
        """Drop every resident line (implicit acquire over the whole cache).

        Returns ``(num_dropped, dirty_lines)``; dirty lines must be written
        back by the caller before the drop is safe, so they are reported.
        """
        dropped = 0
        dirty_lines: List[int] = []
        for cset in self._sets.values():
            for line, dirty in cset.items():
                if dirty:
                    dirty_lines.append(line)
            dropped += len(cset)
            cset.clear()
        self.stats.invalidate_ops += 1
        self.stats.lines_invalidated += dropped
        return dropped, dirty_lines

    def invalidate_line(self, line: int) -> Tuple[bool, bool]:
        """Drop a single line. Returns ``(was_present, was_dirty)``."""
        cset = self._sets.get(line % self.num_sets)
        if cset is None:
            return False, False
        dirty = cset.pop(line, None)
        if dirty is None:
            return False, False
        self.stats.lines_invalidated += 1
        return True, dirty

    def flush_line(self, line: int) -> bool:
        """Write back a single line if dirty (retaining a clean copy).

        Returns whether a writeback occurred.
        """
        cset = self._sets.get(line % self.num_sets)
        if cset is None or not cset.get(line, False):
            return False
        cset[line] = False
        self.stats.lines_flushed += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(cset) for cset in self._sets.values())

    @property
    def dirty_lines(self) -> int:
        """Number of lines currently dirty."""
        return sum(1 for cset in self._sets.values() for d in cset.values() if d)

    def is_dirty(self, line: int) -> bool:
        """Whether ``line`` is resident and dirty."""
        cset = self._sets.get(line % self.num_sets)
        return bool(cset) and cset.get(line, False)

    @property
    def capacity_lines(self) -> int:
        """Total capacity in lines."""
        return self.num_sets * self.assoc

    def __repr__(self) -> str:
        return (f"SetAssocCache({self.name}, {self.capacity_lines} lines, "
                f"{self.assoc}-way, {self.policy.value})")
