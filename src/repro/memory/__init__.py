"""Memory-subsystem substrate: address space, caches, L1/LDS models, DRAM.

The chiplet-based GPU memory hierarchy (paper Fig. 1b / Fig. 3) is:

    CU-private L1 caches -> per-chiplet shared L2 -> banked shared L3 -> HBM

The three evaluated configurations (Baseline, HMG, CPElide) differ only at
and below the L2, so the L2/L3/DRAM levels are simulated exactly at
cache-line granularity while the L1 is a statistical filter
(:mod:`repro.memory.l1`).
"""

from repro.memory.address import (
    LINE_SIZE,
    PAGE_SIZE,
    AddressSpace,
    Buffer,
    HomeMap,
    line_index,
    line_of,
    lines_in_range,
    page_of,
)
from repro.memory.cache import (
    BulkResult,
    CacheStats,
    Eviction,
    SetAssocCache,
    WritePolicy,
)
from repro.memory.dram import DRAMModel
from repro.memory.l1 import L1Filter
from repro.memory.lds import LocalDataShare
from repro.memory.npcache import (
    NUMPY_AVAILABLE,
    NumpyCacheCore,
    make_cache_core,
)
from repro.memory.translation import AddressTranslator, PageSpan

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "AddressSpace",
    "Buffer",
    "HomeMap",
    "line_index",
    "line_of",
    "lines_in_range",
    "page_of",
    "BulkResult",
    "CacheStats",
    "Eviction",
    "NUMPY_AVAILABLE",
    "NumpyCacheCore",
    "SetAssocCache",
    "WritePolicy",
    "make_cache_core",
    "DRAMModel",
    "L1Filter",
    "LocalDataShare",
    "AddressTranslator",
    "PageSpan",
]
