"""Statistical per-CU L1 cache model.

The L1 data caches are CU-private, are invalidated/flushed at every kernel
boundary in *all* evaluated configurations (Sec. III-A: "since CPElide does
not modify the coherence protocol, the L1 caches must still be
invalidated/flushed at kernel boundaries"), and GPU L1s use write-through /
write-no-allocate policies (Sec. I). Consequently the L1's behaviour is
identical across Baseline, HMG, and CPElide, and Fig. 9 confirms neither
scheme changes L1 energy.

We therefore model the L1 as a hit-rate filter over each kernel's access
stream rather than simulating 240 small caches: the first touch of each
line within a kernel misses, and repeat touches hit with a fixed
probability (captured intra-kernel temporal locality). Misses and a
configurable fraction of repeat touches are forwarded to the L2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class L1Result:
    """Outcome of filtering one access stream through the L1 model.

    Attributes:
        l1_accesses: Total accesses presented to the L1.
        l1_hits: Accesses absorbed by the L1.
        l2_distinct: Distinct-line accesses forwarded to the L2 (each
            distinct line is forwarded exactly once per kernel sweep).
        l2_repeats: Repeat accesses that escaped the L1; these are L2 hits
            by construction (the line was just fetched) and are counted
            as such without perturbing L2 replacement state.
    """

    l1_accesses: int
    l1_hits: int
    l2_distinct: int
    l2_repeats: int


class L1Filter:
    """Filters per-kernel access streams through a statistical L1.

    Args:
        repeat_hit_rate: Probability that a repeat touch of a line already
            fetched this kernel hits in the L1 (default 0.9; GPU L1s are
            small and thrash under high occupancy, so repeats are not
            guaranteed hits).
    """

    def __init__(self, repeat_hit_rate: float = 0.9) -> None:
        if not 0.0 <= repeat_hit_rate <= 1.0:
            raise ValueError(f"repeat_hit_rate must be in [0, 1], got {repeat_hit_rate}")
        self.repeat_hit_rate = repeat_hit_rate

    def filter(self, distinct_lines: int, touches_per_line: float) -> L1Result:
        """Filter ``distinct_lines`` each touched ``touches_per_line`` times.

        Stores are write-through at the L1 (they always reach the L2) but
        write-no-allocate, so only the load stream benefits from the L1;
        callers pass the load stream here and route stores directly.
        """
        if distinct_lines < 0:
            raise ValueError(f"distinct_lines must be >= 0, got {distinct_lines}")
        if touches_per_line < 1.0:
            raise ValueError(
                f"touches_per_line must be >= 1, got {touches_per_line}")
        if touches_per_line == 1.0:
            # Streaming fast path: every touch is a first touch, so
            # nothing hits the L1 and the whole stream forwards as
            # distinct lines — skip the rounding arithmetic on the
            # hottest per-(kernel, arg, chiplet) call shape.
            return L1Result(
                l1_accesses=distinct_lines,
                l1_hits=0,
                l2_distinct=distinct_lines,
                l2_repeats=0,
            )
        total = int(round(distinct_lines * touches_per_line))
        repeats = max(0, total - distinct_lines)
        hits = int(round(repeats * self.repeat_hit_rate))
        escaped = repeats - hits
        return L1Result(
            l1_accesses=total,
            l1_hits=hits,
            l2_distinct=distinct_lines,
            l2_repeats=escaped,
        )
