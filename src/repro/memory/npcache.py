"""Vectorized numpy cache core, bit-identical to the dict reference.

:class:`NumpyCacheCore` re-implements :class:`~repro.memory.cache.
SetAssocCache` storage on flat tag/dirty/stamp matrices so the bulk
operations the run and memo trace paths live on become array sweeps
instead of per-line dict work. The dict-backed base class remains the
reference implementation (and the backend of the per-line ``line`` trace
path); the cross-path differential oracle (``python -m repro check``)
and the lockstep property tests (tests/test_np_cache_lockstep.py)
enforce bit-identity between the two cores.

Layout
------

Per cache, with ``ns = num_sets`` and ``A = assoc``:

* ``_tags``  — ``int64[ns, A]``, resident line index per way, ``-1`` when
  the way is invalid.
* ``_dirty`` — ``bool[ns, A]``, dirty flag per way (always ``False`` on
  invalid ways).
* ``_stamp`` — ``int64[ns, A]``, LRU stamp per way drawn from a global
  monotone counter ``_tick``; within a set, ascending stamp == LRU order
  (least recent first). Invalid ways hold the ``_FREE`` sentinel, which
  sorts after every live stamp, so a full set's victim is simply the
  row's ``argmin``.
* ``_occ``   — ``int64[ns]``, valid ways per set (incremental occupancy).
* ``_created`` — ``int64[ns]``, set-creation rank mirroring the dict
  core's ``_sets`` insertion order (``-1`` = never touched). Whole-cache
  flush/invalidate walk sets in creation order, which fixes writeback
  order and hence downstream L3 fill/LRU state, so the rank is
  behavioral state and must match the dict core exactly.

Bulk sweeps classify each touched set by its pre-state into all-hit
(vector stamp refresh), cold-fit (vector scatter into free ways), spill
(no hit, fill overflows the free ways: closed-form victim sequence), or
mixed (scalar per-line replay) — the same decomposition the dict core
makes, lifted to whole-array operations across sets.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.memory.cache import (
    Eviction,
    RunResult,
    SetAssocCache,
    WritePolicy,
)

try:  # Gate the hard dependency: fall back to the dict core when absent.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

NUMPY_AVAILABLE = _np is not None

#: Stamp sentinel for invalid ways — larger than any live stamp so free
#: ways sort after every resident line and never win a victim ``argmin``.
_FREE = 1 << 62


def make_cache_core(backend: str, *, size_bytes: int, assoc: int,
                    line_size: int = 64,
                    policy: WritePolicy = WritePolicy.WRITE_BACK,
                    name: str = "cache") -> SetAssocCache:
    """Build a cache with the requested storage backend.

    ``"dict"`` is the reference :class:`SetAssocCache`; ``"numpy"`` the
    vectorized :class:`NumpyCacheCore` (silently degrading to the dict
    core when numpy is unavailable — the two are bit-identical, only
    speed differs).
    """
    if backend not in ("dict", "numpy"):
        raise ValueError(f"unknown cache core {backend!r} "
                         "(expected 'dict' or 'numpy')")
    if backend == "numpy" and NUMPY_AVAILABLE:
        return NumpyCacheCore(size_bytes=size_bytes, assoc=assoc,
                              line_size=line_size, policy=policy, name=name)
    return SetAssocCache(size_bytes=size_bytes, assoc=assoc,
                         line_size=line_size, policy=policy, name=name)


class NumpyCacheCore(SetAssocCache):
    """Array-native :class:`SetAssocCache` with identical behavior.

    Implements the same public protocol (unified ``bulk_*`` API,
    per-line primitives, sync ops, memo hooks) on numpy matrices. Every
    observable — residency, LRU victim order, dirty flags,
    :class:`~repro.memory.cache.CacheStats`, event streams, writeback
    order — is bit-identical to the dict reference.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64,
                 policy: WritePolicy = WritePolicy.WRITE_BACK,
                 name: str = "cache") -> None:
        if _np is None:  # pragma: no cover - guarded by make_cache_core
            raise RuntimeError("NumpyCacheCore requires numpy")
        super().__init__(size_bytes, assoc, line_size, policy, name)
        del self._sets  # storage lives in the arrays; fail fast on leaks
        ns, assoc = self.num_sets, self.assoc
        self._tags = _np.full((ns, assoc), -1, dtype=_np.int64)
        self._dirty = _np.zeros((ns, assoc), dtype=bool)
        self._stamp = _np.full((ns, assoc), _FREE, dtype=_np.int64)
        self._occ = _np.zeros(ns, dtype=_np.int64)
        self._created = _np.full(ns, -1, dtype=_np.int64)
        self._tick = 0
        self._next_rank = 0

    # ------------------------------------------------------------------
    # Scalar helpers
    # ------------------------------------------------------------------

    def _way_of(self, idx: int, line: int) -> int:
        """Way holding ``line`` in set ``idx``, or ``-1``."""
        row = self._tags[idx]
        eq = row == line
        w = int(eq.argmax())
        return w if row[w] == line else -1

    def _ensure_created(self, idx: int) -> None:
        if self._created[idx] < 0:
            self._created[idx] = self._next_rank
            self._next_rank += 1

    def _evict_slot(self, idx: int) -> Tuple[int, Eviction]:
        """Pick and clear the LRU victim of a full set ``idx``."""
        v = int(self._stamp[idx].argmin())
        ev = Eviction(int(self._tags[idx, v]), bool(self._dirty[idx, v]))
        self.stats.evictions += 1
        if ev.dirty:
            self.stats.dirty_evictions += 1
        return v, ev

    # ------------------------------------------------------------------
    # Per-line primitives
    # ------------------------------------------------------------------

    def lookup(self, line: int) -> bool:
        return self._way_of(line % self.num_sets, line) >= 0

    def run_fully_resident(self, start: int, count: int) -> bool:
        if count <= 0:
            return True
        if self._resident < count:
            return False
        lines = _np.arange(start, start + count, dtype=_np.int64)
        rows = self._tags[lines % self.num_sets]
        return bool((rows == lines[:, None]).any(axis=1).all())

    def access(self, line: int, is_write: bool
               ) -> Tuple[bool, Optional[Eviction]]:
        idx = line % self.num_sets
        self._ensure_created(idx)
        stats = self.stats
        w = self._way_of(idx, line)
        evicted = None
        if w >= 0:
            hit = True
            if is_write and self.policy is WritePolicy.WRITE_BACK:
                self._dirty[idx, w] = True
        else:
            hit = False
            if self._occ[idx] >= self.assoc:
                w, evicted = self._evict_slot(idx)
            else:
                w = int((self._tags[idx] == -1).argmax())
                self._occ[idx] += 1
                self._resident += 1
            self._tags[idx, w] = line
            self._dirty[idx, w] = (is_write
                                   and self.policy is WritePolicy.WRITE_BACK)
        self._stamp[idx, w] = self._tick
        self._tick += 1
        if hit:
            stats.hits += 1
            if is_write:
                stats.write_hits += 1
            else:
                stats.read_hits += 1
        else:
            stats.misses += 1
            if is_write:
                stats.write_misses += 1
            else:
                stats.read_misses += 1
        return hit, evicted

    def fill(self, line: int, dirty: bool = False) -> Optional[Eviction]:
        idx = line % self.num_sets
        self._ensure_created(idx)
        w = self._way_of(idx, line)
        evicted = None
        if w >= 0:
            if dirty:
                self._dirty[idx, w] = True
        else:
            if self._occ[idx] >= self.assoc:
                w, evicted = self._evict_slot(idx)
            else:
                w = int((self._tags[idx] == -1).argmax())
                self._occ[idx] += 1
                self._resident += 1
            self._tags[idx, w] = line
            self._dirty[idx, w] = dirty
        self._stamp[idx, w] = self._tick
        self._tick += 1
        return evicted

    def invalidate_line(self, line: int) -> Tuple[bool, bool]:
        idx = line % self.num_sets
        w = self._way_of(idx, line)
        if w < 0:
            return False, False
        dirty = bool(self._dirty[idx, w])
        self._drop_way(idx, w)
        self.stats.lines_invalidated += 1
        return True, dirty

    def _drop_way(self, idx: int, w: int) -> None:
        self._tags[idx, w] = -1
        self._dirty[idx, w] = False
        self._stamp[idx, w] = _FREE
        self._occ[idx] -= 1
        self._resident -= 1

    def flush_line(self, line: int) -> bool:
        idx = line % self.num_sets
        w = self._way_of(idx, line)
        if w < 0 or not self._dirty[idx, w]:
            return False
        self._dirty[idx, w] = False
        self.stats.lines_flushed += 1
        return True

    # ------------------------------------------------------------------
    # Classified bulk demand sweep (shared by access/serve/fill bulk ops)
    # ------------------------------------------------------------------

    def _demand_sweep(self, lines, store_dirty: bool):
        """Apply a demand/fill sweep of distinct ``lines`` (input order).

        Semantics per line: LRU refresh (plus ``dirty |= store_dirty``)
        on hit; insert with ``dirty = store_dirty`` on miss, evicting the
        set's LRU victim when full — i.e. exactly an ``access``/``fill``
        walk in input order, minus the stats (callers account those).

        Returns ``(hits, evictions, dirty_evictions, chunks)`` where each
        chunk is ``(pos, line, victim, victim_dirty)`` arrays describing
        the misses (victim ``-1`` == no eviction); ``pos`` is the line's
        input position, so sorting the concatenated chunks by ``pos``
        reproduces per-line occurrence order. ``self._resident`` is left
        untouched (callers adjust by ``misses - evictions``); ``_occ`` is
        maintained here.
        """
        ns = self.num_sets
        assoc = self.assoc
        tags = self._tags
        n = int(lines.size)
        base = self._tick
        self._tick += n
        sidx = lines % ns
        eq = tags[sidx] == lines[:, None]
        present = eq.any(axis=1)
        way = eq.argmax(axis=1)
        pos = _np.arange(n, dtype=_np.int64)

        # Group lines by set, preserving input order within each group.
        order = _np.argsort(sidx, kind="stable")
        gsets = sidx[order]
        uniq, gstart = _np.unique(gsets, return_index=True)
        kk = _np.diff(_np.append(gstart, n))
        hit_per = _np.bincount(sidx[present], minlength=ns)[uniq]
        free_per = assoc - self._occ[uniq]

        allhit_g = hit_per == kk
        cold_g = (hit_per == 0) & (kk <= free_per)
        spill_g = (hit_per == 0) & (kk > free_per)
        mixed_g = ~(allhit_g | cold_g | spill_g)

        # Set creation mirrors the dict core: rank every newly touched
        # set by the input position of its first line.
        uncreated = self._created[uniq] < 0
        if uncreated.any():
            first_pos = order[gstart[uncreated]]
            new_sets = uniq[uncreated][_np.argsort(first_pos)]
            self._created[new_sets] = (self._next_rank
                                       + _np.arange(new_sets.size))
            self._next_rank += int(new_sets.size)

        g_of_line = _np.searchsorted(uniq, sidx)
        seq_in_set = _np.empty(n, dtype=_np.int64)
        seq_in_set[order] = pos - _np.repeat(gstart, kk)

        hits = 0
        evictions = 0
        dirty_evictions = 0
        chunks: List[tuple] = []

        m = allhit_g[g_of_line]
        if m.any():
            r, w = sidx[m], way[m]
            self._stamp[r, w] = base + pos[m]
            if store_dirty:
                self._dirty[r, w] = True
            hits += int(m.sum())

        m = cold_g[g_of_line]
        if m.any():
            cold_sets = uniq[cold_g]
            # Free ways first (stable on way order); the j-th line of a
            # set lands in its j-th free way.
            freepos = _np.argsort(tags[cold_sets] != -1, axis=1,
                                  kind="stable")
            crow = _np.searchsorted(cold_sets, sidx[m])
            cw = freepos[crow, seq_in_set[m]]
            r = sidx[m]
            cl = lines[m]
            self._tags[r, cw] = cl
            self._dirty[r, cw] = store_dirty
            self._stamp[r, cw] = base + pos[m]
            self._occ[cold_sets] += kk[cold_g]
            chunks.append((pos[m], cl,
                           _np.full(cl.size, -1, dtype=_np.int64),
                           _np.zeros(cl.size, dtype=bool)))

        if spill_g.any():
            sp = self._sweep_spill_sets(lines, pos, order, gstart, kk, uniq,
                                        spill_g, store_dirty, base)
            ev, dev, chunk = sp
            evictions += ev
            dirty_evictions += dev
            chunks.append(chunk)

        if mixed_g.any():
            h, ev, dev, chunk = self._sweep_mixed_sets(
                lines, pos, order, gstart, kk, uniq, mixed_g, store_dirty,
                base)
            hits += h
            evictions += ev
            dirty_evictions += dev
            chunks.append(chunk)

        return hits, evictions, dirty_evictions, chunks

    def _sweep_spill_sets(self, lines, pos, order, gstart, kk, uniq,
                          spill_g, store_dirty: bool, base: int):
        """Vectorized spill handling across all spill-classified sets.

        In a spill set no line is resident and the fill overflows the
        free ways, so the victim sequence is closed-form: the first
        ``free`` inserts fill empty ways, the next displace the initial
        residents in LRU order, and once the set is run-only each insert
        displaces the set's own line ``assoc`` insertions back. Slots are
        therefore reused cyclically through ``seq`` = (free ways, then
        residents in LRU order), and only the last ``min(k, assoc)``
        inserts survive into the final state.
        """
        A = self.assoc
        sets = uniq[spill_g]
        S = int(sets.size)
        k_s = kk[spill_g]
        occ_s = self._occ[sets]
        free_s = A - occ_s
        kmax = int(k_s.max())

        rows_t = self._tags[sets]
        rows_d = self._dirty[sets]
        rows_s = self._stamp[sets]
        lru = _np.argsort(rows_s, axis=1, kind="stable")
        ar = _np.arange(A)
        seq = _np.take_along_axis(lru, (ar[None, :] + occ_s[:, None]) % A,
                                  axis=1)
        pre_t = _np.take_along_axis(rows_t, seq, axis=1)
        pre_d = _np.take_along_axis(rows_d, seq, axis=1)

        # Per-set padded matrices of the inserted lines and their input
        # positions, in insertion order.
        srow_of_set = _np.full(self.num_sets, -1, dtype=_np.int64)
        srow_of_set[sets] = _np.arange(S)
        sel = _np.concatenate([
            order[gstart[i]:gstart[i] + kk[i]]
            for i in _np.nonzero(spill_g)[0]
        ])
        ln_sel = lines[sel]
        pos_sel = pos[sel]
        row_sel = srow_of_set[ln_sel % self.num_sets]
        col_sel = _np.concatenate([_np.arange(k) for k in k_s.tolist()])
        L = _np.full((S, kmax), -1, dtype=_np.int64)
        P = _np.full((S, kmax), -1, dtype=_np.int64)
        L[row_sel, col_sel] = ln_sel
        P[row_sel, col_sel] = pos_sel

        jj = _np.arange(kmax)
        kmat = k_s[:, None]
        ins_mask = jj[None, :] < kmat
        # Victims per insertion index j.
        vict = _np.full((S, kmax), -1, dtype=_np.int64)
        vdirty = _np.zeros((S, kmax), dtype=bool)
        mid = ins_mask & (jj[None, :] >= free_s[:, None]) & (jj[None, :] < A)
        if mid.any():
            jcap = _np.minimum(jj[None, :], A - 1)
            vict[mid] = _np.take_along_axis(pre_t, jcap, axis=1)[mid]
            vdirty[mid] = _np.take_along_axis(pre_d, jcap, axis=1)[mid]
        tail = ins_mask & (jj[None, :] >= A)
        if tail.any():
            shifted = _np.roll(L, A, axis=1)
            vict[tail] = shifted[tail]
            vdirty[tail] = store_dirty

        # Final state: insertion j lands in slot seq[j % A]; the last
        # min(k, assoc) insertions are the survivors.
        lastn = _np.minimum(k_s, A)
        p = _np.arange(A)
        surv = p[None, :] < lastn[:, None]
        jf = (k_s[:, None] - lastn[:, None]) + p[None, :]
        jf_c = _np.minimum(jf, kmax - 1)
        f_lines = _np.take_along_axis(L, jf_c, axis=1)
        f_pos = _np.take_along_axis(P, jf_c, axis=1)
        slot = _np.take_along_axis(seq, jf_c % A, axis=1)
        rr = _np.broadcast_to(sets[:, None], (S, A))
        self._tags[rr[surv], slot[surv]] = f_lines[surv]
        self._dirty[rr[surv], slot[surv]] = store_dirty
        self._stamp[rr[surv], slot[surv]] = base + f_pos[surv]
        self._occ[sets] = A

        ev_mask = ins_mask & (jj[None, :] >= free_s[:, None])
        evictions = int(ev_mask.sum())
        dirty_evictions = int((vdirty & ev_mask).sum())
        chunk = (P[ins_mask], L[ins_mask], vict[ins_mask],
                 vdirty[ins_mask])
        return evictions, dirty_evictions, chunk

    def _sweep_mixed_sets(self, lines, pos, order, gstart, kk, uniq,
                          mixed_g, store_dirty: bool, base: int):
        """Scalar per-line replay for mixed-residency sets: an earlier
        miss may displace a later swept line before its access, so there
        is no closed form (same fallback the dict core takes)."""
        tags = self._tags
        dirty = self._dirty
        stamp = self._stamp
        occ = self._occ
        assoc = self.assoc
        hits = 0
        evictions = 0
        dirty_evictions = 0
        c_pos: List[int] = []
        c_line: List[int] = []
        c_vict: List[int] = []
        c_vd: List[bool] = []
        for gi in _np.nonzero(mixed_g)[0].tolist():
            idx = int(uniq[gi])
            row_t = tags[idx]
            row_d = dirty[idx]
            row_s = stamp[idx]
            for j in order[gstart[gi]:gstart[gi] + kk[gi]].tolist():
                line = int(lines[j])
                eqr = row_t == line
                w = int(eqr.argmax())
                if row_t[w] == line:
                    hits += 1
                    row_s[w] = base + int(pos[j])
                    if store_dirty:
                        row_d[w] = True
                    continue
                if occ[idx] >= assoc:
                    w = int(row_s.argmin())
                    vt = int(row_t[w])
                    vd = bool(row_d[w])
                    evictions += 1
                    if vd:
                        dirty_evictions += 1
                    c_vict.append(vt)
                    c_vd.append(vd)
                else:
                    w = int((row_t == -1).argmax())
                    occ[idx] += 1
                    c_vict.append(-1)
                    c_vd.append(False)
                c_pos.append(int(pos[j]))
                c_line.append(line)
                row_t[w] = line
                row_d[w] = store_dirty
                row_s[w] = base + int(pos[j])
        chunk = (_np.asarray(c_pos, dtype=_np.int64),
                 _np.asarray(c_line, dtype=_np.int64),
                 _np.asarray(c_vict, dtype=_np.int64),
                 _np.asarray(c_vd, dtype=bool))
        return hits, evictions, dirty_evictions, chunk

    @staticmethod
    def _merge_chunks(chunks) -> Tuple:
        """Concatenate miss chunks and order them by input position."""
        ps = _np.concatenate([c[0] for c in chunks])
        ls = _np.concatenate([c[1] for c in chunks])
        vs = _np.concatenate([c[2] for c in chunks])
        ds = _np.concatenate([c[3] for c in chunks])
        o = _np.argsort(ps, kind="stable")
        return ls[o], vs[o], ds[o]

    # ------------------------------------------------------------------
    # Bulk (run) operations
    # ------------------------------------------------------------------

    def _access_run(self, start: int, count: int, do_load: bool,
                    do_store: bool) -> RunResult:
        if count <= 0:
            return RunResult(0, 0, [])
        if not (do_load or do_store):
            raise ValueError("access_run requires do_load and/or do_store")
        ns = self.num_sets
        assoc = self.assoc
        end = start + count
        store_dirty = do_store and self.policy is WritePolicy.WRITE_BACK
        if (self._resident == 0 and count >= ns
                and (count + ns - 1) // ns <= assoc):
            # Totally cold cache — whole-array fill, uniform miss by
            # construction. Set creation order is set-index order,
            # matching the dict core's cold path.
            idxs = _np.arange(ns, dtype=_np.int64)
            first = start + ((idxs - start) % ns)
            k = 1 + (end - 1 - first) // ns
            ways = _np.arange(assoc, dtype=_np.int64)
            mask = ways[None, :] < k[:, None]
            self._tags[...] = _np.where(
                mask, first[:, None] + ways[None, :] * ns, -1)
            self._dirty[...] = mask if store_dirty else False
            self._stamp[...] = _np.where(
                mask, self._tick + ways[None, :], _FREE)
            self._tick += assoc
            self._occ[...] = k
            fresh = self._created < 0
            nfresh = int(fresh.sum())
            if nfresh:
                self._created[fresh] = (self._next_rank
                                        + _np.arange(nfresh))
                self._next_rank += nfresh
            self._resident = count
            self._run_stats(0, count, 0, 0, do_load, do_store, count)
            return RunResult(0, count, None, uniform_miss=True)
        lines = _np.arange(start, end, dtype=_np.int64)
        hits, evictions, dirty_evictions, chunks = self._demand_sweep(
            lines, store_dirty)
        misses = count - hits
        self._resident += misses - evictions
        self._run_stats(hits, misses, evictions, dirty_evictions,
                        do_load, do_store, count)
        if hits == 0 and evictions == 0:
            return RunResult(0, misses, None, uniform_miss=True)
        events: List[Tuple[int, Optional[int], bool]] = []
        if chunks:
            ls, vs, ds = self._merge_chunks(chunks)
            events = [(l, None if v < 0 else v, d) for l, v, d in
                      zip(ls.tolist(), vs.tolist(), ds.tolist())]
        return RunResult(hits, misses, events)

    def _fill_many(self, lines, dirty: bool = False) -> List[Eviction]:
        arr = _np.fromiter(lines, dtype=_np.int64)
        if arr.size == 0:
            return []
        if _np.unique(arr).size != arr.size:
            # Duplicate lines (possible via the public bulk_fill): the
            # sweep classifies on pre-state only, so replay per line.
            return [ev for line in arr.tolist()
                    for ev in (self.fill(int(line), dirty),) if ev]
        hits, evictions, dirty_evictions, chunks = self._demand_sweep(
            arr, dirty)
        self._resident += (arr.size - hits) - evictions
        self.stats.evictions += evictions
        self.stats.dirty_evictions += dirty_evictions
        out: List[Eviction] = []
        if evictions and chunks:
            _, vs, ds = self._merge_chunks(chunks)
            out = [Eviction(int(v), bool(d))
                   for v, d in zip(vs.tolist(), ds.tolist()) if v >= 0]
        return out

    def _serve_miss_seq(self, events) -> Tuple[List[int], List[int],
                                               List[int], int]:
        if not events:
            return [], [], [], 0
        if any(e[2] for e in events):
            # Dirty L2 victims interleave fills with the accesses — the
            # rare general case; replay exactly, per event.
            return self._serve_events_scalar(events)
        arr = _np.array([e[0] for e in events], dtype=_np.int64)
        if arr.size > 1 and not bool((arr[1:] > arr[:-1]).all()):
            return self._serve_events_scalar(events)
        hits, evictions, dirty_evictions, chunks = self._demand_sweep(
            arr, False)
        n_miss = int(arr.size) - hits
        self._resident += n_miss - evictions
        stats = self.stats
        stats.hits += hits
        stats.read_hits += hits
        stats.misses += n_miss
        stats.read_misses += n_miss
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        missed: List[int] = []
        access_devs: List[int] = []
        if chunks:
            ls, vs, ds = self._merge_chunks(chunks)
            missed = ls.tolist()
            if dirty_evictions:
                access_devs = vs[ds].tolist()
        return missed, access_devs, [], 0

    def _serve_events_scalar(self, events) -> Tuple[List[int], List[int],
                                                    List[int], int]:
        """Exact per-event replay of a miss/victim stream (dict-core
        semantics: read access, then a dirty fill of any dirty victim)."""
        ns = self.num_sets
        assoc = self.assoc
        tags = self._tags
        dirty = self._dirty
        stamp = self._stamp
        occ = self._occ
        hits = 0
        evictions = 0
        dirty_evictions = 0
        writebacks = 0
        missed: List[int] = []
        access_devs: List[int] = []
        fill_devs: List[int] = []
        for line, victim, victim_dirty in events:
            idx = line % ns
            self._ensure_created(idx)
            w = self._way_of(idx, line)
            if w >= 0:
                hits += 1
            else:
                missed.append(line)
                if occ[idx] >= assoc:
                    w = int(stamp[idx].argmin())
                    if dirty[idx, w]:
                        dirty_evictions += 1
                        access_devs.append(int(tags[idx, w]))
                    evictions += 1
                else:
                    w = int((tags[idx] == -1).argmax())
                    occ[idx] += 1
                    self._resident += 1
                tags[idx, w] = line
                dirty[idx, w] = False
            stamp[idx, w] = self._tick
            self._tick += 1
            if victim_dirty:
                writebacks += 1
                vidx = victim % ns
                self._ensure_created(vidx)
                vw = self._way_of(vidx, victim)
                if vw < 0:
                    if occ[vidx] >= assoc:
                        vw = int(stamp[vidx].argmin())
                        if dirty[vidx, vw]:
                            dirty_evictions += 1
                            fill_devs.append(int(tags[vidx, vw]))
                        evictions += 1
                    else:
                        vw = int((tags[vidx] == -1).argmax())
                        occ[vidx] += 1
                        self._resident += 1
                    tags[vidx, vw] = victim
                dirty[vidx, vw] = True
                stamp[vidx, vw] = self._tick
                self._tick += 1
        stats = self.stats
        n_miss = len(missed)
        stats.hits += hits
        stats.read_hits += hits
        stats.misses += n_miss
        stats.read_misses += n_miss
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        return missed, access_devs, fill_devs, writebacks

    def _flush_run(self, start: int, count: int) -> List[int]:
        end = start + count
        if count < self.num_sets:
            # Narrow range: probe only the touched sets.
            lines = _np.arange(start, end, dtype=_np.int64)
            rows = lines % self.num_sets
            eq = self._tags[rows] == lines[:, None]
            hit = eq.any(axis=1)
            if not hit.any():
                return []
            way = eq.argmax(axis=1)
            r, w = rows[hit], way[hit]
            d = self._dirty[r, w]
            r, w = r[d], w[d]
            flushed = _np.sort(self._tags[r, w]).tolist()
            self._dirty[r, w] = False
        else:
            m = (self._tags >= start) & (self._tags < end) & self._dirty
            if not m.any():
                return []
            r, w = _np.nonzero(m)
            flushed = _np.sort(self._tags[r, w]).tolist()
            self._dirty[r, w] = False
        self.stats.lines_flushed += len(flushed)
        return flushed

    def _invalidate_run(self, start: int, count: int
                        ) -> Tuple[int, List[int]]:
        end = start + count
        m = (self._tags >= start) & (self._tags < end)
        if not m.any():
            return 0, []
        r, w = _np.nonzero(m)
        dropped = int(r.size)
        d = self._dirty[r, w]
        dirty_lines = _np.sort(self._tags[r, w][d]).tolist()
        self._tags[r, w] = -1
        self._dirty[r, w] = False
        self._stamp[r, w] = _FREE
        _np.subtract.at(self._occ, r, 1)
        self._resident -= dropped
        self.stats.lines_invalidated += dropped
        return dropped, dirty_lines

    # ------------------------------------------------------------------
    # Synchronization operations
    # ------------------------------------------------------------------

    def _walk_order(self, r, w):
        """Order selected ways the way the dict core walks them: set
        creation order first, then within-set LRU order."""
        return _np.lexsort((self._stamp[r, w], self._created[r]))

    def flush_dirty(self) -> List[int]:
        r, w = _np.nonzero(self._dirty)
        flushed: List[int] = []
        if r.size:
            o = self._walk_order(r, w)
            flushed = self._tags[r, w][o].tolist()
            self._dirty[r, w] = False
        self.stats.flush_ops += 1
        self.stats.lines_flushed += len(flushed)
        return flushed

    def invalidate_all(self) -> Tuple[int, List[int]]:
        r, w = _np.nonzero(self._dirty)
        dirty_lines: List[int] = []
        if r.size:
            o = self._walk_order(r, w)
            dirty_lines = self._tags[r, w][o].tolist()
        dropped = self._resident
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._stamp.fill(_FREE)
        self._occ.fill(0)
        self._resident = 0
        self.stats.invalidate_ops += 1
        self.stats.lines_invalidated += dropped
        return dropped, dirty_lines

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dirty_lines(self) -> int:
        return int(self._dirty.sum())

    def is_dirty(self, line: int) -> bool:
        idx = line % self.num_sets
        w = self._way_of(idx, line)
        return w >= 0 and bool(self._dirty[idx, w])

    def iter_lines(self):
        r, w = _np.nonzero(self._tags >= 0)
        if r.size:
            o = self._walk_order(r, w)
            yield from zip(self._tags[r, w][o].tolist(),
                           self._dirty[r, w][o].tolist())

    # ------------------------------------------------------------------
    # Memoization support
    # ------------------------------------------------------------------

    def memo_state(self) -> tuple:
        """Dict-core-shaped canonical behavioral state (for tests and
        debugging; :meth:`memo_digest` hashes the arrays directly)."""
        created = _np.nonzero(self._created >= 0)[0]
        created = created[_np.argsort(self._created[created])]
        out = []
        for idx in created.tolist():
            o = _np.argsort(self._stamp[idx], kind="stable")
            o = o[: int(self._occ[idx])]
            out.append((idx, tuple(zip(self._tags[idx][o].tolist(),
                                       self._dirty[idx][o].tolist()))))
        return tuple(out), self._resident

    def memo_digest(self) -> bytes:
        """Digest of the behavioral state, straight off the arrays.

        Stamps are normalized to per-set LRU *order* and creation ranks
        to a dense sequence before hashing, so states that behave the
        same hash the same regardless of absolute counter values. The
        digests are never compared across cache cores — each trace path
        keys its own memo store contexts.
        """
        o = _np.argsort(self._stamp, axis=1, kind="stable")
        t = _np.take_along_axis(self._tags, o, axis=1)
        d = _np.take_along_axis(self._dirty, o, axis=1)
        created = self._created
        active = created >= 0
        norm = _np.full(created.size, -1, dtype=_np.int64)
        if active.any():
            ranks = _np.empty(int(active.sum()), dtype=_np.int64)
            ranks[_np.argsort(created[active])] = _np.arange(ranks.size)
            norm[active] = ranks
        h = hashlib.blake2b(digest_size=16)
        h.update(norm.tobytes())
        h.update(t.tobytes())
        h.update(d.tobytes())
        return h.digest()

    def memo_snapshot(self) -> tuple:
        """Array copies — a handful of C-level memcpys, which is what
        makes memo snapshot/restore cheap enough to never lose to the
        run path (the dict core's per-set ``OrderedDict.copy`` walk was
        the bfs/sssp memo regression)."""
        return (self._tags.copy(), self._dirty.copy(), self._stamp.copy(),
                self._occ.copy(), self._created.copy(), self._tick,
                self._next_rank, self._resident)

    def memo_restore(self, snapshot: tuple) -> None:
        tags, dirty, stamp, occ, created, tick, next_rank, resident = snapshot
        _np.copyto(self._tags, tags)
        _np.copyto(self._dirty, dirty)
        _np.copyto(self._stamp, stamp)
        _np.copyto(self._occ, occ)
        _np.copyto(self._created, created)
        self._tick = tick
        self._next_rank = next_rank
        self._resident = resident

    def __repr__(self) -> str:
        return (f"NumpyCacheCore({self.name}, {self.capacity_lines} lines, "
                f"{self.assoc}-way, {self.policy.value})")
